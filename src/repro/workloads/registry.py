"""Workload registry and the paper's benchmark table (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import WorkloadError
from .appbt import AppBT
from .barnes import Barnes
from .base import Workload
from .dsmc import DSMC
from .moldyn import MolDyn
from .unstructured import Unstructured
from .zipf import Zipf

#: Factory for each benchmark; kwargs forward to the workload constructor.
_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "appbt": AppBT,
    "barnes": Barnes,
    "dsmc": DSMC,
    "moldyn": MolDyn,
    "unstructured": Unstructured,
}

#: Synthetic workloads that are *not* part of the paper's Table 4 set:
#: registered for the CLIs and pressure studies, but deliberately kept
#: out of BENCHMARK_NAMES so every experiment defaulting to the paper's
#: benchmark list keeps producing byte-identical tables.
_SYNTHETIC_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "zipf": Zipf,
}

#: Benchmark names in the paper's presentation order.
BENCHMARK_NAMES: List[str] = sorted(_FACTORIES)

#: Every instantiable workload: the paper's benchmarks plus synthetics.
WORKLOAD_NAMES: List[str] = sorted({**_FACTORIES, **_SYNTHETIC_FACTORIES})


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of the paper's Table 4."""

    name: str
    origin: str
    description: str


#: Provenance notes from the paper's Table 4 caption.
BENCHMARKS: Dict[str, BenchmarkInfo] = {
    "appbt": BenchmarkInfo(
        "appbt",
        "NASA Ames / University of Wisconsin",
        "parallel 3D computational fluid dynamics (NAS suite)",
    ),
    "barnes": BenchmarkInfo(
        "barnes",
        "Stanford SPLASH-2",
        "Barnes-Hut hierarchical N-body simulation",
    ),
    "dsmc": BenchmarkInfo(
        "dsmc",
        "Universities of Maryland and Wisconsin",
        "discrete-simulation Monte Carlo gas dynamics",
    ),
    "moldyn": BenchmarkInfo(
        "moldyn",
        "Universities of Maryland and Wisconsin",
        "molecular dynamics (CHARMM-style non-bonded forces)",
    ),
    "unstructured": BenchmarkInfo(
        "unstructured",
        "Universities of Maryland and Wisconsin",
        "computational fluid dynamics over a static unstructured mesh",
    ),
}


def make_workload(name: str, n_procs: int = 16, **kwargs) -> Workload:
    """Instantiate a benchmark or synthetic workload by name."""
    factory = _FACTORIES.get(name) or _SYNTHETIC_FACTORIES.get(name)
    if factory is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        )
    return factory(n_procs=n_procs, **kwargs)


def all_workloads(n_procs: int = 16) -> Dict[str, Workload]:
    """Instantiate every benchmark with default parameters."""
    return {name: make_workload(name, n_procs) for name in BENCHMARK_NAMES}


def format_table4() -> str:
    """Render Table 4 (benchmark provenance) as text."""
    lines = ["%-13s %-42s %s" % ("Benchmark", "Origin", "Description")]
    lines.append("-" * 110)
    for name in BENCHMARK_NAMES:
        info = BENCHMARKS[name]
        lines.append(
            "%-13s %-42s %s" % (info.name, info.origin, info.description)
        )
    return "\n".join(lines)
