"""appbt: 3D stencil computational-fluid-dynamics model (NAS APPBT).

The real application divides a cube into per-processor sub-blocks; sharing
happens across sub-block faces between neighbouring processors.  The
paper's Section 6.1 explains appbt's signature: for each boundary block
the *producer reads, the producer writes, and the consumer reads*, a
pattern that repeats every iteration -- plus false sharing in two data
structures that muddies the directory-side ``upgrade_request ->
inval_ro_response`` arc.

The model arranges 16 processors in a 4x2x2 grid.  Every directed
neighbour pair exchanges ``face_blocks`` boundary blocks each iteration
using the read-modify-write producer-consumer primitive.  A configurable
fraction of extra blocks is falsely shared between the two processors of
a face, with writer order randomized per iteration.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Phase, read
from .base import Workload
from .cold import ColdPool, ColdPoolSpec
from .patterns import false_sharing, producer_consumer, shuffled


def _grid_dims(n_procs: int) -> Tuple[int, int, int]:
    """Factor ``n_procs`` into a 3D grid, as square as possible."""
    best: Tuple[int, int, int] = (n_procs, 1, 1)
    best_surface = None
    for x in range(1, n_procs + 1):
        if n_procs % x:
            continue
        rest = n_procs // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            surface = x * y + y * z + x * z
            if best_surface is None or surface < best_surface:
                best_surface = surface
                best = (x, y, z)
    return best


class AppBT(Workload):
    """3D stencil with nearest-neighbour boundary exchange."""

    name = "appbt"
    description = (
        "parallel 3D CFD stencil; sub-blocks exchange boundaries with "
        "3D-grid neighbours (producer-consumer, one consumer)"
    )
    default_iterations = 60

    def __init__(
        self,
        n_procs: int = 16,
        face_blocks: int = 6,
        false_share_blocks: int = 2,
        readers_per_false_block: int = 2,
        cold_blocks: int = 2200,
    ) -> None:
        super().__init__(n_procs)
        if face_blocks < 1:
            raise WorkloadError("need at least one block per face")
        self.face_blocks = face_blocks
        self.false_share_blocks = false_share_blocks
        self.readers_per_false_block = readers_per_false_block
        # Sub-block interiors: huge 3D arrays whose blocks are touched
        # once or twice in the whole run (they dominate Table 7's MHR
        # count but add almost no pattern entries).
        self._cold = ColdPool(ColdPoolSpec(blocks=cold_blocks))
        self._dims = _grid_dims(n_procs)
        #: (producer, consumer) -> boundary block addresses.
        self._faces: Dict[Tuple[int, int], List[int]] = {}
        #: (writer_a, writer_b) -> falsely shared block addresses.
        self._false_blocks: Dict[Tuple[int, int], List[int]] = {}

    # layout ------------------------------------------------------------

    def _proc_at(self, x: int, y: int, z: int) -> int:
        dx, dy, dz = self._dims
        return (z * dy + y) * dx + x

    def _neighbour_pairs(self) -> List[Tuple[int, int]]:
        dx, dy, dz = self._dims
        pairs: List[Tuple[int, int]] = []
        for z in range(dz):
            for y in range(dy):
                for x in range(dx):
                    proc = self._proc_at(x, y, z)
                    if x + 1 < dx:
                        pairs.append((proc, self._proc_at(x + 1, y, z)))
                    if y + 1 < dy:
                        pairs.append((proc, self._proc_at(x, y + 1, z)))
                    if z + 1 < dz:
                        pairs.append((proc, self._proc_at(x, y, z + 1)))
        return pairs

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._faces.clear()
        self._false_blocks.clear()
        for low, high in self._neighbour_pairs():
            # Each undirected neighbour pair exchanges in both directions:
            # low produces for high, and high produces for low.
            self._faces[(low, high)] = allocator.alloc_blocks(self.face_blocks)
            self._faces[(high, low)] = allocator.alloc_blocks(self.face_blocks)
            if self.false_share_blocks:
                self._false_blocks[(low, high)] = allocator.alloc_blocks(
                    self.false_share_blocks
                )
        self._cold.setup(allocator, rng, self.n_procs, self.default_iterations)

    # access streams ------------------------------------------------------

    def startup(self, rng: random.Random) -> List[Phase]:
        # Producers initialize their boundary blocks once.
        phase = self._new_phase()
        for (producer, _consumer), blocks in self._faces.items():
            for block in blocks:
                producer_consumer(phase, block, producer, [], producer_reads=False)
        return [phase]

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        # Phase 1: everyone consumes neighbours' boundaries (stencil read).
        # Block order is fixed: the stencil walks the same arrays the same
        # way every iteration.
        consume = self._new_phase()
        for (producer, consumer), blocks in self._faces.items():
            for block in blocks:
                consume[consumer].append(read(block))
        # Phase 2: everyone updates its own boundaries (read-modify-write)
        # and the falsely shared blocks oscillate between their writers.
        produce = self._new_phase()
        for (producer, _consumer), blocks in self._faces.items():
            for block in blocks:
                producer_consumer(produce, block, producer, [])
        for (writer_a, writer_b), blocks in self._false_blocks.items():
            readers = rng.sample(
                range(self.n_procs),
                min(self.readers_per_false_block, self.n_procs),
            )
            for block in blocks:
                false_sharing(
                    produce, block, (writer_a, writer_b), readers, rng
                )
        self._cold.extend_phase(produce, index)
        return [consume, produce]
