"""dsmc: discrete-simulation Monte Carlo gas model (Maryland/Wisconsin).

The real application simulates particles moving through a Cartesian grid
of cells; at the end of each iteration particles migrate between cells
through shared buffers.  Three properties the paper measures drive this
model:

* The dominant pattern is *write-only* producer-consumer (the producer
  overwrites transfer buffers without reading them first), which is why
  Stache's half-migratory optimization *helps* dsmc (Section 6.1) and why
  dsmc reaches the highest overall accuracy at depth 3 (93%).
* Some shared data structures are touched rarely -- many blocks receive
  fewer references than the MHR depth, making Table 7's PHT/MHR ratios
  fall below one and *decrease* with depth.
* The flow field takes a long time to reach steady state, so specific
  transitions need hundreds of iterations to become predictable
  (Table 8): early on, which neighbour produces into a buffer is still
  churning; it settles as the simulated flow converges.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Phase, read, write
from .base import Workload
from .cold import ColdPool, ColdPoolSpec
from .patterns import drifted, producer_consumer


class _Buffer:
    """One inter-cell particle transfer buffer."""

    __slots__ = (
        "blocks",
        "steady_producer",
        "consumer",
        "append_mode",
        "churn_candidates",
    )

    def __init__(
        self,
        blocks: List[int],
        steady_producer: int,
        consumer: int,
        append_mode: bool,
        churn_candidates: List[int],
    ) -> None:
        self.blocks = blocks
        self.steady_producer = steady_producer
        self.consumer = consumer
        #: Appending buffers read the fill count before writing
        #: (read-modify-write); overwriting buffers just write.
        self.append_mode = append_mode
        #: Neighbouring cells that may produce into the buffer while the
        #: flow has not converged; only adjacent cells can feed a buffer.
        self.churn_candidates = churn_candidates


class DSMC(Workload):
    """Particle simulation with converging flow field."""

    name = "dsmc"
    description = (
        "Monte Carlo particle simulation; cells exchange particles via "
        "write-only shared buffers that settle as the flow converges"
    )
    default_iterations = 400

    def __init__(
        self,
        n_procs: int = 16,
        buffers_per_proc: int = 3,
        blocks_per_buffer: int = 2,
        append_fraction: float = 0.25,
        convergence_tau: float = 80.0,
        rare_blocks_per_proc: int = 220,
        contended_buffers: int = 4,
        contenders: int = 3,
    ) -> None:
        super().__init__(n_procs)
        if convergence_tau <= 0:
            raise WorkloadError("convergence_tau must be positive")
        self.buffers_per_proc = buffers_per_proc
        self.blocks_per_buffer = blocks_per_buffer
        self.append_fraction = append_fraction
        self.convergence_tau = convergence_tau
        self.rare_blocks_per_proc = rare_blocks_per_proc
        self.contended_buffers = contended_buffers
        self.contenders = contenders
        self._buffers: List[_Buffer] = []
        self._contended: List[Tuple[List[int], List[int]]] = []
        # Cells far from the simulated flow: a very large population of
        # blocks touched once or twice in the whole run.  These dominate
        # dsmc's MHR count, which is why its Table 7 ratios sit below one
        # and shrink as the MHR depth grows.
        self._cold = ColdPool(
            ColdPoolSpec(
                blocks=rare_blocks_per_proc * n_procs,
                rmw_fraction=0.3,
                rmw_then_read_fraction=0.1,
            )
        )

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._buffers = []
        self._contended = []
        for consumer in range(self.n_procs):
            for _ in range(self.buffers_per_proc):
                producer = (consumer + rng.randint(1, self.n_procs - 1)) % (
                    self.n_procs
                )
                churn = [
                    proc
                    for proc in (
                        (producer + 1) % self.n_procs,
                        (producer - 1) % self.n_procs,
                    )
                    if proc != consumer
                ]
                self._buffers.append(
                    _Buffer(
                        blocks=allocator.alloc_blocks(self.blocks_per_buffer),
                        steady_producer=producer,
                        consumer=consumer,
                        append_mode=rng.random() < self.append_fraction,
                        churn_candidates=churn or [producer],
                    )
                )
        for _ in range(self.contended_buffers):
            procs = rng.sample(range(self.n_procs), self.contenders)
            blocks = allocator.alloc_blocks(self.blocks_per_buffer)
            self._contended.append((blocks, procs))
        self._cold.setup(allocator, rng, self.n_procs, self.default_iterations)

    def _actual_producer(
        self, buffer: _Buffer, iteration: int, rng: random.Random
    ) -> int:
        """The node producing into ``buffer`` this iteration.

        Early in the run the flow field is still churning, so the producer
        is frequently some other node; the probability of the steady-state
        producer rises as ``1 - exp(-t / tau)``.
        """
        settled = 1.0 - math.exp(-iteration / self.convergence_tau)
        if rng.random() < settled:
            return buffer.steady_producer
        return rng.choice(buffer.churn_candidates)

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        # Phase 1: movement -- producers fill transfer buffers.
        fill = self._new_phase()
        for buf in self._buffers:
            producer = self._actual_producer(buf, index, rng)
            for block in buf.blocks:
                if buf.append_mode:
                    fill[producer].append(read(block))
                fill[producer].append(write(block))
        for blocks, procs in self._contended:
            # Contenders race to append to a shared buffer; the order is
            # mostly stable with timing-induced swaps.
            for proc in drifted(procs, rng, swap_prob=0.25):
                for block in blocks:
                    fill[proc].append(read(block))
                    fill[proc].append(write(block))
        # Phase 2: collision -- consumers drain their buffers; rare
        # structures are touched on schedule.
        drain = self._new_phase()
        for buf in self._buffers:
            for block in buf.blocks:
                drain[buf.consumer].append(read(block))
        for blocks, procs in self._contended:
            reader = procs[index % len(procs)]
            for block in blocks:
                drain[reader].append(read(block))
        self._cold.extend_phase(drain, index)
        return [fill, drain]
