"""moldyn: molecular dynamics model (CHARMM-style non-bonded forces).

Two dominant sharing patterns drive the paper's analysis (Section 6.1):

* **Migratory** -- the shared force array is reduced inside critical
  sections; each participating processor read-modify-writes a block in
  turn, so the block migrates through them.
* **Producer-consumer** -- the molecule-coordinates array is written by
  its owner and read by an *average of 4.9 consumers*, so the directory
  sees highly predictable back-to-back ``get_ro_request`` bursts.

The *interaction list* is rebuilt every 20 iterations, which resamples
which processors participate in each block's pattern -- a periodic
disturbance Cosmos must re-learn.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Phase, read
from .base import Workload
from .cold import ColdPool, ColdPoolSpec
from .patterns import drifted, migratory, producer_consumer, sample_consumers


class MolDyn(Workload):
    """Force reduction (migratory) + coordinate broadcast (producer-consumer)."""

    name = "moldyn"
    description = (
        "molecular dynamics; force array reduced in critical sections "
        "(migratory), coordinates read by ~4.9 consumers per producer"
    )
    default_iterations = 60

    def __init__(
        self,
        n_procs: int = 16,
        force_blocks: int = 48,
        coord_blocks: int = 48,
        mean_consumers: float = 4.9,
        participants_min: int = 2,
        participants_max: int = 3,
        rebuild_period: int = 20,
        cold_blocks: int = 2400,
    ) -> None:
        super().__init__(n_procs)
        if rebuild_period < 1:
            raise WorkloadError("rebuild_period must be at least 1")
        if participants_min < 2:
            raise WorkloadError("migratory needs at least two participants")
        self.force_blocks_count = force_blocks
        self.coord_blocks_count = coord_blocks
        self.mean_consumers = mean_consumers
        self.participants_min = participants_min
        self.participants_max = participants_max
        self.rebuild_period = rebuild_period
        # Private molecule state (positions/velocities outside the cutoff
        # radius): cold blocks that pad the MHR population.
        self._cold = ColdPool(ColdPoolSpec(blocks=cold_blocks))
        self._force_blocks: List[int] = []
        self._coord_blocks: List[int] = []
        self._participants: List[List[int]] = []
        self._coord_owner: List[int] = []
        self._coord_consumers: List[List[int]] = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._force_blocks = allocator.alloc_blocks(self.force_blocks_count)
        self._coord_blocks = allocator.alloc_blocks(self.coord_blocks_count)
        self._coord_owner = [
            index % self.n_procs for index in range(self.coord_blocks_count)
        ]
        self._cold.setup(allocator, rng, self.n_procs, self.default_iterations)
        self._rebuild_interaction_list(rng)

    def _rebuild_interaction_list(self, rng: random.Random) -> None:
        """Resample which processors interact through each shared block."""
        all_procs = list(range(self.n_procs))
        self._participants = []
        for _ in range(self.force_blocks_count):
            count = rng.randint(self.participants_min, self.participants_max)
            self._participants.append(rng.sample(all_procs, count))
        self._coord_consumers = []
        for index in range(self.coord_blocks_count):
            owner = self._coord_owner[index]
            self._coord_consumers.append(
                sample_consumers(rng, all_procs, owner, self.mean_consumers)
            )

    def startup(self, rng: random.Random) -> List[Phase]:
        phase = self._new_phase()
        for index, block in enumerate(self._coord_blocks):
            producer_consumer(
                phase, block, self._coord_owner[index], [], producer_reads=False
            )
        return [phase]

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        if index > 1 and (index - 1) % self.rebuild_period == 0:
            self._rebuild_interaction_list(rng)
        # Phase 1: integrate positions -- each owner updates its slice of
        # the coordinates array (read-modify-write).  The loop order is
        # the program's fixed array order.
        update = self._new_phase()
        for block_index in range(self.coord_blocks_count):
            block = self._coord_blocks[block_index]
            producer_consumer(
                update, block, self._coord_owner[block_index], []
            )
        # Phase 2: force computation reads neighbours' coordinates
        # (producer-consumer broadcast; a barrier separates it from the
        # update loop, as in the real code).
        bcast = self._new_phase()
        for block_index in range(self.coord_blocks_count):
            block = self._coord_blocks[block_index]
            for consumer in self._coord_consumers[block_index]:
                bcast[consumer].append(read(block))
        # Phase 3: reduce forces in critical sections (migratory).  The
        # lock-acquisition order is mostly stable, perturbed by timing.
        forces = self._new_phase()
        for block_index in range(self.force_blocks_count):
            block = self._force_blocks[block_index]
            order = drifted(self._participants[block_index], rng)
            migratory(forces, block, order)
        self._cold.extend_phase(forces, index)
        return [update, bcast, forces]
