"""Sharing-pattern primitives shared by the workload models.

Each function appends one data structure's accesses for one iteration to a
phase (per-processor access lists).  The primitives correspond to the
classic sharing patterns of Bennett et al. and Gupta & Weber that the
paper's Section 6 uses to explain each application's message signatures:

* producer-consumer (read-write producer, read-only consumers),
* write-only producer-consumer (producer overwrites without reading),
* migratory (a sequence of processors each read-modify-write in turn),
* false sharing (two independent writers oscillate over one block).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from .access import Phase, read, write


def producer_consumer(
    phase: Phase,
    block: int,
    producer: int,
    consumers: Sequence[int],
    producer_reads: bool = True,
) -> None:
    """Producer updates ``block``; each consumer reads it.

    With ``producer_reads`` the producer performs a read-modify-write (the
    appbt/moldyn style that makes Stache's half-migratory optimization
    hurt); without it the producer overwrites blindly (the dsmc style that
    makes the optimization help).
    """
    if producer_reads:
        phase[producer].append(read(block))
    phase[producer].append(write(block))
    for consumer in consumers:
        if consumer == producer:
            continue
        phase[consumer].append(read(block))


def migratory(
    phase: Phase,
    block: int,
    participants: Sequence[int],
) -> None:
    """Each participant in turn read-modify-writes ``block``.

    Callers pass participants already ordered (typically shuffled per
    iteration) -- the block then migrates through them in that order.
    """
    for proc in participants:
        phase[proc].append(read(block))
        phase[proc].append(write(block))


def false_sharing(
    phase: Phase,
    block: int,
    writers: Sequence[int],
    readers: Sequence[int],
    rng: random.Random,
) -> None:
    """Independent writers hit the same block in random order.

    Models two variables that happen to share a cache block: each writer
    updates "its" variable (a read-modify-write of the whole block), and
    readers read.  The random writer order produces the oscillating
    signatures the paper blames for appbt's weak directory arc.
    """
    order = list(writers)
    rng.shuffle(order)
    for proc in order:
        phase[proc].append(read(block))
        phase[proc].append(write(block))
    for proc in readers:
        phase[proc].append(read(block))


def shuffled(items: Sequence[int], rng: random.Random) -> List[int]:
    """A shuffled copy of ``items`` (the inputs are never mutated)."""
    result = list(items)
    rng.shuffle(result)
    return result


def drifted(
    items: Sequence[int], rng: random.Random, swap_prob: float = 0.15
) -> List[int]:
    """A copy of ``items`` with occasional adjacent swaps.

    Real programs execute the same loops every iteration, so orderings
    (e.g., lock-acquisition order in a reduction) are mostly stable and
    only occasionally perturbed by timing races.  ``drifted`` models that:
    each adjacent pair is swapped with probability ``swap_prob``, leaving
    the order largely repeatable -- the noise regime in which history
    depth and filters pay off (paper Sections 3.5-3.6).
    """
    result = list(items)
    for index in range(len(result) - 1):
        if rng.random() < swap_prob:
            result[index], result[index + 1] = (
                result[index + 1],
                result[index],
            )
    return result


def sample_consumers(
    rng: random.Random,
    candidates: Sequence[int],
    exclude: int,
    mean: float,
) -> List[int]:
    """Sample a consumer set of mean size ``mean`` from ``candidates``.

    Used to hit the paper's measured fan-outs (moldyn averages 4.9
    consumers per producer, unstructured 2.6).  The sample size follows a
    clipped geometric-ish draw around the mean; the result never includes
    ``exclude`` (the producer) and never exceeds the candidate pool.
    """
    pool = [proc for proc in candidates if proc != exclude]
    if not pool:
        return []
    size = 0
    # Sum of Bernoulli draws approximating the requested mean.
    whole = int(mean)
    frac = mean - whole
    size = whole + (1 if rng.random() < frac else 0)
    size = max(1, min(size, len(pool)))
    return rng.sample(pool, size)
