"""Cold data: large structures whose blocks see few coherence events.

Real scientific applications allocate big arrays of which only a fraction
is actively shared; most blocks suffer a cold miss (and perhaps one or
two more coherence events) and then stay quiet.  Such blocks matter for
Table 7: each consumes a Message History Register at the modules that saw
it, but contributes few or no Pattern History Table entries (a PHT entry
only appears once a block's reference count at a module exceeds the MHR
depth).  dsmc's sub-1.0, depth-decreasing ratios come from exactly this
population.

:class:`ColdPool` schedules three touch shapes over the run:

* single read -- one request/response pair, ever;
* read-modify-write -- read then upgrade by the same node;
* read-modify-write then a later read by a second node -- adds the
  invalidation round trip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Access, Phase, read, write


@dataclass(frozen=True)
class ColdPoolSpec:
    """Size and touch-shape mix of a cold pool."""

    blocks: int = 0
    #: Fractions of blocks receiving the richer touch shapes; the rest
    #: get a single read.  Must sum to at most 1.
    rmw_fraction: float = 0.2
    rmw_then_read_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.blocks < 0:
            raise WorkloadError("cold pool size cannot be negative")
        if self.rmw_fraction < 0 or self.rmw_then_read_fraction < 0:
            raise WorkloadError("touch fractions cannot be negative")
        if self.rmw_fraction + self.rmw_then_read_fraction > 1.0:
            raise WorkloadError("touch fractions exceed 1.0")


class ColdPool:
    """Schedules rare touches of a large block pool across a run."""

    def __init__(self, spec: ColdPoolSpec) -> None:
        self.spec = spec
        #: iteration -> [(proc, accesses)].
        self._schedule: Dict[int, List[Tuple[int, List[Access]]]] = {}

    def setup(
        self,
        allocator: Allocator,
        rng: random.Random,
        n_procs: int,
        horizon: int,
    ) -> None:
        """Allocate the pool and fix every block's touch schedule.

        ``horizon`` bounds the iterations touches are scheduled in
        (typically the workload's default iteration count; touches
        scheduled past a shorter run simply never fire).
        """
        self._schedule = {}
        if self.spec.blocks == 0:
            return
        blocks = allocator.alloc_blocks(self.spec.blocks)
        memory_map = allocator.memory_map
        horizon = max(2, horizon)
        for block in blocks:
            home = memory_map.home_of(block)
            # Keep the toucher remote so the touch generates messages.
            owner = (home + 1 + rng.randrange(n_procs - 1)) % n_procs
            shape = rng.random()
            first = rng.randint(1, horizon)
            if shape < self.spec.rmw_then_read_fraction:
                second = rng.randint(first, horizon)
                other = (owner + 1 + rng.randrange(n_procs - 2)) % n_procs
                if other == home:
                    other = (other + 1) % n_procs
                self._add(first, owner, [read(block), write(block)])
                self._add(second, other, [read(block)])
            elif shape < (
                self.spec.rmw_then_read_fraction + self.spec.rmw_fraction
            ):
                self._add(first, owner, [read(block), write(block)])
            else:
                self._add(first, owner, [read(block)])

    def _add(self, iteration: int, proc: int, accesses: List[Access]) -> None:
        self._schedule.setdefault(iteration, []).append((proc, accesses))

    def extend_phase(self, phase: Phase, iteration: int) -> None:
        """Append this iteration's scheduled cold touches to ``phase``."""
        for proc, accesses in self._schedule.get(iteration, []):
            phase[proc].extend(accesses)
