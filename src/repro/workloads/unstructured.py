"""unstructured: CFD over a static unstructured mesh (Maryland/Wisconsin).

The paper highlights unstructured as the application whose *same data
structures oscillate between migratory and producer-consumer* sharing
patterns in different phases of every iteration -- a composite signature
that no directed (single-pattern) predictor can track, but that Cosmos
learns given enough history (accuracy climbs from 74% at MHR depth 1 to
92% at depth 4).

Because the mesh is static, each block's participant sets never change:
within a phase the pattern is perfectly repetitive, and all of the depth-1
confusion comes from the pattern *switches* at phase boundaries and from
shuffled critical-section orderings.  The producer is itself a consumer of
the data, and the average number of consumers per producer is 2.6.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Phase
from .base import Workload
from .cold import ColdPool, ColdPoolSpec
from .patterns import drifted, migratory, producer_consumer, sample_consumers


class Unstructured(Workload):
    """Static mesh whose blocks alternate migratory / producer-consumer."""

    name = "unstructured"
    description = (
        "unstructured-mesh CFD; edge loops update blocks in critical "
        "sections (migratory), node loops broadcast them (~2.6 consumers)"
    )
    default_iterations = 40

    def __init__(
        self,
        n_procs: int = 16,
        mesh_blocks: int = 72,
        mean_consumers: float = 2.6,
        participants_min: int = 2,
        participants_max: int = 3,
        cold_blocks: int = 500,
    ) -> None:
        super().__init__(n_procs)
        if mesh_blocks < 1:
            raise WorkloadError("need at least one mesh block")
        self.mesh_blocks_count = mesh_blocks
        self.mean_consumers = mean_consumers
        self.participants_min = participants_min
        self.participants_max = participants_max
        # Interior mesh entities private to one partition: cold blocks.
        self._cold = ColdPool(ColdPoolSpec(blocks=cold_blocks))
        self._blocks: List[int] = []
        self._owner: List[int] = []
        self._participants: List[List[int]] = []
        self._consumers: List[List[int]] = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._blocks = allocator.alloc_blocks(self.mesh_blocks_count)
        all_procs = list(range(self.n_procs))
        self._owner = []
        self._participants = []
        self._consumers = []
        for index in range(self.mesh_blocks_count):
            owner = index % self.n_procs
            self._owner.append(owner)
            # The mesh is static: participant and consumer sets are fixed
            # at partitioning time and never resampled.
            count = rng.randint(self.participants_min, self.participants_max)
            others = rng.sample(
                [p for p in all_procs if p != owner], count - 1
            )
            self._participants.append([owner] + others)
            self._consumers.append(
                sample_consumers(rng, all_procs, owner, self.mean_consumers)
            )
        self._cold.setup(allocator, rng, self.n_procs, self.default_iterations)

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        # Phase 1: edge loop -- critical-section updates (migratory); the
        # mesh is static so the edge order is fixed, with timing drift in
        # the lock-acquisition order.
        edges = self._new_phase()
        for block_index in range(self.mesh_blocks_count):
            block = self._blocks[block_index]
            order = drifted(self._participants[block_index], rng)
            migratory(edges, block, order)
        # Phase 2: node loop -- owner recomputes, neighbours read
        # (producer-consumer; the producer consumed its own data in
        # phase 1, matching the paper's "producer is itself a consumer").
        nodes = self._new_phase()
        for block_index in range(self.mesh_blocks_count):
            block = self._blocks[block_index]
            producer_consumer(
                nodes,
                block,
                self._owner[block_index],
                self._consumers[block_index],
            )
        self._cold.extend_phase(nodes, index)
        return [edges, nodes]
