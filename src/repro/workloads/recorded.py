"""A workload frozen into plain access streams.

The live workload models (:mod:`repro.workloads`) generate their phases
from an RNG the machine interleaves with its think-time draws, which
makes a run a function of *generation order* as well as content.  The
schedule explorer (:mod:`repro.explore`) needs the opposite: a workload
that is pure data, so that two runs differing only in the delivery
schedule see byte-identical access streams, and so the shrinker can
delete accesses and re-run without disturbing anything else.

:func:`materialize` freezes any workload into a :class:`RecordedWorkload`
by replaying its generators once with dedicated RNG streams (layout and
generation seeds derived from one seed, exactly like the machine derives
its layout RNG).  A recorded workload round-trips through JSON --
``to_dict`` / ``from_dict`` -- so a minimized ``.repro`` artifact can
embed the exact (possibly shrunken) access stream that failed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import WorkloadError
from ..sim.memory_map import Allocator, MemoryMap
from ..sim.params import PAPER_PARAMS, SystemParams
from ..workloads.access import Access, Phase
from .base import Workload

#: XOR'd into the seed for layout draws -- the same constant the machine
#: uses, so a materialized workload sees the layout a live run would.
_LAYOUT_SALT = 0x5EED


class RecordedWorkload(Workload):
    """Plain-data workload: fixed startup and per-iteration phases.

    ``setup`` is a no-op -- block homes are a pure function of the
    address (:meth:`repro.sim.memory_map.MemoryMap.home_of`), so replay
    needs no allocator state.  ``startup``/``iteration`` ignore the RNG
    they are handed; the streams are the streams.
    """

    name = "recorded"
    description = "frozen access streams (schedule exploration / shrinking)"

    def __init__(
        self,
        n_procs: int,
        startup_phases: List[Phase],
        iteration_phases: List[List[Phase]],
        source: str = "recorded",
    ) -> None:
        super().__init__(n_procs=n_procs)
        self.startup_phases = startup_phases
        self.iteration_phases = iteration_phases
        self.source = source
        self.default_iterations = max(1, len(iteration_phases))

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        pass

    def startup(self, rng: random.Random) -> List[Phase]:
        return self.startup_phases

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        if not 1 <= index <= len(self.iteration_phases):
            raise WorkloadError(
                f"recorded workload has {len(self.iteration_phases)} "
                f"iterations; iteration {index} does not exist"
            )
        return self.iteration_phases[index - 1]

    # ------------------------------------------------------------------
    # accounting (the shrinker sizes candidates by access count)
    # ------------------------------------------------------------------

    def total_accesses(self) -> int:
        return sum(
            len(stream)
            for phases in [self.startup_phases, *self.iteration_phases]
            for phase in phases
            for stream in phase
        )

    # ------------------------------------------------------------------
    # JSON round-trip (``.repro`` artifacts embed shrunken workloads)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        def encode(phases: List[Phase]) -> list:
            return [
                [
                    [[a.block, int(a.is_write)] for a in stream]
                    for stream in phase
                ]
                for phase in phases
            ]

        return {
            "n_procs": self.n_procs,
            "source": self.source,
            "startup": encode(self.startup_phases),
            "iterations": [encode(ph) for ph in self.iteration_phases],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordedWorkload":
        def decode(phases: list) -> List[Phase]:
            return [
                [
                    [
                        Access(block=block, is_write=bool(is_write))
                        for block, is_write in stream
                    ]
                    for stream in phase
                ]
                for phase in phases
            ]

        return cls(
            n_procs=data["n_procs"],
            startup_phases=decode(data["startup"]),
            iteration_phases=[decode(ph) for ph in data["iterations"]],
            source=data.get("source", "recorded"),
        )


def materialize(
    workload: Workload,
    seed: int,
    iterations: Optional[int] = None,
    params: SystemParams = PAPER_PARAMS,
) -> RecordedWorkload:
    """Freeze ``workload`` into plain access streams.

    Layout draws come from ``Random(seed ^ 0x5EED)`` (the machine's own
    discipline) and generation draws from a dedicated ``Random(seed)``,
    so the result is deterministic in ``(workload, seed, iterations)``.
    """
    if iterations is None:
        iterations = workload.default_iterations
    if iterations < 1:
        raise WorkloadError("need at least one iteration to materialize")
    layout_rng = random.Random(seed ^ _LAYOUT_SALT)
    workload.setup(Allocator(MemoryMap(params)), layout_rng)
    gen_rng = random.Random(seed)
    startup = workload.startup(gen_rng)
    iteration_phases = [
        workload.iteration(index, gen_rng)
        for index in range(1, iterations + 1)
    ]
    return RecordedWorkload(
        n_procs=workload.n_procs,
        startup_phases=startup,
        iteration_phases=iteration_phases,
        source=workload.name,
    )
