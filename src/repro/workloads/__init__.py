"""Synthetic models of the paper's five scientific applications."""

from .access import Access, Phase, read, read_modify_write, write
from .appbt import AppBT
from .barnes import Barnes
from .base import Workload
from .dsmc import DSMC
from .moldyn import MolDyn
from .registry import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    BenchmarkInfo,
    all_workloads,
    format_table4,
    make_workload,
)
from .unstructured import Unstructured

__all__ = [
    "Access",
    "AppBT",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "Barnes",
    "BenchmarkInfo",
    "DSMC",
    "MolDyn",
    "Phase",
    "Unstructured",
    "Workload",
    "all_workloads",
    "format_table4",
    "make_workload",
    "read",
    "read_modify_write",
    "write",
]
