"""Synthetic models of the paper's five scientific applications."""

from .access import Access, Phase, read, read_modify_write, write
from .appbt import AppBT
from .barnes import Barnes
from .base import Workload
from .dsmc import DSMC
from .moldyn import MolDyn
from .registry import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    WORKLOAD_NAMES,
    BenchmarkInfo,
    all_workloads,
    format_table4,
    make_workload,
)
from .unstructured import Unstructured
from .zipf import Zipf, ZipfSampler, zipf_trace

__all__ = [
    "Access",
    "AppBT",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "Barnes",
    "BenchmarkInfo",
    "DSMC",
    "MolDyn",
    "Phase",
    "Unstructured",
    "WORKLOAD_NAMES",
    "Workload",
    "Zipf",
    "ZipfSampler",
    "all_workloads",
    "format_table4",
    "make_workload",
    "read",
    "read_modify_write",
    "write",
    "zipf_trace",
]
