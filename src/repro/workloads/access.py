"""Memory-access primitives emitted by workload models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Access:
    """One shared-memory access by a processor."""

    block: int
    is_write: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{'st' if self.is_write else 'ld'} 0x{self.block:x}"


def read(block: int) -> Access:
    """A load of ``block``."""
    return Access(block, is_write=False)


def write(block: int) -> Access:
    """A store to ``block``."""
    return Access(block, is_write=True)


def read_modify_write(block: int) -> List[Access]:
    """The load-then-store pair of a read-modify-write update."""
    return [read(block), write(block)]


#: Per-processor access lists for one phase: ``phase[p]`` is processor
#: ``p``'s ordered access sequence.  Processors run a phase concurrently;
#: the machine barriers between phases.
Phase = List[List[Access]]


def empty_phase(n_procs: int) -> Phase:
    """A phase in which no processor does anything."""
    return [[] for _ in range(n_procs)]
