"""barnes: Barnes-Hut N-body model (SPLASH-2).

The real application's principal data structure is an octree that is
*rebuilt every iteration*, so a logical tree node (whose sharing pattern
is stable) lands at a different shared-memory address from one iteration
to the next.  Cosmos indexes its history by block address, so the rebuild
obscures otherwise-stable patterns -- the paper singles this out as the
reason barnes has the lowest prediction accuracy (62-69%).

Because bodies move slowly, consecutive rebuilds produce *similar* trees:
a reassigned address usually receives a logical node from the same region
of the tree, owned by the same processor and read by an overlapping (but
not identical) set of readers.  The model captures this with spatially
contiguous ownership, regional reader sets, and rebuilds that permute the
object-to-block mapping only within local windows.  Traversal reads are
irregular (readers participate probabilistically, with occasional
strangers), reflecting the force-computation walk.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import WorkloadError
from ..sim.memory_map import Allocator
from .access import Phase, read
from .base import Workload
from .patterns import producer_consumer


class _LogicalObject:
    """One octree cell/body with a stable sharing pattern."""

    __slots__ = ("owner", "readers")

    def __init__(self, owner: int, readers: List[int]) -> None:
        self.owner = owner
        self.readers = readers


class Barnes(Workload):
    """Hierarchical N-body with per-iteration octree rebuild."""

    name = "barnes"
    description = (
        "Barnes-Hut N-body; octree rebuilt each iteration reassigns "
        "addresses to logical nodes, obscuring stable sharing patterns"
    )
    default_iterations = 40

    def __init__(
        self,
        n_procs: int = 16,
        n_objects: int = 160,
        remap_fraction: float = 1.0,
        remap_window: int = 6,
        reader_participation: float = 0.9,
        extra_reader_prob: float = 0.05,
        max_readers: int = 3,
        reader_span: int = 3,
    ) -> None:
        super().__init__(n_procs)
        if not 0.0 <= remap_fraction <= 1.0:
            raise WorkloadError("remap_fraction must be within [0, 1]")
        if n_objects < n_procs:
            raise WorkloadError("need at least one object per processor")
        if remap_window < 2:
            raise WorkloadError("remap_window must be at least 2")
        self.n_objects = n_objects
        self.remap_fraction = remap_fraction
        self.remap_window = remap_window
        self.reader_participation = reader_participation
        self.extra_reader_prob = extra_reader_prob
        self.max_readers = max_readers
        self.reader_span = reader_span
        self._objects: List[_LogicalObject] = []
        self._blocks: List[int] = []
        #: object index -> block index (permuted locally by rebuilds).
        self._mapping: List[int] = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._blocks = allocator.alloc_blocks(self.n_objects)
        self._mapping = list(range(self.n_objects))
        self._objects = []
        for index in range(self.n_objects):
            # Contiguous object ranges per owner: spatial tree regions.
            owner = (index * self.n_procs) // self.n_objects
            n_readers = rng.randint(1, self.max_readers)
            # Readers come from nearby regions of the tree.
            span = [
                (owner + delta) % self.n_procs
                for delta in range(-self.reader_span, self.reader_span + 1)
                if delta != 0
            ]
            readers = rng.sample(span, min(n_readers, len(span)))
            self._objects.append(_LogicalObject(owner, readers))

    def _rebuild_octree(self, rng: random.Random) -> None:
        """Rotate the block mapping within local windows.

        Slow body motion means a rebuilt tree resembles the previous one:
        a block's new occupant comes from the same small neighbourhood of
        logical nodes, and over iterations each block cycles through a
        *recurring* set of occupants.  Depth-1 Cosmos conflates their
        signatures (the paper's barnes weakness); deeper history can
        re-identify the current occupant from recent senders.
        """
        for start in range(0, self.n_objects, self.remap_window):
            if rng.random() >= self.remap_fraction:
                continue
            window = list(
                range(start, min(start + self.remap_window, self.n_objects))
            )
            slots = [self._mapping[i] for i in window]
            rotated = slots[1:] + slots[:1]
            for obj_index, slot in zip(window, rotated):
                self._mapping[obj_index] = slot

    def startup(self, rng: random.Random) -> List[Phase]:
        phase = self._new_phase()
        for index, obj in enumerate(self._objects):
            block = self._blocks[self._mapping[index]]
            producer_consumer(phase, block, obj.owner, [], producer_reads=False)
        return [phase]

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        self._rebuild_octree(rng)
        # Tree build: owners write their (possibly relocated) objects.
        build = self._new_phase()
        # Force computation: irregular traversal reads.
        traverse = self._new_phase()
        for obj_index in range(self.n_objects):
            obj = self._objects[obj_index]
            block = self._blocks[self._mapping[obj_index]]
            producer_consumer(build, block, obj.owner, [])
            for reader in obj.readers:
                if rng.random() < self.reader_participation:
                    traverse[reader].append(read(block))
            if rng.random() < self.extra_reader_prob:
                extra = rng.randrange(self.n_procs)
                if extra != obj.owner:
                    traverse[extra].append(read(block))
        return [build, traverse]
