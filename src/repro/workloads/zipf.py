"""zipf: synthetic memory-pressure workload (Zipf-α block popularity).

The paper's five benchmarks touch a few thousand blocks on 16 nodes, so
an unbounded Cosmos bank never feels memory pressure.  This workload
exists to make capacity *bind*: block popularity follows a Zipf(α)
distribution over an arbitrarily large block space (millions of distinct
blocks at evaluate scale), with several tenants interleaved so one hot
tenant can crowd others out of a shared budget.  Everything is
deterministic per seed.

Two surfaces share the sampler:

* :class:`Zipf` -- a :class:`~repro.workloads.base.Workload` that runs
  through the full protocol simulator like any Table 4 benchmark
  (``repro-trace simulate zipf``).  Necessarily modest scale: the
  simulator keeps per-block directory state.
* :func:`zipf_trace` -- a *streaming* generator of coherence-message
  observations for direct predictor evaluation
  (``repro-trace evaluate zipf``).  It holds O(1) state beyond the
  sampler's precomputed zeta constant, so a bounded predictor replaying
  it runs in bounded memory no matter how many distinct blocks appear --
  the property the CI ``memory-pressure`` job asserts.

The sampler is the YCSB-style Zipfian generator (Gray et al.'s
"Quickly generating billion-record synthetic databases" construction):
O(n) zeta precompute (memoized per ``(n, alpha)``), O(1) per sample.

Each block carries a deterministic short message cycle derived from its
address, advanced every ``period`` events, so the stream is *learnable*:
a predictor that can keep a block's history predicts it well, and one
that evicted it cannot -- which is exactly what makes the
accuracy-vs-capacity frontier (the ``capacity`` experiment) meaningful.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from ..errors import WorkloadError
from ..protocol.messages import MessageType, Role
from ..trace.events import TraceEvent
from .access import Access, Phase
from .base import Workload
from ..sim.memory_map import Allocator

#: Message types a cache-side module legitimately receives.
_CACHE_TYPES = (
    MessageType.GET_RO_RESPONSE,
    MessageType.GET_RW_RESPONSE,
    MessageType.UPGRADE_RESPONSE,
    MessageType.INVAL_RO_REQUEST,
    MessageType.INVAL_RW_REQUEST,
    MessageType.DOWNGRADE_REQUEST,
)

#: Memoized zeta(n, theta) partial sums -- the O(n) part of the sampler,
#: paid once per (n, alpha) even across experiment sweeps.
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}


def _zeta(n: int, theta: float) -> float:
    found = _ZETA_CACHE.get((n, theta))
    if found is None:
        found = 0.0
        for i in range(1, n + 1):
            found += 1.0 / i ** theta
        _ZETA_CACHE[(n, theta)] = found
    return found


class ZipfSampler:
    """Zipf(α) ranks in ``[0, n)``, rank 0 most popular; O(1) per draw."""

    __slots__ = ("n", "theta", "_zetan", "_half", "_alpha", "_eta")

    def __init__(self, n: int, alpha: float = 0.99) -> None:
        if n < 2:
            raise WorkloadError(f"zipf needs at least 2 ranks, got {n}")
        if not 0.0 < alpha < 1.0:
            raise WorkloadError(
                f"zipf alpha must be in (0, 1) for the YCSB construction, "
                f"got {alpha}"
            )
        self.n = n
        self.theta = alpha
        self._zetan = _zeta(n, alpha)
        self._half = 0.5 ** alpha
        self._alpha = 1.0 / (1.0 - alpha)
        zeta2 = 1.0 + self._half
        self._eta = (1.0 - (2.0 / n) ** (1.0 - alpha)) / (
            1.0 - zeta2 / self._zetan
        )
    def sample(self, rng: random.Random) -> int:
        """Draw one rank using ``rng`` (caller owns the seed)."""
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + self._half:
            return 1
        rank = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return rank if rank < self.n else self.n - 1


def _block_cycle(block: int, nodes: int) -> Tuple[Tuple[int, MessageType], ...]:
    """The block's deterministic message cycle, derived from its address."""
    h = (block * 0x9E3779B1) & 0xFFFFFFFF
    length = 2 + h % 3
    return tuple(
        (
            (h >> (4 * j + 2)) % nodes,
            _CACHE_TYPES[(h >> (4 * j + 9)) % len(_CACHE_TYPES)],
        )
        for j in range(length)
    )


class Zipf(Workload):
    """Simulator-scale pressure model: Zipf popularity, tenant regions.

    Processors are partitioned into ``tenants`` groups, each owning a
    private region of ``n_blocks // tenants`` blocks with its own
    popularity permutation, so every tenant hammers its own hot set --
    the multi-tenant interleaving that per-tenant serving budgets are
    tested against.
    """

    name = "zipf"
    description = (
        "synthetic memory pressure; Zipf-alpha block popularity over "
        "per-tenant regions, interleaved deterministically"
    )
    default_iterations = 20

    def __init__(
        self,
        n_procs: int = 16,
        n_blocks: int = 256,
        alpha: float = 0.99,
        tenants: int = 4,
        accesses_per_proc: int = 24,
        write_fraction: float = 0.25,
    ) -> None:
        super().__init__(n_procs)
        if tenants < 1:
            raise WorkloadError("zipf needs at least one tenant")
        if tenants > n_procs:
            raise WorkloadError("zipf cannot have more tenants than procs")
        if n_blocks < 2 * tenants:
            raise WorkloadError(
                "zipf needs at least 2 blocks per tenant region"
            )
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError("write_fraction must be in [0, 1]")
        self.n_blocks = n_blocks
        self.alpha = alpha
        self.tenants = tenants
        self.accesses_per_proc = accesses_per_proc
        self.write_fraction = write_fraction
        self._regions: List[List[int]] = []
        self._sampler: ZipfSampler | None = None

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        blocks = allocator.alloc_blocks(self.n_blocks)
        per_tenant = self.n_blocks // self.tenants
        self._sampler = ZipfSampler(per_tenant, self.alpha)
        self._regions = []
        for tenant in range(self.tenants):
            region = list(
                blocks[tenant * per_tenant:(tenant + 1) * per_tenant]
            )
            # Each tenant gets its own popularity order, so hot blocks
            # differ per tenant even though regions are allocated
            # contiguously.
            rng.shuffle(region)
            self._regions.append(region)

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        phase: Phase = []
        for proc in range(self.n_procs):
            region = self._regions[proc % self.tenants]
            accesses = []
            for _ in range(self.accesses_per_proc):
                block = region[self._sampler.sample(rng)]
                accesses.append(
                    Access(block, rng.random() < self.write_fraction)
                )
            phase.append(accesses)
        return [phase]


def zipf_trace(
    n_events: int,
    n_blocks: int,
    alpha: float = 0.99,
    tenants: int = 4,
    nodes: int = 16,
    seed: int = 0,
    period: int = 2048,
) -> Iterator[TraceEvent]:
    """Stream ``n_events`` observations over ``n_blocks`` distinct blocks.

    Tenants round-robin the stream; tenant ``t`` is module ``(node=t,
    CACHE)``, and its rank ``r`` maps to block ``(r * tenants + t) * 64``
    so block addresses are globally distinct across tenants.  Message
    content follows each block's :func:`_block_cycle`, advancing one
    step every ``period`` events -- long predictable runs punctuated by
    re-learning, like the paper's interaction-list rebuilds.
    """
    if tenants < 1:
        raise WorkloadError("zipf_trace needs at least one tenant")
    if not 1 <= nodes <= 4096:
        raise WorkloadError("nodes must fit in the 12-bit sender field")
    sampler = ZipfSampler(n_blocks, alpha)
    rngs = [random.Random((seed << 8) | t) for t in range(tenants)]
    for index in range(n_events):
        tenant = index % tenants
        rank = sampler.sample(rngs[tenant])
        block = (rank * tenants + tenant) * 64
        cycle = _block_cycle(block, nodes)
        sender, mtype = cycle[(index // period) % len(cycle)]
        yield TraceEvent(
            time=index,
            iteration=index // period,
            node=tenant,
            role=Role.CACHE,
            block=block,
            sender=sender,
            mtype=mtype,
        )
