"""Abstract workload model.

A workload stands in for one of the paper's five scientific applications.
It lays out its shared data structures over the simulated memory (homes
assigned round-robin by the allocator) and, for every iteration, produces
the per-processor shared-memory access sequences that the real application's
sharing pattern would generate.

Iterations are split into *phases*; processors run concurrently within a
phase and the machine barriers between phases, mirroring the loop-level
barriers of the real codes.  Only accesses to *shared* data need to be
emitted -- private computation generates no coherence traffic and is
modeled by think-time in the machine's processor model.
"""

from __future__ import annotations

import abc
import random
from typing import List

from ..sim.memory_map import Allocator
from .access import Phase, empty_phase


class Workload(abc.ABC):
    """Base class for the five application models."""

    #: Short name, matching the paper's benchmark table.
    name: str = "workload"
    #: One-line description (paper Table 4 flavour).
    description: str = ""
    #: Iteration count the paper-scale experiments run by default.
    default_iterations: int = 40

    def __init__(self, n_procs: int = 16) -> None:
        if n_procs < 2:
            raise ValueError("workloads need at least two processors")
        self.n_procs = n_procs

    @abc.abstractmethod
    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        """Allocate blocks and fix the workload's sharing structure."""

    def startup(self, rng: random.Random) -> List[Phase]:
        """Access phases of the start-up (initialization) section.

        The paper's traces exclude start-up messages; the machine records
        them but marks them so analyses can drop them.  Default: nothing.
        """
        return []

    @abc.abstractmethod
    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        """Access phases of main iteration ``index`` (1-based)."""

    # Convenience -------------------------------------------------------

    def _new_phase(self) -> Phase:
        return empty_phase(self.n_procs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} procs={self.n_procs}>"
