"""The ``repro-trace`` command line: simulate, evaluate, inspect traces.

Subcommands::

    repro-trace simulate appbt -o appbt.jsonl --iterations 40 --seed 1
    repro-trace simulate appbt -o appbt.jsonl --trace-events appbt_timeline.json
    repro-trace simulate appbt -o appbt.jsonl --checkpoint-dir ckpts/
    repro-trace resume ckpts/checkpoint-0020.ckpt -o appbt.jsonl
    repro-trace evaluate appbt.jsonl --depth 2 --filter 1
    repro-trace explain appbt.jsonl --block 0x12340 --last 4
    repro-trace critical-path dsmc --quick --top 3
    repro-trace info appbt.jsonl
    repro-trace dot appbt.jsonl --role cache -o appbt_cache.dot

``simulate`` writes a JSON-lines coherence-message trace; the other
subcommands consume one.  This decouples the expensive simulation from
cheap repeated analyses, exactly like the paper's trace-driven
methodology.  ``--trace-events`` additionally captures a structured
event log during simulation and exports it as Chrome trace-event /
Perfetto JSON (load it at https://ui.perfetto.dev); ``explain`` replays
a saved trace with misprediction forensics (see
``docs/observability.md``).

``critical-path`` runs a workload with causal span tracing on,
reconstructs every coherence transaction's span tree, segments its
critical path (indirection / transfer / queue / retry /
predicted-shortcut), and attributes latency to prediction outcomes --
the per-transaction view of the paper's central claim (see
``docs/observability.md``).

``--checkpoint-dir`` snapshots the whole machine at iteration
boundaries (versioned, checksummed files -- see ``docs/robustness.md``)
and ``resume`` finishes an interrupted simulation from one, producing a
byte-identical trace.  ``--watchdog`` guards a run against livelock:
instead of hanging, a stuck phase aborts with a forensic bundle.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional

from .analysis.arcs import measure_arcs
from .analysis.dot import signature_graph_dot
from .analysis.report import render_table
from .analysis.signatures import extract_signatures
from .analysis.traffic import summarize_traffic
from .core.config import CosmosConfig
from .core.corruption import CorruptionInjector, CorruptionProfile
from .core.evaluation import evaluate_trace
from .core.eviction import EVICTION_POLICIES
from .core.predictor import CosmosPredictor
from .errors import ReproError
from .ioutil import atomic_write_text
from .obs import (
    OBS,
    build_manifest,
    explain_trace,
    export_trace_events,
    format_pattern,
    save_trace_events,
    validate_trace_events,
)
from .protocol.messages import Role
from .protocol.stache import StacheOptions
from .sim.checkpoint import resume_simulation, simulate_with_checkpoints
from .sim.faults import PRESETS, FaultProfile
from .sim.machine import simulate
from .sim.metrics import METRICS, dump_metrics_json
from .sim.params import PAPER_PARAMS
from .sim.watchdog import DEFAULT_WATCHDOG, Watchdog, WatchdogConfig
from .trace.events import TraceEvent
from .trace.io import load_trace, save_trace
from .workloads.registry import BENCHMARK_NAMES, WORKLOAD_NAMES, make_workload
from .workloads.zipf import zipf_trace

#: Observability levels selectable from the command line.
OBS_LEVEL_CHOICES = ("proto", "msg", "pred", "full")


def _watchdog_from_args(args: argparse.Namespace) -> Optional[Watchdog]:
    """Build the run's watchdog (``None`` when not requested).

    ``--watchdog-bundle`` implies ``--watchdog``: asking where to write
    the forensics is asking for the forensics.
    """
    if not (args.watchdog or args.watchdog_bundle is not None):
        return None
    config = DEFAULT_WATCHDOG
    if (
        args.watchdog_seconds is not None
        or args.watchdog_events is not None
        or args.watchdog_run_seconds is not None
    ):
        config = WatchdogConfig(
            wall_clock_s=(
                args.watchdog_seconds
                if args.watchdog_seconds is not None
                else DEFAULT_WATCHDOG.wall_clock_s
            ),
            max_events=(
                args.watchdog_events
                if args.watchdog_events is not None
                else DEFAULT_WATCHDOG.max_events
            ),
            run_wall_clock_s=args.watchdog_run_seconds,
        )
    return Watchdog(config, bundle_path=args.watchdog_bundle)


def _cmd_simulate(args: argparse.Namespace) -> int:
    workload = make_workload(args.app)
    options = StacheOptions(
        half_migratory=not args.no_half_migratory,
        forwarding=args.forwarding,
    )
    faults = None
    if args.fault_profile is not None:
        profile = FaultProfile.parse(args.fault_profile)
        if profile.is_active:
            faults = profile
    watchdog = _watchdog_from_args(args)
    if args.trace_events:
        OBS.configure(args.obs_level)
    try:
        with METRICS.timer("trace.simulate"):
            if args.checkpoint_dir is not None:
                collector = simulate_with_checkpoints(
                    workload,
                    iterations=args.iterations,
                    seed=args.seed,
                    options=options,
                    faults=faults,
                    fault_seed=args.fault_seed,
                    checkpoint_dir=args.checkpoint_dir,
                    every=args.checkpoint_every,
                    watchdog=watchdog,
                )
            else:
                collector = simulate(
                    workload,
                    iterations=args.iterations,
                    seed=args.seed,
                    options=options,
                    faults=faults,
                    fault_seed=args.fault_seed,
                    watchdog=watchdog,
                )
        METRICS.inc("trace.simulated")
        count = save_trace(collector.events, args.output)
        print(f"wrote {count} events to {args.output}")
        if args.checkpoint_dir is not None:
            print(f"checkpoints written under {args.checkpoint_dir}")
        if args.trace_events:
            _export_timeline(args)
    finally:
        if args.trace_events:
            OBS.disable()
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Finish a simulation from a checkpoint file.

    The checkpoint carries its own configuration (workload, options,
    fault profile, RNG streams), so nothing needs re-specifying; the
    resulting trace is byte-identical to an uninterrupted run's.
    """
    watchdog = _watchdog_from_args(args)
    with METRICS.timer("trace.resume"):
        collector = resume_simulation(
            args.checkpoint,
            checkpoint_dir=args.checkpoint_dir,
            every=args.checkpoint_every,
            watchdog=watchdog,
        )
    count = save_trace(collector.events, args.output)
    print(f"resumed from {args.checkpoint}")
    print(f"wrote {count} events to {args.output}")
    return 0


def _export_timeline(args: argparse.Namespace) -> None:
    """Write the captured event log as trace-event JSON (simulate)."""
    manifest = build_manifest(
        "repro-trace simulate",
        app=args.app,
        iterations=args.iterations,
        seed=args.seed,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
        forwarding=args.forwarding,
        half_migratory=not args.no_half_migratory,
        obs_level=args.obs_level,
    )
    document = export_trace_events(
        OBS.events(),
        PAPER_PARAMS.n_nodes,
        manifest=manifest,
        dropped=OBS.dropped,
    )
    errors = validate_trace_events(document)
    if errors:
        raise ReproError(
            "timeline export failed validation: " + "; ".join(errors[:5])
        )
    save_trace_events(document, args.trace_events)
    print(
        f"wrote {document['otherData']['events']} timeline events to "
        f"{args.trace_events} ({OBS.dropped} dropped)"
    )


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.trace == "zipf":
        # Streamed, never materialized: bounded predictors replaying it
        # run in bounded memory regardless of distinct-block count.
        events: Iterable[TraceEvent] = zipf_trace(
            args.zipf_events,
            args.zipf_blocks,
            alpha=args.zipf_alpha,
            tenants=args.zipf_tenants,
            seed=args.zipf_seed,
        )
    else:
        events = load_trace(args.trace)
    config = CosmosConfig(
        depth=args.depth,
        filter_max_count=args.filter,
        macroblock_bytes=args.macroblock,
        mhr_capacity=args.mhr_capacity,
        pht_capacity=args.pht_capacity,
        eviction=args.eviction,
    )
    corruption = None
    if args.corrupt is not None:
        corruption = CorruptionProfile.from_faults(
            FaultProfile.parse(args.corrupt)
        )
        if corruption is None:
            raise ReproError(
                "--corrupt needs a flip= and/or loss= rate, e.g. "
                "'flip=0.01,loss=0.002'"
            )
    created: List[CosmosPredictor] = []
    if corruption is not None:
        # One independent error stream per predictor module, seeded in
        # first-reference order (deterministic: the trace fixes it).
        def factory() -> CosmosPredictor:
            injector = CorruptionInjector(
                corruption,
                seed=args.corrupt_seed * 1_000_003 + len(created),
            )
            predictor = CosmosPredictor(config, corruption=injector)
            created.append(predictor)
            return predictor

        result = evaluate_trace(
            events, config, predictor_factory=factory, track_arcs=False
        )
    else:
        result = evaluate_trace(events, config, track_arcs=False)
    print(f"{config.describe()} over {result.overall.refs} events:")
    print(f"  cache     {result.cache_accuracy:7.1%}")
    print(f"  directory {result.directory_accuracy:7.1%}")
    print(f"  overall   {result.overall_accuracy:7.1%}")
    if result.overhead is not None:
        print(
            f"  memory    ratio {result.overhead.ratio:.1f}, "
            f"{result.overhead.overhead_percent:.1f}% of a "
            f"{config.block_bytes}-byte block"
        )
    if config.mhr_capacity or config.pht_capacity:
        print(
            f"  bounded   live {METRICS.counter('pred.mem.mhr_live')} MHR / "
            f"{METRICS.counter('pred.mem.pht_live')} PHT entries "
            f"(peak {METRICS.counter('pred.mem.peak_mhr')}/"
            f"{METRICS.counter('pred.mem.peak_pht')}), evicted "
            f"{METRICS.counter('pred.mem.evictions_mhr')} MHR / "
            f"{METRICS.counter('pred.mem.evictions_pht')} PHT, "
            f"~{METRICS.counter('pred.mem.bytes_est')} bytes est"
        )
    if created:
        flips = sum(p.corrupt_flips for p in created)
        losses = sum(p.corrupt_losses for p in created)
        detected = sum(p.corrupt_detected for p in created)
        print(
            f"  corruption: {flips} bit flips, {losses} entry losses "
            f"injected; {detected} caught by parity and relearned"
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    config = CosmosConfig(
        depth=args.depth,
        filter_max_count=args.filter,
        macroblock_bytes=args.macroblock,
    )
    report = explain_trace(events, config, per_block=args.per_block)
    if args.block is not None:
        try:
            block = int(args.block, 0)
        except ValueError:
            raise ReproError(
                f"bad block address {args.block!r}; expected decimal or "
                "0x-prefixed hex"
            ) from None
        print(report.format_block(block, last=args.last))
        return 0
    # No block selected: rank what went wrong across the whole trace.
    print(
        f"{config.describe()} over {len(events)} events: "
        f"{report.total_mispredicts} mispredictions in "
        f"{report.total_refs} references"
    )
    worst_blocks = sorted(
        report.tallies.items(),
        key=lambda item: (
            -item[1].mispredictions,
            item[0][0],
            item[0][1].value,
            item[0][2],
        ),
    )[: args.top]
    rows = [
        [
            f"0x{block:x}",
            f"P{node}/{role}",
            tally.refs,
            tally.mispredictions,
            f"{tally.accuracy:.1%}",
        ]
        for (node, role, block), tally in worst_blocks
        if tally.mispredictions
    ]
    if rows:
        print()
        print(
            render_table(
                ["block", "module", "refs", "mispredicts", "accuracy"],
                rows,
                title="Worst (module, block) pairs",
            )
        )
    pattern_rows = [
        [str(role), format_pattern(pattern) or "(empty)", mispredicts, refs]
        for role, pattern, mispredicts, refs in report.top_patterns(args.top)
    ]
    if pattern_rows:
        print()
        print(
            render_table(
                ["role", "history pattern", "mispredicts", "refs"],
                pattern_rows,
                title="History patterns ranked by mispredictions",
            )
        )
    print(
        "\nrun with --block <addr> for per-block capture rings "
        "(MHR, PHT entry, noise filter)"
    )
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from .core.bank import PredictorBank
    from .experiments.common import iterations_for, workload_for
    from .obs.critpath import (
        attributed_paths,
        fold_critpath_metrics,
        replay_outcomes,
        summarize,
    )
    from .obs.spans import SPANS, build_transactions, format_span_tree

    if args.quick:
        workload = workload_for(args.app, quick=True)
        iterations = (
            args.iterations
            if args.iterations is not None
            else iterations_for(args.app, quick=True)
        )
    else:
        workload = make_workload(args.app)
        iterations = args.iterations
    faults = None
    if args.fault_profile is not None:
        profile = FaultProfile.parse(args.fault_profile)
        if profile.is_active:
            faults = profile
    if args.trace_events:
        OBS.configure("msg")
    SPANS.enable()
    try:
        with METRICS.timer("trace.critical_path"):
            collector = simulate(
                workload,
                iterations=iterations,
                seed=args.seed,
                faults=faults,
                fault_seed=args.fault_seed,
            )
        transactions = build_transactions(SPANS.records)
    finally:
        SPANS.disable()
        if args.trace_events:
            obs_events = OBS.events()
            obs_dropped = OBS.dropped
            OBS.disable()

    latency_ns = PAPER_PARAMS.one_way_message_ns
    baseline = summarize(attributed_paths(transactions, {}, latency_ns))
    bank = PredictorBank(CosmosConfig(depth=args.depth))
    outcomes = replay_outcomes(collector.all_events, transactions, bank)
    paths = attributed_paths(transactions, outcomes, latency_ns)
    fold_critpath_metrics(paths)

    if args.block is not None:
        try:
            block = int(args.block, 0)
        except ValueError:
            raise ReproError(
                f"bad block address {args.block!r}; expected decimal or "
                "0x-prefixed hex"
            ) from None
        paths = [p for p in paths if p.block == block]
        if not paths:
            raise ReproError(
                f"no transactions touched block 0x{block:x}"
            )
        print(f"{args.app} block 0x{block:x} (cosmos depth={args.depth}):")
        print(summarize(paths).format())
    else:
        print(f"{args.app}: no-predictor baseline")
        print(baseline.format())
        print()
        print(f"{args.app}: cosmos depth={args.depth}")
        print(summarize(paths).format())

    worst = sorted(paths, key=lambda p: (-p.total_ns, p.txn))[: args.top]
    for rank, path in enumerate(worst, 1):
        print()
        print(
            f"#{rank}: {path.total_ns} ns on the critical path, "
            f"outcome={path.outcome or 'none'}, "
            f"saved={path.saved_ns:.0f} ns, "
            f"penalty={path.penalty_ns:.0f} ns"
        )
        print(
            "  segments: "
            + "  ".join(
                f"{s.kind}[{s.start_ns}..{s.end_ns}]"
                for s in path.segments
            )
        )
        print(format_span_tree(transactions[path.txn]))

    if args.trace_events:
        manifest = build_manifest(
            "repro-trace critical-path",
            app=args.app,
            iterations=iterations,
            seed=args.seed,
            quick=args.quick,
            fault_profile=args.fault_profile,
            fault_seed=args.fault_seed,
            depth=args.depth,
        )
        document = export_trace_events(
            obs_events,
            PAPER_PARAMS.n_nodes,
            manifest=manifest,
            dropped=obs_dropped,
            spans=transactions.values(),
        )
        errors = validate_trace_events(document)
        if errors:
            raise ReproError(
                "timeline export failed validation: "
                + "; ".join(errors[:5])
            )
        save_trace_events(document, args.trace_events)
        print(
            f"\nwrote {document['otherData']['events']} timeline events "
            f"to {args.trace_events} ({obs_dropped} dropped)"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    print(summarize_traffic(events).format())
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    role = Role.CACHE if args.role == "cache" else Role.DIRECTORY
    arcs = measure_arcs(events, depth=1, min_ref_percent=args.min_ref)
    signature = extract_signatures(arcs)[role]
    dot = signature_graph_dot(
        arcs, role, signature=signature, title=f"{args.trace} ({args.role})"
    )
    if args.output:
        atomic_write_text(args.output, dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help=(
            "write a checksummed machine checkpoint under DIR at "
            "iteration boundaries; resume one with 'repro-trace resume'"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N iterations (default 1)",
    )


def _add_watchdog_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--watchdog",
        action="store_true",
        help=(
            "guard the run against livelock/deadlock: abort with a "
            "forensic bundle instead of hanging"
        ),
    )
    parser.add_argument(
        "--watchdog-bundle",
        metavar="PATH",
        default=None,
        help=(
            "also write the forensic bundle as JSON to PATH when the "
            "watchdog trips (implies --watchdog)"
        ),
    )
    parser.add_argument(
        "--watchdog-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "wall-clock budget per simulation phase (default "
            f"{DEFAULT_WATCHDOG.wall_clock_s:g}s)"
        ),
    )
    parser.add_argument(
        "--watchdog-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "event budget per simulation phase (default "
            f"{DEFAULT_WATCHDOG.max_events})"
        ),
    )
    parser.add_argument(
        "--watchdog-run-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "wall-clock budget for the whole run segment, measured from "
            "start (or from resume time for 'resume'); disabled by "
            "default"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Simulate and analyze coherence-message traces.",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="dump runtime counters/timers as JSON to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a workload, save its trace")
    sim.add_argument("app", choices=WORKLOAD_NAMES)
    sim.add_argument("-o", "--output", required=True)
    sim.add_argument("--iterations", type=int, default=None)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--forwarding",
        action="store_true",
        help="use Origin-style three-hop forwarding",
    )
    sim.add_argument(
        "--no-half-migratory",
        action="store_true",
        help="downgrade (DASH-style) instead of invalidating owners",
    )
    sim.add_argument(
        "--fault-profile",
        metavar="SPEC",
        default=None,
        help=(
            "inject interconnect faults: a preset "
            f"({', '.join(PRESETS)}) or 'drop=0.05,reorder=0.2,...'"
        ),
    )
    sim.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault-injection RNG (default 0)",
    )
    sim.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help=(
            "also capture a structured event log and export it as "
            "Chrome trace-event / Perfetto JSON to PATH"
        ),
    )
    sim.add_argument(
        "--obs-level",
        choices=OBS_LEVEL_CHOICES,
        default="msg",
        help=(
            "capture depth for --trace-events: proto (state transitions, "
            "retries, faults), msg (+ sends/deliveries), pred/full "
            "(+ predictor events); default msg"
        ),
    )
    _add_checkpoint_options(sim)
    _add_watchdog_options(sim)
    sim.set_defaults(func=_cmd_simulate)

    res = sub.add_parser(
        "resume",
        help="finish an interrupted simulation from a checkpoint file",
    )
    res.add_argument("checkpoint", help="a checkpoint-NNNN.ckpt file")
    res.add_argument("-o", "--output", required=True)
    _add_checkpoint_options(res)
    _add_watchdog_options(res)
    res.set_defaults(func=_cmd_resume)

    ev = sub.add_parser("evaluate", help="score Cosmos on a saved trace")
    ev.add_argument(
        "trace",
        help=(
            "a saved trace file, or the literal 'zipf' to stream a "
            "synthetic Zipf pressure workload (see --zipf-*) without "
            "materializing a trace"
        ),
    )
    ev.add_argument("--depth", type=int, default=1)
    ev.add_argument("--filter", type=int, default=0,
                    help="noise-filter saturating-counter maximum")
    ev.add_argument("--macroblock", type=int, default=None,
                    help="group blocks into macroblocks of this many bytes")
    ev.add_argument(
        "--corrupt",
        metavar="SPEC",
        default=None,
        help=(
            "inject seeded predictor-SRAM soft errors during the "
            "replay: 'flip=0.01,loss=0.002' (per-observation rates); "
            "parity-protected entries are dropped and relearned"
        ),
    )
    ev.add_argument(
        "--corrupt-seed",
        type=int,
        default=0,
        help="seed for the corruption-injection RNG (default 0)",
    )
    ev.add_argument(
        "--mhr-capacity",
        type=int,
        default=0,
        help="bound MHR entries per predictor module (0 = unbounded)",
    )
    ev.add_argument(
        "--pht-capacity",
        type=int,
        default=0,
        help="bound total PHT entries per predictor module (0 = unbounded)",
    )
    ev.add_argument(
        "--eviction",
        choices=EVICTION_POLICIES,
        default="lru",
        help="replacement policy for bounded tables (default lru)",
    )
    ev.add_argument(
        "--zipf-events", type=int, default=1_000_000,
        help="events to stream when trace is 'zipf' (default 1M)",
    )
    ev.add_argument(
        "--zipf-blocks", type=int, default=1_000_000,
        help="distinct-block rank space when trace is 'zipf' (default 1M)",
    )
    ev.add_argument(
        "--zipf-alpha", type=float, default=0.99,
        help="Zipf skew in (0, 1) when trace is 'zipf' (default 0.99)",
    )
    ev.add_argument(
        "--zipf-tenants", type=int, default=4,
        help="interleaved tenants when trace is 'zipf' (default 4)",
    )
    ev.add_argument(
        "--zipf-seed", type=int, default=0,
        help="generator seed when trace is 'zipf' (default 0)",
    )
    ev.set_defaults(func=_cmd_evaluate)

    exp = sub.add_parser(
        "explain", help="misprediction forensics for a saved trace"
    )
    exp.add_argument("trace")
    exp.add_argument(
        "--block",
        default=None,
        help=(
            "block address (decimal or 0x-hex) to show capture rings "
            "for; omit for a whole-trace ranking"
        ),
    )
    exp.add_argument("--depth", type=int, default=1)
    exp.add_argument("--filter", type=int, default=0,
                     help="noise-filter saturating-counter maximum")
    exp.add_argument("--macroblock", type=int, default=None,
                     help="group blocks into macroblocks of this many bytes")
    exp.add_argument(
        "--per-block",
        type=int,
        default=8,
        help="capture-ring depth per (node, module, block); default 8",
    )
    exp.add_argument(
        "--last",
        type=int,
        default=None,
        help="with --block: show only the newest N captured records",
    )
    exp.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the whole-trace rankings; default 10",
    )
    exp.set_defaults(func=_cmd_explain)

    crit = sub.add_parser(
        "critical-path",
        help=(
            "trace a workload's transactions causally and attribute "
            "critical-path latency to prediction outcomes"
        ),
    )
    crit.add_argument("app", choices=BENCHMARK_NAMES)
    crit.add_argument("--iterations", type=int, default=None)
    crit.add_argument("--seed", type=int, default=0)
    crit.add_argument(
        "--quick",
        action="store_true",
        help="use the experiments' shrunken quick-scale workload",
    )
    crit.add_argument(
        "--depth", type=int, default=2, help="Cosmos MHR depth (default 2)"
    )
    crit.add_argument(
        "--block",
        default=None,
        help=(
            "restrict the report to one block address (decimal or "
            "0x-hex)"
        ),
    )
    crit.add_argument(
        "--top",
        type=int,
        default=5,
        help="worst transactions to print with span trees; default 5",
    )
    crit.add_argument(
        "--fault-profile",
        metavar="SPEC",
        default=None,
        help=(
            "inject interconnect faults: a preset "
            f"({', '.join(PRESETS)}) or 'drop=0.05,reorder=0.2,...'"
        ),
    )
    crit.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault-injection RNG (default 0)",
    )
    crit.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help=(
            "also export the run as Chrome trace-event / Perfetto JSON "
            "with per-transaction async spans and cross-lane flow "
            "arrows"
        ),
    )
    crit.set_defaults(func=_cmd_critical_path)

    info = sub.add_parser("info", help="traffic characterization of a trace")
    info.add_argument("trace")
    info.set_defaults(func=_cmd_info)

    dot = sub.add_parser("dot", help="export a signature graph as Graphviz")
    dot.add_argument("trace")
    dot.add_argument("--role", choices=("cache", "directory"),
                     default="cache")
    dot.add_argument("--min-ref", type=float, default=2.0,
                     help="drop arcs below this reference share (%%)")
    dot.add_argument("-o", "--output", default=None)
    dot.set_defaults(func=_cmd_dot)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    METRICS.reset()
    try:
        with METRICS.timer("cli.command"):
            status = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.metrics_json:
        dump_metrics_json(
            METRICS.snapshot(),
            args.metrics_json,
            command=args.command,
            manifest=build_manifest(f"repro-trace {args.command}"),
        )
        print(f"metrics written to {args.metrics_json}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
