"""Content-addressed on-disk cache of simulation message traces.

Simulating a workload is the expensive step of every experiment; the
resulting trace depends only on ``(workload + construction kwargs,
iterations, seed, system params, protocol options)``.  This module hashes
that tuple into a cache key and stores the trace once per key, so
predictor sweeps (figures 6/7, sensitivity, ablations) replay traces from
disk instead of re-running the simulator -- across processes, including
the parallel runner's worker pool.

Layout: ``<root>/<digest[:2]>/<digest>.trace``.  Each file holds two
pickle frames: a small metadata header (format version, event count,
SHA-256 of the payload, the human-readable key descriptor) followed by
the pickled event list.  Loads verify the hash and count; any mismatch,
truncation, or unpickling error is treated as a miss -- the corrupt file
is removed and the caller re-simulates.  Writes go through a temp file
and ``os.replace`` so concurrent workers never observe a half-written
trace.  Bump :data:`FORMAT_VERSION` whenever the event schema or the
simulator's timing model changes meaning: old entries then simply stop
matching and are re-simulated.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs.manifest import build_manifest
from ..sim.metrics import METRICS
from ..sim.params import SystemParams
from ..protocol.stache import StacheOptions
from .events import TraceEvent

#: Bump when TraceEvent's schema or the simulator's semantics change.
FORMAT_VERSION = 1

_HEADER_MAGIC = "repro-trace-cache"


@dataclass(frozen=True)
class TraceCacheKey:
    """A content hash plus the descriptor it was derived from."""

    digest: str
    descriptor: Dict[str, object]


def trace_key(
    workload: str,
    iterations: int,
    seed: int,
    params: SystemParams,
    options: StacheOptions,
    workload_kwargs: Optional[Dict[str, int]] = None,
    faults: Optional[str] = None,
    fault_seed: int = 0,
) -> TraceCacheKey:
    """Derive the cache key for one simulation's trace.

    Every field that can change the trace participates in the hash, so a
    change to *any* config field yields a different key (and therefore a
    cache miss, never a stale hit).  ``faults`` is the canonical fault
    profile spec (see :meth:`repro.sim.faults.FaultProfile.spec`); it
    joins the descriptor only when set, so fault-free keys -- including
    every key minted before fault injection existed -- are unchanged.
    """
    descriptor: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "workload": workload,
        "workload_kwargs": dict(sorted((workload_kwargs or {}).items())),
        "iterations": iterations,
        "seed": seed,
        "params": asdict(params),
        "options": asdict(options),
    }
    if faults is not None:
        descriptor["faults"] = {"spec": faults, "seed": fault_seed}
    canonical = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return TraceCacheKey(digest=digest, descriptor=descriptor)


class TraceCache:
    """Read/write access to one cache directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: TraceCacheKey) -> Path:
        return self.root / key.digest[:2] / f"{key.digest}.trace"

    def __contains__(self, key: TraceCacheKey) -> bool:
        return self.path_for(key).exists()

    def load(self, key: TraceCacheKey) -> Optional[List[TraceEvent]]:
        """Return the cached trace, or ``None`` on miss/corruption.

        A corrupt or truncated entry is deleted so the follow-up
        :meth:`store` replaces it with a good one.
        """
        path = self.path_for(key)
        if not path.exists():
            METRICS.inc("trace.cache.miss")
            return None
        try:
            with METRICS.timer("trace.cache.load"), open(path, "rb") as handle:
                header = pickle.load(handle)
                payload = handle.read()
                if (
                    not isinstance(header, dict)
                    or header.get("magic") != _HEADER_MAGIC
                    or header.get("format") != FORMAT_VERSION
                    or header.get("sha256")
                    != hashlib.sha256(payload).hexdigest()
                ):
                    raise ValueError("header/payload mismatch")
                events = pickle.loads(payload)
                if (
                    not isinstance(events, list)
                    or len(events) != header.get("count")
                ):
                    raise ValueError("event count mismatch")
        except Exception:
            # Any failure mode -- truncation, bit rot, a stale format,
            # a partial write from a killed process -- degrades to a
            # miss and a re-simulation, never a crash or a wrong trace.
            METRICS.inc("trace.cache.corrupt")
            METRICS.inc("trace.cache.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        METRICS.inc("trace.cache.hit")
        return events

    def store(self, key: TraceCacheKey, events: List[TraceEvent]) -> Path:
        """Atomically write ``events`` under ``key``; return the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with METRICS.timer("trace.cache.store"):
            payload = pickle.dumps(
                list(events), protocol=pickle.HIGHEST_PROTOCOL
            )
            header = {
                "magic": _HEADER_MAGIC,
                "format": FORMAT_VERSION,
                "count": len(events),
                "sha256": hashlib.sha256(payload).hexdigest(),
                "descriptor": key.descriptor,
                # Attribution only: the cache key is derived from the
                # descriptor alone, so adding/changing the manifest never
                # invalidates (or fails to invalidate) an entry.
                "manifest": build_manifest(
                    "trace-cache-store", digest=key.digest
                ),
            }
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key.digest[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(header, handle)
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        METRICS.inc("trace.cache.stored")
        return path
