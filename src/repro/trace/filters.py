"""Trace-stream filters and selectors.

Pure functions over iterables of :class:`TraceEvent`; they compose freely
and never mutate their inputs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..protocol.messages import MessageType, Role
from .events import TraceEvent


def by_role(
    events: Iterable[TraceEvent], role: Role
) -> Iterator[TraceEvent]:
    """Only events received by modules of the given role."""
    return (event for event in events if event.role == role)


def by_node(events: Iterable[TraceEvent], node: int) -> Iterator[TraceEvent]:
    """Only events received at the given node."""
    return (event for event in events if event.node == node)


def by_block(events: Iterable[TraceEvent], block: int) -> Iterator[TraceEvent]:
    """Only events for the given block address."""
    return (event for event in events if event.block == block)


def up_to_iteration(
    events: Iterable[TraceEvent], iteration: int
) -> Iterator[TraceEvent]:
    """Events from iterations ``<= iteration`` (cumulative prefix)."""
    return (event for event in events if event.iteration <= iteration)


def from_iteration(
    events: Iterable[TraceEvent], iteration: int
) -> Iterator[TraceEvent]:
    """Events from iterations ``>= iteration`` (drop a warm-up prefix)."""
    return (event for event in events if event.iteration >= iteration)


def split_by_endpoint(
    events: Iterable[TraceEvent],
) -> Dict[Tuple[int, Role], List[TraceEvent]]:
    """Group events by the (node, role) module that received them.

    Cosmos allocates one predictor per cache and per directory; this is
    the partition those predictors see.
    """
    groups: Dict[Tuple[int, Role], List[TraceEvent]] = defaultdict(list)
    for event in events:
        groups[(event.node, event.role)].append(event)
    return dict(groups)


def blocks_touched(events: Iterable[TraceEvent]) -> Set[int]:
    """The set of distinct block addresses appearing in the trace."""
    return {event.block for event in events}


def iteration_span(events: Iterable[TraceEvent]) -> Tuple[int, int]:
    """(first, last) iteration numbers present in the trace."""
    first: Optional[int] = None
    last: Optional[int] = None
    for event in events:
        if first is None or event.iteration < first:
            first = event.iteration
        if last is None or event.iteration > last:
            last = event.iteration
    if first is None or last is None:
        raise ValueError("empty trace has no iteration span")
    return first, last
