"""Coherence-message trace infrastructure."""

from .cache import TraceCache, TraceCacheKey, trace_key
from .collector import TraceCollector
from .events import TraceEvent
from .filters import (
    blocks_touched,
    by_block,
    by_node,
    by_role,
    from_iteration,
    iteration_span,
    split_by_endpoint,
    up_to_iteration,
)
from .io import iter_trace, load_trace, save_trace

__all__ = [
    "TraceCache",
    "TraceCacheKey",
    "TraceCollector",
    "TraceEvent",
    "blocks_touched",
    "by_block",
    "by_node",
    "by_role",
    "from_iteration",
    "iter_trace",
    "iteration_span",
    "load_trace",
    "save_trace",
    "split_by_endpoint",
    "trace_key",
    "up_to_iteration",
]
