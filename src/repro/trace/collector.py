"""Trace collection during simulation.

A :class:`TraceCollector` is attached to a machine; every message reception
is recorded as a :class:`TraceEvent`.  The machine advances
``collector.iteration`` at application-iteration boundaries so downstream
analyses can align events with iterations, and marks the end of the
start-up phase so it can be dropped (the paper excludes start-up messages
from its traces).

Events are held twice: as :class:`TraceEvent` objects for every consumer,
and as a flat ``array('q')`` of 7 ints per event kept in lockstep by
:meth:`~TraceCollector.record`.  The flat copy exists for checkpoints --
the accumulated trace dominates a checkpoint's size, and pickling one
int array is a single buffer copy where pickling ~100k frozen
dataclasses of enums costs ~100ms *per checkpoint* (which made
per-iteration checkpointing quadratic in trace length).  The lockstep
append costs nanoseconds on the record hot path; the snapshot itself
becomes a memcpy.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional

from ..protocol.messages import MessageType, Role
from .events import TraceEvent

#: Ints per event in the flat checkpoint encoding, in
#: :data:`repro.trace.io.FIELDS` order (role as 0/1).
_EVENT_WIDTH = 7
_ROLE_CODE = {Role.CACHE: 0, Role.DIRECTORY: 1}
_CODE_ROLE = (Role.CACHE, Role.DIRECTORY)


class TraceCollector:
    """Accumulates trace events in memory."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._flat = array("q")
        self.iteration = 0
        self._startup_boundary: Optional[int] = None

    def record(
        self,
        time: int,
        node: int,
        role: Role,
        block: int,
        sender: int,
        mtype: MessageType,
    ) -> None:
        """Record one message reception at the current iteration."""
        self._events.append(
            TraceEvent(
                time=time,
                iteration=self.iteration,
                node=node,
                role=role,
                block=block,
                sender=sender,
                mtype=mtype,
            )
        )
        self._flat.extend(
            (
                time,
                self.iteration,
                node,
                _ROLE_CODE[role],
                block,
                sender,
                int(mtype),
            )
        )

    def mark_startup_complete(self) -> None:
        """Everything recorded so far belongs to the start-up phase."""
        self._startup_boundary = len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, with the start-up phase removed."""
        if self._startup_boundary is None:
            return list(self._events)
        return self._events[self._startup_boundary :]

    @property
    def all_events(self) -> List[TraceEvent]:
        """All recorded events, including the start-up phase."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self._events.clear()
        del self._flat[:]
        self.iteration = 0
        self._startup_boundary = None

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data collector state for checkpoints (flat int array)."""
        return {
            "events": array("q", self._flat),
            "iteration": self.iteration,
            "startup_boundary": self._startup_boundary,
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        flat = state["events"]
        self._flat = array("q", flat)
        self._events = [
            TraceEvent(
                time=flat[base],
                iteration=flat[base + 1],
                node=flat[base + 2],
                role=_CODE_ROLE[flat[base + 3]],
                block=flat[base + 4],
                sender=flat[base + 5],
                mtype=MessageType(flat[base + 6]),
            )
            for base in range(0, len(flat), _EVENT_WIDTH)
        ]
        self.iteration = state["iteration"]
        self._startup_boundary = state["startup_boundary"]
