"""Trace collection during simulation.

A :class:`TraceCollector` is attached to a machine; every message reception
is recorded as a :class:`TraceEvent`.  The machine advances
``collector.iteration`` at application-iteration boundaries so downstream
analyses can align events with iterations, and marks the end of the
start-up phase so it can be dropped (the paper excludes start-up messages
from its traces).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..protocol.messages import MessageType, Role
from .events import TraceEvent


class TraceCollector:
    """Accumulates trace events in memory."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self.iteration = 0
        self._startup_boundary: Optional[int] = None

    def record(
        self,
        time: int,
        node: int,
        role: Role,
        block: int,
        sender: int,
        mtype: MessageType,
    ) -> None:
        """Record one message reception at the current iteration."""
        self._events.append(
            TraceEvent(
                time=time,
                iteration=self.iteration,
                node=node,
                role=role,
                block=block,
                sender=sender,
                mtype=mtype,
            )
        )

    def mark_startup_complete(self) -> None:
        """Everything recorded so far belongs to the start-up phase."""
        self._startup_boundary = len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, with the start-up phase removed."""
        if self._startup_boundary is None:
            return list(self._events)
        return self._events[self._startup_boundary :]

    @property
    def all_events(self) -> List[TraceEvent]:
        """All recorded events, including the start-up phase."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self._events.clear()
        self.iteration = 0
        self._startup_boundary = None
