"""Trace collection during simulation.

A :class:`TraceCollector` is attached to a machine; every message reception
is recorded as a :class:`TraceEvent`.  The machine advances
``collector.iteration`` at application-iteration boundaries so downstream
analyses can align events with iterations, and marks the end of the
start-up phase so it can be dropped (the paper excludes start-up messages
from its traces).

The primary store is a flat ``array('q')`` of 7 ints per event: the
record hot path (once per simulated message delivery) is a single
``array.extend`` -- no :class:`TraceEvent` allocation, no enum boxing --
and a checkpoint snapshot is a memcpy of one buffer (pickling ~100k
frozen dataclasses of enums cost ~100ms *per checkpoint*, which made
per-iteration checkpointing quadratic in trace length).  The
:class:`TraceEvent` objects every analysis consumes are materialized
lazily, once, on first access via :attr:`events` / :attr:`all_events`;
a simulation that only ever checkpoints never builds them at all.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional

from ..protocol.messages import MessageType, Role
from .events import TraceEvent

#: Ints per event in the flat encoding, in :data:`repro.trace.io.FIELDS`
#: order (role as 0/1).
_EVENT_WIDTH = 7
_ROLE_CODE = {Role.CACHE: 0, Role.DIRECTORY: 1}
_CODE_ROLE = (Role.CACHE, Role.DIRECTORY)


class TraceCollector:
    """Accumulates trace events in memory."""

    def __init__(self) -> None:
        self._flat = array("q")
        #: Materialized prefix of ``_flat`` (always a prefix: the flat
        #: store is append-only between ``clear``/``restore_state``).
        self._events: List[TraceEvent] = []
        self.iteration = 0
        #: Event count recorded before the main iterations began.
        self._startup_boundary: Optional[int] = None

    def record(
        self,
        time: int,
        node: int,
        role: Role,
        block: int,
        sender: int,
        mtype: MessageType,
    ) -> None:
        """Record one message reception at the current iteration."""
        self._flat.extend(
            (
                time,
                self.iteration,
                node,
                _ROLE_CODE[role],
                block,
                sender,
                int(mtype),
            )
        )

    def mark_startup_complete(self) -> None:
        """Everything recorded so far belongs to the start-up phase."""
        self._startup_boundary = len(self._flat) // _EVENT_WIDTH

    def _materialized(self) -> List[TraceEvent]:
        """The full event list, building only the unmaterialized tail."""
        flat = self._flat
        events = self._events
        total = len(flat) // _EVENT_WIDTH
        if len(events) < total:
            append = events.append
            for base in range(
                len(events) * _EVENT_WIDTH, total * _EVENT_WIDTH, _EVENT_WIDTH
            ):
                append(
                    TraceEvent(
                        time=flat[base],
                        iteration=flat[base + 1],
                        node=flat[base + 2],
                        role=_CODE_ROLE[flat[base + 3]],
                        block=flat[base + 4],
                        sender=flat[base + 5],
                        mtype=MessageType(flat[base + 6]),
                    )
                )
        return events

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, with the start-up phase removed."""
        events = self._materialized()
        if self._startup_boundary is None:
            return list(events)
        return events[self._startup_boundary :]

    @property
    def all_events(self) -> List[TraceEvent]:
        """All recorded events, including the start-up phase."""
        return list(self._materialized())

    def __len__(self) -> int:
        total = len(self._flat) // _EVENT_WIDTH
        if self._startup_boundary is None:
            return total
        return total - self._startup_boundary

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        del self._flat[:]
        self._events = []
        self.iteration = 0
        self._startup_boundary = None

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data collector state for checkpoints (flat int array)."""
        return {
            "events": array("q", self._flat),
            "iteration": self.iteration,
            "startup_boundary": self._startup_boundary,
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self._flat = array("q", state["events"])
        self._events = []
        self.iteration = state["iteration"]
        self._startup_boundary = state["startup_boundary"]
