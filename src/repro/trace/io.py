"""Trace persistence: JSON-lines save/load.

Traces can be large, so the format is one compact JSON array per line
rather than one object per line; field order is fixed and documented in
:data:`FIELDS`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..errors import TraceError
from ..ioutil import atomic_write
from ..protocol.messages import MessageType, Role
from .events import TraceEvent

#: Field order of each JSON-lines record.
FIELDS = ("time", "iteration", "node", "role", "block", "sender", "mtype")

_ROLE_CODE = {Role.CACHE: "c", Role.DIRECTORY: "d"}
_CODE_ROLE = {code: role for role, code in _ROLE_CODE.items()}


def save_trace(events: Iterable[TraceEvent], path: Union[str, Path]) -> int:
    """Write ``events`` to ``path`` in JSON-lines format; return the count.

    The write is atomic (temp file + ``os.replace``): an interrupted
    simulation never leaves a truncated trace behind for a later run to
    trip over.
    """
    count = 0
    with atomic_write(path) as handle:
        for event in events:
            record = [
                event.time,
                event.iteration,
                event.node,
                _ROLE_CODE[event.role],
                event.block,
                event.sender,
                int(event.mtype),
            ]
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Stream trace events back from a file written by :func:`save_trace`.

    Blank lines (including trailing ones from editors or concatenation)
    are skipped.  Anything else that fails to parse -- a truncated final
    line from an interrupted writer, a wrong field count, an unknown
    role or message code -- raises :class:`TraceError` naming the file,
    the 1-based line number, and the underlying cause, so a corrupt
    multi-gigabyte trace is diagnosable without opening it.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed record "
                    f"(truncated or invalid JSON: {exc})"
                ) from exc
            if not isinstance(record, list) or len(record) != len(FIELDS):
                got = (
                    f"{len(record)} fields"
                    if isinstance(record, list)
                    else type(record).__name__
                )
                raise TraceError(
                    f"{path}:{lineno}: malformed record "
                    f"(expected {len(FIELDS)} fields "
                    f"{', '.join(FIELDS)}; got {got})"
                )
            time, iteration, node, role, block, sender, mtype = record
            try:
                yield TraceEvent(
                    time=time,
                    iteration=iteration,
                    node=node,
                    role=_CODE_ROLE[role],
                    block=block,
                    sender=sender,
                    mtype=MessageType(mtype),
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed record ({exc})"
                ) from exc


def load_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a whole trace file into memory."""
    return list(iter_trace(path))
