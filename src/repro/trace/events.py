"""Trace event records.

The paper evaluates Cosmos on traces of *received* coherence messages: one
record per message reception, identifying the receiving node, the module
(cache or directory) that handled it, the block, and the ``<sender, type>``
tuple Cosmos consumes.  The iteration number tags each event with the
application iteration in flight, which the adaptation analysis (Table 8)
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..protocol.messages import MessageType, Role


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One coherence-message reception."""

    time: int
    iteration: int
    node: int
    role: Role
    block: int
    sender: int
    mtype: MessageType

    @property
    def tuple(self) -> Tuple[int, MessageType]:
        """The ``<sender, message-type>`` tuple Cosmos predicts."""
        return (self.sender, self.mtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"t={self.time} it={self.iteration} "
            f"P{self.node}/{self.role} block=0x{self.block:x} "
            f"<P{self.sender}, {self.mtype}>"
        )
