"""Trace-replay speculation accounting.

Bridges measured prediction accuracy and the Section 4.4 runtime model:
replay a trace through a predictor bank, charge each message ``f * L``
when it was predicted correctly and ``(1 + r) * L`` otherwise (``L`` =
one-way message latency), and compare against the unaccelerated cost.
This turns Table 5's accuracies into the Figure 5 speedups using the
*measured* per-message outcome stream instead of a single aggregate
``p``, and also reports how often each action rule would have fired.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.bank import PredictorBank
from ..core.config import CosmosConfig
from ..protocol.messages import Role
from ..trace.events import TraceEvent
from .actions import ActionRule, ProtocolAction, actions_for
from .model import speedup


@dataclass(frozen=True)
class SpeculationReport:
    """Outcome of replaying a trace under the latency model."""

    messages: int
    hits: int
    baseline_cost: float
    accelerated_cost: float
    f: float
    r: float
    action_counts: Dict[ProtocolAction, int]

    @property
    def measured_accuracy(self) -> float:
        return self.hits / self.messages if self.messages else 0.0

    @property
    def measured_speedup(self) -> float:
        if self.accelerated_cost <= 0.0:
            return float("inf")
        return self.baseline_cost / self.accelerated_cost

    @property
    def model_speedup(self) -> float:
        """The closed-form model evaluated at the measured accuracy."""
        return speedup(self.measured_accuracy, self.f, self.r)


def replay_with_speculation(
    events: Sequence[TraceEvent],
    config: Optional[CosmosConfig] = None,
    f: float = 0.3,
    r: float = 0.5,
    message_latency: float = 1.0,
) -> SpeculationReport:
    """Replay ``events`` and account per-message speculative latency.

    The per-message charge follows Section 4.4: a correctly predicted
    message costs ``f * L`` (its latency largely overlapped), a
    mispredicted or unpredicted one costs ``(1 + r) * L``.  Besides the
    costs, the report counts how many times each Table 2 action rule was
    triggered by a correct prediction.
    """
    bank = PredictorBank(config if config is not None else CosmosConfig())
    hits = 0
    messages = 0
    accelerated = 0.0
    action_counts: Counter = Counter()
    for event in events:
        predictor = bank.predictor_for(event.node, event.role)
        prediction = predictor.predict(event.block)
        observation = predictor.observe(event.block, event.tuple)
        messages += 1
        if observation.hit:
            hits += 1
            accelerated += f * message_latency
            for rule in actions_for(event.role, prediction):
                action_counts[rule.action] += 1
        else:
            accelerated += (1.0 + r) * message_latency
    return SpeculationReport(
        messages=messages,
        hits=hits,
        baseline_cost=messages * message_latency,
        accelerated_cost=accelerated,
        f=f,
        r=r,
        action_counts=dict(action_counts),
    )
