"""The Section 4.4 execution model and Figure 5 curves.

The paper's "simplistic execution model" assumes runtime is proportional
to the number of coherence messages on the critical path.  With

* ``p`` -- prediction accuracy per message,
* ``f`` -- fraction of a message's delay still paid when it is predicted
  correctly (``f = 0``: fully overlapped),
* ``r`` -- extra delay fraction paid on a misprediction (``r = 0.5``: a
  mispredicted message costs 1.5x),

the time with prediction, relative to without, is
``p*f + (1 - p)*(1 + r)``, so the speedup is its reciprocal.  Figure 5
plots the speedup for ``p = 0.8`` over ``f`` for several ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import ConfigError


def relative_time(p: float, f: float, r: float) -> float:
    """Time with prediction / time without (the model's denominator)."""
    _validate(p, f, r)
    return p * f + (1.0 - p) * (1.0 + r)


def speedup(p: float, f: float, r: float) -> float:
    """Speedup of the prediction-accelerated protocol under the model."""
    rel = relative_time(p, f, r)
    if rel <= 0.0:
        raise ConfigError(
            "model degenerates: zero relative time (p=1 and f=0?)"
        )
    return 1.0 / rel


def speedup_percent(p: float, f: float, r: float) -> float:
    """Speedup expressed as a percentage gain over no prediction."""
    return 100.0 * (speedup(p, f, r) - 1.0)


def _validate(p: float, f: float, r: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"prediction accuracy p={p} must be in [0, 1]")
    if f < 0.0:
        raise ConfigError(f"overlap fraction f={f} must be non-negative")
    if r < 0.0:
        raise ConfigError(f"misprediction penalty r={r} must be non-negative")


@dataclass(frozen=True)
class SpeedupSeries:
    """One Figure 5 curve: speedup over ``f`` at fixed ``p`` and ``r``."""

    p: float
    r: float
    f_values: Tuple[float, ...]
    speedups: Tuple[float, ...]


def figure5_series(
    p: float = 0.8,
    r_values: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    f_values: Sequence[float] = tuple(i / 20 for i in range(21)),
) -> List[SpeedupSeries]:
    """The family of curves in the paper's Figure 5."""
    series: List[SpeedupSeries] = []
    for r in r_values:
        series.append(
            SpeedupSeries(
                p=p,
                r=r,
                f_values=tuple(f_values),
                speedups=tuple(speedup(p, f, r) for f in f_values),
            )
        )
    return series
