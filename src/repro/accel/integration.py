"""Inline integration: a prediction-accelerated directory protocol.

The paper studies prediction in isolation and sketches integration in
Section 4.  This module builds two of Table 2's actions for real, inside
the directory controller, each driven by a live Cosmos predictor that
observes the directory's incoming messages:

* **exclusive grant** (read-modify-write optimization): when a read miss
  arrives and Cosmos predicts the *next* message for the block will be an
  ``upgrade_request`` from the same requester, answer the read with an
  exclusive copy.  A correct prediction deletes the whole upgrade
  transaction; a misprediction costs extra invalidation work later, which
  the simulator charges naturally.
* **data push** (producer-initiated communication): when Cosmos predicts
  the next message will be a ``get_ro_request`` from some consumer, send
  that consumer the data before it asks.  A correct prediction turns the
  consumer's miss into a hit (two messages saved); a misprediction leaves
  a harmless extra sharer that later invalidations must visit.

Both actions are of Section 4.3's cheapest recovery class: they only move
the protocol between legal states, so mispredictions can never corrupt
coherence -- the protocol's own invariant checks run throughout.

:func:`compare_acceleration` runs the same workload on a plain machine
and a predictive machine (same seed, hence identical access streams) and
reports messages, grants, pushes, and elapsed simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.config import CosmosConfig
from ..core.predictor import CosmosPredictor
from ..protocol.directory_ctrl import DirectoryController, _Request
from ..protocol.messages import Message, MessageType
from ..protocol.recovery import RecoveryConfig, Scheduler
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..sim.faults import FaultProfile
from ..sim.machine import Machine
from ..sim.params import PAPER_PARAMS, SystemParams
from ..workloads.base import Workload


class PredictiveDirectoryController(DirectoryController):
    """Directory with Cosmos-driven exclusive grants and data pushes."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
        config: CosmosConfig = CosmosConfig(depth=2),
        grant_exclusive: bool = True,
        push_data: bool = False,
        *,
        recovery: Optional[RecoveryConfig] = None,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        super().__init__(
            node_id, send, options, recovery=recovery, schedule=schedule
        )
        self.predictor = CosmosPredictor(config)
        self.grant_exclusive = grant_exclusive
        self.push_data = push_data
        self.exclusive_grants = 0
        self.pushes = 0

    def handle_message(self, msg: Message) -> None:
        # Train on every incoming message first, so the prediction below
        # is conditioned on a history that includes this message.
        self.predictor.observe(msg.block, (msg.src, msg.mtype))
        if (
            self.grant_exclusive
            and msg.mtype is MessageType.GET_RO_REQUEST
            # A requester already listed as a sharer sent this request
            # before our data push reached it; granting exclusive now
            # would double-respond.  Let the base re-grant path serve it.
            and msg.src not in self.entry_of(msg.block).sharers
        ):
            predicted = self.predictor.predict(msg.block)
            if predicted == (msg.src, MessageType.UPGRADE_REQUEST):
                # Serve the read as a write: the requester gets the block
                # exclusive and its upcoming upgrade never happens.
                self.exclusive_grants += 1
                self._admit(
                    msg.block,
                    _Request(
                        requester=msg.src,
                        is_write=True,
                        was_upgrade=False,
                        done_cb=None,
                        req_seq=msg.seq,
                    ),
                )
                self._try_push(msg.block)
                return
        super().handle_message(msg)
        self._try_push(msg.block)

    def _try_push(self, block: int) -> None:
        """Push data to a predicted consumer, when legal right now."""
        if not self.push_data or self.is_busy(block):
            return
        if self._recovery is not None:
            # The Table 1 vocabulary has no push ack/nack, so a pushed
            # copy racing an invalidation cannot be closed out safely on
            # an unreliable network; caches refuse pushes under faults
            # and the directory does not offer them.
            return
        predicted = self.predictor.predict(block)
        if predicted is None:
            return
        consumer, mtype = predicted
        if mtype is not MessageType.GET_RO_REQUEST:
            return
        entry = self.entry_of(block)
        if (
            entry.owner is not None
            or consumer == self.node_id
            or consumer in entry.sharers
        ):
            return
        self.pushes += 1
        entry.sharers.add(consumer)
        self._send(
            Message(
                src=self.node_id,
                dst=consumer,
                mtype=MessageType.GET_RO_RESPONSE,
                block=block,
            )
        )

    def _start_read(self, block, entry, request):
        # A push may race the consumer's own read request; re-grant the
        # (now listed) sharer instead of treating it as a protocol error.
        if (
            self.push_data
            and request.requester in entry.sharers
            and not request.is_local
        ):
            from ..protocol.directory_ctrl import _Txn

            return _Txn(
                request=request,
                pending_acks=set(),
                final_owner=None,
                final_sharers=set(entry.sharers),
                reply_type=MessageType.GET_RO_RESPONSE,
            )
        return super()._start_read(block, entry, request)


class PredictiveMachine(Machine):
    """A machine whose directories act on Cosmos predictions."""

    def __init__(
        self,
        params: SystemParams = PAPER_PARAMS,
        options: StacheOptions = DEFAULT_OPTIONS,
        seed: int = 0,
        config: CosmosConfig = CosmosConfig(depth=2),
        grant_exclusive: bool = True,
        push_data: bool = False,
        faults: Optional[FaultProfile] = None,
        fault_seed: int = 0,
    ) -> None:
        super().__init__(
            params=params,
            options=options,
            seed=seed,
            faults=faults,
            fault_seed=fault_seed,
        )
        self.predictor_config = config
        for node in self.nodes:
            node.directory = PredictiveDirectoryController(
                node.node_id,
                self.network.send,
                options,
                config,
                grant_exclusive=grant_exclusive,
                push_data=push_data,
                recovery=self.recovery,
                schedule=self.engine.schedule,
            )
            if push_data:
                node.cache.allow_pushed_data = True

    @property
    def exclusive_grants(self) -> int:
        return sum(
            node.directory.exclusive_grants
            for node in self.nodes
            if isinstance(node.directory, PredictiveDirectoryController)
        )

    @property
    def pushes(self) -> int:
        return sum(
            node.directory.pushes
            for node in self.nodes
            if isinstance(node.directory, PredictiveDirectoryController)
        )

    @property
    def pushed_blocks_accepted(self) -> int:
        return sum(node.cache.pushed_blocks_accepted for node in self.nodes)


@dataclass(frozen=True)
class AccelerationComparison:
    """Plain vs prediction-accelerated run of the same workload."""

    baseline_messages: int
    accelerated_messages: int
    baseline_time_ns: int
    accelerated_time_ns: int
    exclusive_grants: int
    pushes: int = 0
    baseline_stall_ns: int = 0
    accelerated_stall_ns: int = 0

    @property
    def stall_reduction(self) -> float:
        """Fractional reduction in total access stall time.

        The empirical counterpart of the Section 4.4 model's ``f``:
        correctly predicted transactions overlap or skip protocol work,
        shrinking the time processors spend waiting on shared accesses.
        (Total stall -- not mean miss latency -- because the actions turn
        the *shortest* misses into hits, which would misleadingly raise
        the mean of the misses that remain.)
        """
        if self.baseline_stall_ns <= 0:
            return 0.0
        return 1.0 - self.accelerated_stall_ns / self.baseline_stall_ns

    @property
    def message_reduction(self) -> float:
        """Fraction of coherence messages eliminated by prediction."""
        if self.baseline_messages == 0:
            return 0.0
        return 1.0 - self.accelerated_messages / self.baseline_messages

    @property
    def time_speedup(self) -> float:
        """Simulated-time speedup of the accelerated machine."""
        if self.accelerated_time_ns == 0:
            return float("inf")
        return self.baseline_time_ns / self.accelerated_time_ns


def compare_acceleration(
    workload_factory: Callable[[], Workload],
    iterations: Optional[int] = None,
    params: SystemParams = PAPER_PARAMS,
    options: StacheOptions = DEFAULT_OPTIONS,
    seed: int = 0,
    config: CosmosConfig = CosmosConfig(depth=2),
    grant_exclusive: bool = True,
    push_data: bool = False,
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
) -> AccelerationComparison:
    """Run one workload with and without directory-side prediction.

    ``workload_factory`` must build a fresh workload per call (workloads
    carry layout state, so instances cannot be reused across machines).
    """
    baseline = Machine(
        params=params,
        options=options,
        seed=seed,
        faults=faults,
        fault_seed=fault_seed,
    )
    baseline.run_workload(workload_factory(), iterations=iterations)
    predictive = PredictiveMachine(
        params=params,
        options=options,
        seed=seed,
        config=config,
        grant_exclusive=grant_exclusive,
        push_data=push_data,
        faults=faults,
        fault_seed=fault_seed,
    )
    predictive.run_workload(workload_factory(), iterations=iterations)
    return AccelerationComparison(
        baseline_messages=baseline.network.messages_sent,
        accelerated_messages=predictive.network.messages_sent,
        baseline_time_ns=baseline.engine.now,
        accelerated_time_ns=predictive.engine.now,
        exclusive_grants=predictive.exclusive_grants,
        pushes=predictive.pushes,
        baseline_stall_ns=sum(
            latency for latency, _ in baseline.access_latencies
        ),
        accelerated_stall_ns=sum(
            latency for latency, _ in predictive.access_latencies
        ),
    )
