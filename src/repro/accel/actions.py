"""Mapping predictions to protocol actions (paper Section 4.1, Table 2).

A prediction is only useful if the protocol can act on it.  The paper's
examples, encoded here:

* a directory predicting an ``upgrade_request`` from the processor it is
  about to serve a read can answer the read with an *exclusive* copy
  (read-modify-write optimization, as in SGI Origin);
* a cache predicting an incoming ``inval_rw_request`` can replace the
  block early (dynamic self-invalidation);
* a directory predicting a ``get_ro_request`` from a consumer can forward
  the data early (producer-initiated communication);
* a cache predicting a ``get_ro_response`` knows its processor is about
  to read-miss and can prefetch.

Each action is tagged with its recovery class from Section 4.3: whether a
misprediction needs no recovery (moves between legal states), transparent
discard of an unexposed future state, or a full rollback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.tuples import MessageTuple
from ..protocol.messages import MessageType, Role


class RecoveryClass(enum.Enum):
    """Section 4.3's three misprediction-recovery categories."""

    #: Action moves the protocol between two legal states; a misprediction
    #: costs performance only (e.g., an extra miss), never correctness.
    NONE_NEEDED = "none-needed"
    #: Future state is buffered and discarded on misprediction, committed
    #: on success; never exposed to the processor early.
    DISCARD_FUTURE = "discard-future"
    #: Processor and protocol both speculate; both roll back to a
    #: checkpoint on misprediction.
    CHECKPOINT_ROLLBACK = "checkpoint-rollback"


class ProtocolAction(enum.Enum):
    """Concrete accelerating actions a module can take."""

    REPLY_EXCLUSIVE = "reply-exclusive"
    SELF_INVALIDATE = "self-invalidate"
    FORWARD_DATA_EARLY = "forward-data-early"
    PREFETCH_BLOCK = "prefetch-block"
    WRITEBACK_EARLY = "writeback-early"


@dataclass(frozen=True)
class ActionRule:
    """One prediction -> action row (the paper's Table 2 flavour)."""

    role: Role
    predicted_type: MessageType
    action: ProtocolAction
    recovery: RecoveryClass
    description: str


#: The prediction-to-action catalogue.
ACTION_RULES: Tuple[ActionRule, ...] = (
    ActionRule(
        role=Role.DIRECTORY,
        predicted_type=MessageType.UPGRADE_REQUEST,
        action=ProtocolAction.REPLY_EXCLUSIVE,
        recovery=RecoveryClass.NONE_NEEDED,
        description=(
            "read-modify-write predicted: answer the pending read with an "
            "exclusive copy instead of a shared one"
        ),
    ),
    ActionRule(
        role=Role.CACHE,
        predicted_type=MessageType.INVAL_RW_REQUEST,
        action=ProtocolAction.SELF_INVALIDATE,
        recovery=RecoveryClass.NONE_NEEDED,
        description=(
            "another node's miss predicted: replace the exclusive block to "
            "the directory before the invalidation arrives (dynamic "
            "self-invalidation)"
        ),
    ),
    ActionRule(
        role=Role.DIRECTORY,
        predicted_type=MessageType.GET_RO_REQUEST,
        action=ProtocolAction.FORWARD_DATA_EARLY,
        recovery=RecoveryClass.DISCARD_FUTURE,
        description=(
            "consumer read predicted: forward the block to the consumer "
            "before its request arrives (producer-initiated communication)"
        ),
    ),
    ActionRule(
        role=Role.CACHE,
        predicted_type=MessageType.GET_RO_RESPONSE,
        action=ProtocolAction.PREFETCH_BLOCK,
        recovery=RecoveryClass.DISCARD_FUTURE,
        description=(
            "local read miss predicted: issue the miss early and overlap "
            "its latency with current work"
        ),
    ),
    ActionRule(
        role=Role.CACHE,
        predicted_type=MessageType.DOWNGRADE_REQUEST,
        action=ProtocolAction.WRITEBACK_EARLY,
        recovery=RecoveryClass.NONE_NEEDED,
        description=(
            "demotion predicted: write the dirty block back early so the "
            "downgrade completes without a data transfer"
        ),
    ),
)


def actions_for(
    role: Role, prediction: Optional[MessageTuple]
) -> List[ActionRule]:
    """The action rules triggered by ``prediction`` at a module of ``role``."""
    if prediction is None:
        return []
    _, mtype = prediction
    return [
        rule
        for rule in ACTION_RULES
        if rule.role == role and rule.predicted_type == mtype
    ]


def format_table2() -> str:
    """Render the prediction/action catalogue as text."""
    lines = [
        "%-10s %-20s %-20s %-20s" % ("Module", "Prediction", "Action", "Recovery")
    ]
    lines.append("-" * 78)
    for rule in ACTION_RULES:
        lines.append(
            "%-10s %-20s %-20s %-20s"
            % (
                rule.role,
                rule.predicted_type,
                rule.action.value,
                rule.recovery.value,
            )
        )
    return "\n".join(lines)
