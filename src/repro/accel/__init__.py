"""Prediction-to-action integration and the Section 4.4 runtime model."""

from .actions import (
    ACTION_RULES,
    ActionRule,
    ProtocolAction,
    RecoveryClass,
    actions_for,
    format_table2,
)
from .integration import (
    AccelerationComparison,
    PredictiveDirectoryController,
    PredictiveMachine,
    compare_acceleration,
)
from .model import (
    SpeedupSeries,
    figure5_series,
    relative_time,
    speedup,
    speedup_percent,
)
from .speculative import SpeculationReport, replay_with_speculation

__all__ = [
    "ACTION_RULES",
    "AccelerationComparison",
    "ActionRule",
    "PredictiveDirectoryController",
    "PredictiveMachine",
    "ProtocolAction",
    "RecoveryClass",
    "SpeculationReport",
    "SpeedupSeries",
    "actions_for",
    "compare_acceleration",
    "figure5_series",
    "format_table2",
    "relative_time",
    "replay_with_speculation",
    "speedup",
    "speedup_percent",
]
