"""Experiment: accuracy-vs-capacity frontier for bounded Cosmos banks.

The paper's Table 7 sizes an *unbounded* Cosmos bank after the fact;
a real directory controller gets a fixed SRAM budget up front.  This
experiment quantifies what that budget costs: it replays a streaming
Zipf pressure workload (millions of candidate blocks, far more than any
budget) through capacity-limited predictors and sweeps

* **eviction policy** (``lru`` / ``clock`` / ``decay``),
* **per-module capacity** (MHR entries; the PHT budget scales with it),
* **workload skew** (Zipf alpha -- flatter popularity means a larger
  working set and earlier degradation).

Each row reports overall accuracy, the gap to the unbounded predictor
on the identical stream, eviction counts, and the estimated table bytes
(Table 7 cost model).  Accuracy must grow monotonically with capacity
and converge to the unbounded baseline -- the graceful-degradation
contract that ``tests/experiments/test_capacity.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import EvaluationResult, evaluate_trace
from ..core.eviction import EVICTION_POLICIES
from ..sim.metrics import METRICS
from ..workloads.zipf import zipf_trace

#: Metric counters folded by the evaluator for bounded banks; the sweep
#: reads them as before/after deltas (METRICS is cumulative).
_MEM_COUNTERS = (
    "pred.mem.evictions_mhr",
    "pred.mem.evictions_pht",
    "pred.mem.peak_mhr",
    "pred.mem.peak_pht",
    "pred.mem.bytes_est",
)

#: PHT entries budgeted per MHR entry (a block's history fans out into
#: a handful of patterns; 4x keeps the two tables in rough balance).
_PHT_PER_MHR = 4


@dataclass(frozen=True)
class CapacityPoint:
    """One (alpha, policy, capacity) cell of the frontier."""

    alpha: float
    policy: str
    mhr_capacity: Optional[int]  # None = unbounded
    pht_capacity: Optional[int]
    accuracy: float
    baseline_accuracy: float
    evictions_mhr: int
    evictions_pht: int
    peak_entries: int
    est_bytes: int

    @property
    def gap_points(self) -> float:
        """Accuracy points given up relative to the unbounded bank."""
        return 100.0 * (self.baseline_accuracy - self.accuracy)


@dataclass(frozen=True)
class CapacityResult:
    """The full policy x capacity x skew sweep."""

    depth: int
    n_events: int
    n_blocks: int
    tenants: int
    points: List[CapacityPoint]

    def format(self) -> str:
        headers = [
            "alpha",
            "policy",
            "mhr cap",
            "pht cap",
            "accuracy",
            "gap (points)",
            "evictions mhr/pht",
            "peak entries",
            "est bytes",
        ]
        body = []
        for point in self.points:
            unbounded = point.mhr_capacity is None
            body.append(
                [
                    f"{point.alpha:.2f}",
                    point.policy,
                    "inf" if unbounded else point.mhr_capacity,
                    "inf" if unbounded else point.pht_capacity,
                    f"{100 * point.accuracy:.1f}%",
                    "-" if unbounded else f"{point.gap_points:.1f}",
                    f"{point.evictions_mhr}/{point.evictions_pht}",
                    point.peak_entries,
                    point.est_bytes,
                ]
            )
        return render_table(
            headers,
            body,
            title=(
                f"Capacity frontier (zipf stream, {self.n_events} events, "
                f"{self.n_blocks} block ranks, {self.tenants} tenants, "
                f"Cosmos depth {self.depth}): accuracy under a memory "
                f"budget"
            ),
        )


def _bounded_run(
    config: CosmosConfig,
    n_events: int,
    n_blocks: int,
    alpha: float,
    tenants: int,
    seed: int,
) -> Tuple[EvaluationResult, Dict[str, int]]:
    """Evaluate one config on a fresh stream; return (result, counters)."""
    before = {name: METRICS.counter(name) for name in _MEM_COUNTERS}
    result = evaluate_trace(
        zipf_trace(
            n_events, n_blocks, alpha=alpha, tenants=tenants, seed=seed
        ),
        config,
        track_arcs=False,
    )
    deltas = {
        name: METRICS.counter(name) - before[name] for name in _MEM_COUNTERS
    }
    return result, deltas


def run_capacity_study(
    quick: bool = False,
    seed: int = 0,
    depth: int = 1,
    policies: Sequence[str] = EVICTION_POLICIES,
    capacities: Iterable[Optional[int]] = (16, 64, 256, None),
    alphas: Sequence[float] = (0.99,),
) -> CapacityResult:
    """Sweep eviction policy x capacity x Zipf skew on one stream.

    ``capacities`` are per-module MHR budgets (``None`` = unbounded);
    each carries a PHT budget of ``_PHT_PER_MHR`` entries per MHR entry.
    Every cell replays the *identical* per-seed stream, so differences
    are purely the budget's doing.
    """
    n_events = 5_000 if quick else 40_000
    n_blocks = 1_000 if quick else 20_000
    tenants = 2
    stream_seed = seed * 7 + 3

    points: List[CapacityPoint] = []
    for alpha in alphas:
        baseline, _ = _bounded_run(
            CosmosConfig(depth=depth),
            n_events, n_blocks, alpha, tenants, stream_seed,
        )
        baseline_accuracy = baseline.overall_accuracy
        for policy in policies:
            for capacity in capacities:
                if capacity is None:
                    points.append(
                        CapacityPoint(
                            alpha=alpha,
                            policy=policy,
                            mhr_capacity=None,
                            pht_capacity=None,
                            accuracy=baseline_accuracy,
                            baseline_accuracy=baseline_accuracy,
                            evictions_mhr=0,
                            evictions_pht=0,
                            peak_entries=0,
                            est_bytes=0,
                        )
                    )
                    continue
                config = CosmosConfig(
                    depth=depth,
                    mhr_capacity=capacity,
                    pht_capacity=capacity * _PHT_PER_MHR,
                    eviction=policy,
                )
                result, mem = _bounded_run(
                    config, n_events, n_blocks, alpha, tenants, stream_seed
                )
                points.append(
                    CapacityPoint(
                        alpha=alpha,
                        policy=policy,
                        mhr_capacity=capacity,
                        pht_capacity=capacity * _PHT_PER_MHR,
                        accuracy=result.overall_accuracy,
                        baseline_accuracy=baseline_accuracy,
                        evictions_mhr=mem["pred.mem.evictions_mhr"],
                        evictions_pht=mem["pred.mem.evictions_pht"],
                        peak_entries=(
                            mem["pred.mem.peak_mhr"]
                            + mem["pred.mem.peak_pht"]
                        ),
                        est_bytes=mem["pred.mem.bytes_est"],
                    )
                )
    return CapacityResult(
        depth=depth,
        n_events=n_events,
        n_blocks=n_blocks,
        tenants=tenants,
        points=points,
    )
