"""Experiment: Cosmos accuracy vs predictor-state corruption rate.

The fault study (``repro.experiments.faults``) perturbs the *messages*
Cosmos observes; this study perturbs the *predictor's own SRAM*.  Each
application's fault-free trace (shared with every other experiment
through the trace cache -- corruption never touches the simulation) is
replayed through predictor banks armed with increasing soft-error
rates: per observation, a stored tuple suffers a single bit flip with
probability ``rate`` and a whole block's history is lost with
probability ``rate / 4`` (whole-entry errors are the rarer failure
mode).

The defended predictor (parity per stored tuple, drop-and-relearn on
mismatch -- see :mod:`repro.core.corruption`) should degrade *smoothly*:
detected corruption costs one relearning window, never a wrong
prediction served indefinitely.  The table reports how many errors were
injected, how many the parity check caught, and what the surviving
corruption cost in accuracy points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.corruption import CorruptionInjector, CorruptionProfile
from ..core.evaluation import evaluate_trace
from ..core.predictor import CosmosPredictor
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace

#: Per-observation bit-flip probabilities swept by the study.
CORRUPTION_RATES = (0.0, 0.001, 0.01, 0.05)

#: Entry-loss probability as a fraction of the flip probability.
LOSS_RATIO = 0.25


@dataclass(frozen=True)
class CorruptionRow:
    """One (application, corruption rate) cell of the study."""

    app: str
    rate: float
    events: int
    injected_flips: int
    injected_losses: int
    detected: int
    cache_accuracy: float
    directory_accuracy: float
    overall_accuracy: float


@dataclass(frozen=True)
class CorruptionStudyResult:
    """Accuracy-vs-soft-error-rate sweep."""

    rows: List[CorruptionRow]
    depth: int

    def row(self, app: str, rate: float) -> CorruptionRow:
        for row in self.rows:
            if row.app == app and row.rate == rate:
                return row
        raise KeyError(f"no ({app}, {rate}) row")

    def format(self) -> str:
        headers = [
            "Application",
            "rate",
            "events",
            "flips",
            "losses",
            "detected",
            "cache",
            "dir",
            "overall",
        ]
        body: List[List[object]] = []
        for row in self.rows:
            body.append(
                [
                    row.app,
                    f"{row.rate:g}",
                    row.events,
                    row.injected_flips,
                    row.injected_losses,
                    row.detected,
                    f"{row.cache_accuracy:.1%}",
                    f"{row.directory_accuracy:.1%}",
                    f"{row.overall_accuracy:.1%}",
                ]
            )
        text = render_table(
            headers,
            body,
            title=(
                f"Cosmos (depth {self.depth}) accuracy vs predictor-state "
                "corruption rate (parity-protected, drop-and-relearn)"
            ),
        )
        rates = list(dict.fromkeys(row.rate for row in self.rows))
        drops: List[List[object]] = []
        for app in dict.fromkeys(row.app for row in self.rows):
            baseline = self.row(app, rates[0])
            line: List[object] = [app]
            for rate in rates:
                delta = (
                    self.row(app, rate).overall_accuracy
                    - baseline.overall_accuracy
                )
                line.append(f"{100 * delta:+.1f}")
            drops.append(line)
        text += "\n\n" + render_table(
            ["Application"] + [f"{rate:g}" for rate in rates],
            drops,
            title="Overall-accuracy change vs corruption-free replay (points)",
        )
        return text


def run_corruption_study(
    apps: Iterable[str] = BENCHMARK_NAMES,
    rates: Iterable[float] = CORRUPTION_RATES,
    seed: int = 0,
    quick: bool = False,
    corruption_seed: int = 0,
    depth: int = 2,
) -> CorruptionStudyResult:
    """Replay every application's trace at every corruption rate.

    The underlying traces are fault-free and cache-shared; corruption is
    injected only into the predictor replay, so a sweep costs one
    simulation (or cache hit) per application regardless of how many
    rates it scores.
    """
    rows: List[CorruptionRow] = []
    config = CosmosConfig(depth=depth)
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        for rate in rates:
            profile: Optional[CorruptionProfile] = None
            if rate:
                profile = CorruptionProfile(
                    flip=rate, loss=rate * LOSS_RATIO
                )
            created: List[CosmosPredictor] = []
            if profile is not None:
                # Module seeds count up in first-reference order, which
                # the deterministic trace makes deterministic; a distinct
                # stream per module keeps one module's error schedule
                # independent of another's traffic.
                def factory(
                    profile: CorruptionProfile = profile,
                    created: List[CosmosPredictor] = created,
                ) -> CosmosPredictor:
                    injector = CorruptionInjector(
                        profile,
                        seed=corruption_seed * 1_000_003 + len(created),
                    )
                    predictor = CosmosPredictor(config, corruption=injector)
                    created.append(predictor)
                    return predictor

                result = evaluate_trace(
                    events, config, predictor_factory=factory,
                    track_arcs=False,
                )
            else:
                result = evaluate_trace(events, config, track_arcs=False)
            rows.append(
                CorruptionRow(
                    app=app,
                    rate=rate,
                    events=len(events),
                    injected_flips=sum(
                        p.corrupt_flips for p in created
                    ),
                    injected_losses=sum(
                        p.corrupt_losses for p in created
                    ),
                    detected=sum(p.corrupt_detected for p in created),
                    cache_accuracy=result.cache_accuracy,
                    directory_accuracy=result.directory_accuracy,
                    overall_accuracy=result.overall_accuracy,
                )
            )
    return CorruptionStudyResult(rows=rows, depth=depth)
