"""Experiment: Cosmos accuracy and protocol overhead vs interconnect faults.

The paper assumes a reliable interconnect; this study measures what an
*unreliable* one costs.  Each application is simulated under every fault
preset (``none``/``light``/``moderate``/``heavy`` -- increasing drop,
duplicate, and reorder rates), with the protocol's timeout/retry recovery
layer enabled.  Two questions:

* **Robustness** -- does the recovery layer keep every run terminating
  with a coherent final state?  (The simulation itself asserts the
  coherence invariants after every delivery; a row existing means the
  run survived.)
* **Prediction under noise** -- how much does fault-induced message
  shuffling degrade Cosmos' accuracy?  Retries and reordered deliveries
  perturb the per-block message histories the predictor learns from, so
  accuracy should fall as fault rates rise; the interesting result is by
  how little.

Rows bypass the trace cache on purpose: the retry/drop counters come
from the simulation itself, so every cell reflects a fresh run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..sim.faults import PRESETS, FaultProfile
from ..sim.machine import simulate
from ..sim.metrics import METRICS
from ..workloads.registry import BENCHMARK_NAMES
from .common import iterations_for, workload_for

#: Counters sampled (as deltas) around each simulation.
_COUNTERS = (
    "net.fault.sent",
    "net.fault.dropped",
    "net.fault.duplicated",
    "net.fault.reordered",
    "proto.retry.requests",
    "proto.retry.poisoned",
    "proto.retry.invals",
)


@dataclass(frozen=True)
class FaultRow:
    """One (application, fault profile) cell of the study."""

    app: str
    profile: str
    events: int
    counters: Dict[str, int]
    cache_accuracy: float
    directory_accuracy: float
    overall_accuracy: float


@dataclass(frozen=True)
class FaultStudyResult:
    """Accuracy and recovery-overhead sweep across fault presets."""

    rows: List[FaultRow]
    depth: int

    def row(self, app: str, profile: str) -> FaultRow:
        for row in self.rows:
            if row.app == app and row.profile == profile:
                return row
        raise KeyError(f"no ({app}, {profile}) row")

    def format(self) -> str:
        headers = [
            "Application",
            "profile",
            "events",
            "dropped",
            "dup",
            "reordered",
            "retries",
            "poisoned",
            "cache",
            "dir",
            "overall",
        ]
        body: List[List[object]] = []
        for row in self.rows:
            body.append(
                [
                    row.app,
                    row.profile,
                    row.events,
                    row.counters["net.fault.dropped"],
                    row.counters["net.fault.duplicated"],
                    row.counters["net.fault.reordered"],
                    row.counters["proto.retry.requests"]
                    + row.counters["proto.retry.invals"],
                    row.counters["proto.retry.poisoned"],
                    f"{row.cache_accuracy:.1%}",
                    f"{row.directory_accuracy:.1%}",
                    f"{row.overall_accuracy:.1%}",
                ]
            )
        text = render_table(
            headers,
            body,
            title=(
                f"Cosmos (depth {self.depth}) accuracy vs interconnect fault "
                "rate; every run passed the coherence-invariant checker"
            ),
        )
        drops: List[List[object]] = []
        for app in dict.fromkeys(row.app for row in self.rows):
            baseline = self.row(app, "none")
            line: List[object] = [app]
            for profile in dict.fromkeys(row.profile for row in self.rows):
                delta = (
                    self.row(app, profile).overall_accuracy
                    - baseline.overall_accuracy
                )
                line.append(f"{100 * delta:+.1f}")
            drops.append(line)
        profiles = list(dict.fromkeys(row.profile for row in self.rows))
        text += "\n\n" + render_table(
            ["Application"] + profiles,
            drops,
            title="Overall-accuracy change vs fault-free run (points)",
        )
        return text


def run_fault_study(
    apps: Iterable[str] = BENCHMARK_NAMES,
    profiles: Optional[Iterable[str]] = None,
    seed: int = 0,
    quick: bool = False,
    fault_seed: int = 0,
    depth: int = 2,
) -> FaultStudyResult:
    """Simulate every (application, fault preset) pair and score Cosmos."""
    if profiles is None:
        profiles = tuple(PRESETS)
    rows: List[FaultRow] = []
    config = CosmosConfig(depth=depth)
    for app in apps:
        iterations = iterations_for(app, quick)
        for name in profiles:
            profile: Optional[FaultProfile] = PRESETS[name]
            if profile is not None and not profile.is_active:
                profile = None
            before = {key: METRICS.counter(key) for key in _COUNTERS}
            collector = simulate(
                workload_for(app, quick),
                iterations=iterations,
                seed=seed,
                faults=profile,
                fault_seed=fault_seed,
            )
            counters = {
                key: METRICS.counter(key) - before[key] for key in _COUNTERS
            }
            result = evaluate_trace(collector.events, config, track_arcs=False)
            rows.append(
                FaultRow(
                    app=app,
                    profile=name,
                    events=len(collector.events),
                    counters=counters,
                    cache_accuracy=result.cache_accuracy,
                    directory_accuracy=result.directory_accuracy,
                    overall_accuracy=result.overall_accuracy,
                )
            )
    return FaultStudyResult(rows=rows, depth=depth)
