"""Experiment: Section 4 integration -- does prediction actually accelerate?

Two complementary measurements beyond the paper's scope (it stops at
prediction accuracy and the analytic model):

* the Section 4.4 latency model applied to each application's *measured*
  per-message prediction outcomes (``repro.accel.speculative``);
* a genuine inline integration: the read-modify-write optimization driven
  by a Cosmos predictor inside each directory, measured as real message
  and simulated-time savings (``repro.accel.integration``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..accel.integration import AccelerationComparison, compare_acceleration
from ..accel.speculative import SpeculationReport, replay_with_speculation
from ..analysis.report import render_table
from ..core.config import CosmosConfig
from .common import get_trace, iterations_for, workload_for


#: The inline action modes compared by the experiment.
ACTION_MODES = {
    "grant": dict(grant_exclusive=True, push_data=False),
    "push": dict(grant_exclusive=False, push_data=True),
    "both": dict(grant_exclusive=True, push_data=True),
}


@dataclass(frozen=True)
class IntegrationResult:
    """Model-based and inline acceleration results per application."""

    model_reports: Dict[str, SpeculationReport]
    inline_comparisons: Dict[str, AccelerationComparison]

    def format(self) -> str:
        headers = [
            "Application",
            "accuracy",
            "model speedup",
            "replay speedup",
        ]
        body = []
        for app, report in self.model_reports.items():
            body.append(
                [
                    app,
                    f"{report.measured_accuracy:.1%}",
                    f"{report.model_speedup:.2f}x",
                    f"{report.measured_speedup:.2f}x",
                ]
            )
        text = render_table(
            headers,
            body,
            title=(
                "Section 4.4 model applied to measured outcomes "
                f"(f={next(iter(self.model_reports.values())).f}, "
                f"r={next(iter(self.model_reports.values())).r})"
            )
            if self.model_reports
            else "",
        )
        if self.inline_comparisons:
            headers2 = [
                "Application/mode",
                "msgs (plain)",
                "msgs (predictive)",
                "reduction",
                "grants",
                "pushes",
                "stall cut",
                "time speedup",
            ]
            body2 = []
            for label, cmp in self.inline_comparisons.items():
                body2.append(
                    [
                        label,
                        cmp.baseline_messages,
                        cmp.accelerated_messages,
                        f"{cmp.message_reduction:.1%}",
                        cmp.exclusive_grants,
                        cmp.pushes,
                        f"{cmp.stall_reduction:+.1%}",
                        f"{cmp.time_speedup:.3f}x",
                    ]
                )
            text += "\n\n" + render_table(
                headers2,
                body2,
                title=(
                    "Inline integration (Table 2 actions): exclusive "
                    "grants on predicted upgrades, data pushes to "
                    "predicted consumers"
                ),
            )
        return text


def run_integration(
    model_apps: Iterable[str] = ("appbt", "moldyn", "unstructured"),
    inline_apps: Iterable[str] = ("appbt", "moldyn"),
    f: float = 0.3,
    r: float = 0.5,
    depth: int = 2,
    seed: int = 0,
    quick: bool = False,
) -> IntegrationResult:
    """Measure model-based and inline acceleration."""
    config = CosmosConfig(depth=depth)
    model_reports: Dict[str, SpeculationReport] = {}
    for app in model_apps:
        events = get_trace(app, seed=seed, quick=quick)
        model_reports[app] = replay_with_speculation(
            events, config=config, f=f, r=r
        )
    inline_comparisons: Dict[str, AccelerationComparison] = {}
    for app in inline_apps:
        for mode, action_kwargs in ACTION_MODES.items():
            inline_comparisons[f"{app}/{mode}"] = compare_acceleration(
                lambda app=app: workload_for(app, quick),
                iterations=iterations_for(app, quick),
                seed=seed,
                config=config,
                **action_kwargs,
            )
    return IntegrationResult(
        model_reports=model_reports, inline_comparisons=inline_comparisons
    )
