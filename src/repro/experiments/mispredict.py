"""Experiment: misprediction forensics profile.

Not a table from the paper -- a diagnostic the paper's accuracy numbers
beg for.  For each benchmark the trace is replayed through a Cosmos bank
with forensic capture (:func:`repro.obs.forensics.explain_trace`) and
the history patterns that produced the most mispredictions are ranked,
per role.  A pattern with many references and a low hit rate is a
sharing signature Cosmos cannot learn at this MHR depth (the paper's
Section 3.4 depth discussion); a pattern with few references is noise
the filter should be absorbing.

The output is deterministic for a given (workload, seed, config): ties
are broken on the rendered pattern text, so the report is byte-stable
and safe for golden comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..obs.forensics import ForensicsReport, explain_trace, format_pattern
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace


@dataclass(frozen=True)
class MispredictProfileResult:
    """Per-application forensic reports plus the config that produced them."""

    config: CosmosConfig
    reports: Dict[str, ForensicsReport]
    top: int

    def format(self) -> str:
        parts: List[str] = [
            "Misprediction forensics profile "
            f"({self.config.describe()}; worst {self.top} history "
            "patterns per application)"
        ]
        for app, report in self.reports.items():
            rate = (
                report.total_mispredicts / report.total_refs
                if report.total_refs
                else 0.0
            )
            rows: List[List[object]] = [
                [
                    str(role),
                    format_pattern(pattern) or "(empty)",
                    mispredicts,
                    refs,
                    f"{(refs - mispredicts) / refs:.1%}" if refs else "-",
                ]
                for role, pattern, mispredicts, refs in report.top_patterns(
                    self.top
                )
            ]
            title = (
                f"{app}: {report.total_mispredicts} mispredictions in "
                f"{report.total_refs} references ({rate:.1%})"
            )
            if rows:
                parts.append(
                    render_table(
                        ["role", "history pattern", "mispred", "refs", "hit%"],
                        rows,
                        title=title,
                    )
                )
            else:
                parts.append(f"{title}\n  (no mispredictions)")
        return "\n\n".join(parts)


def run_mispredict_profile(
    apps: Iterable[str] = BENCHMARK_NAMES,
    config: Optional[CosmosConfig] = None,
    seed: int = 0,
    quick: bool = False,
    top: int = 8,
) -> MispredictProfileResult:
    """Rank misprediction-causing history patterns per benchmark."""
    if config is None:
        config = CosmosConfig()
    reports: Dict[str, ForensicsReport] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        reports[app] = explain_trace(events, config)
    return MispredictProfileResult(config=config, reports=reports, top=top)
