"""Experiment: machine-size scaling and seed robustness.

Two beyond-paper sanity studies:

* **Scaling** -- the paper fixes the machine at 16 nodes.  The workload
  models are parameterized by processor count, so we can ask whether
  Cosmos' accuracy is an artifact of that size.  More nodes mean more
  distinct senders (a larger tuple alphabet) and wider sharing sets, so
  directory-side accuracy should erode gently -- not collapse.
* **Seeds** -- every simulation is seeded; the calibrated results must
  not hinge on one lucky seed.  We report mean and spread of overall
  accuracy across several seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..sim.machine import simulate
from ..sim.params import PAPER_PARAMS, SystemParams
from ..workloads.registry import make_workload
from .common import _SCALE_KWARGS, iterations_for


@dataclass(frozen=True)
class ScalingPoint:
    """Accuracy at one machine size."""

    n_nodes: int
    cache: float
    directory: float
    overall: float
    messages: int


@dataclass(frozen=True)
class ScalingResult:
    """Accuracy across machine sizes per application."""

    points: Dict[str, List[ScalingPoint]]
    depth: int

    def format(self) -> str:
        headers = ["Application", "nodes", "C", "D", "O", "messages"]
        body = []
        for app, app_points in self.points.items():
            for point in app_points:
                body.append(
                    [
                        app,
                        point.n_nodes,
                        f"{point.cache:.0f}",
                        f"{point.directory:.0f}",
                        f"{point.overall:.0f}",
                        point.messages,
                    ]
                )
        return render_table(
            headers,
            body,
            title=(
                f"Machine-size scaling: Cosmos accuracy (%) at depth "
                f"{self.depth}"
            ),
        )


def run_scaling(
    apps: Iterable[str] = ("moldyn", "unstructured"),
    node_counts: Iterable[int] = (4, 8, 16, 32),
    depth: int = 2,
    seed: int = 0,
    quick: bool = True,
) -> ScalingResult:
    """Sweep the machine size; workloads re-partition automatically."""
    config = CosmosConfig(depth=depth)
    points: Dict[str, List[ScalingPoint]] = {}
    for app in apps:
        points[app] = []
        for n_nodes in node_counts:
            kwargs = dict(_SCALE_KWARGS[app]) if quick else {}
            workload = make_workload(app, n_procs=n_nodes, **kwargs)
            params = SystemParams(n_nodes=n_nodes)
            collector = simulate(
                workload,
                iterations=iterations_for(app, quick),
                params=params,
                seed=seed,
            )
            events = collector.events
            result = evaluate_trace(events, config, track_arcs=False)
            points[app].append(
                ScalingPoint(
                    n_nodes=n_nodes,
                    cache=100.0 * result.cache_accuracy,
                    directory=100.0 * result.directory_accuracy,
                    overall=100.0 * result.overall_accuracy,
                    messages=len(events),
                )
            )
    return ScalingResult(points=points, depth=depth)


@dataclass(frozen=True)
class SeedStudyResult:
    """Accuracy spread across seeds per application."""

    accuracies: Dict[str, List[float]]
    depth: int

    def spread(self, app: str) -> float:
        values = self.accuracies[app]
        return max(values) - min(values)

    def format(self) -> str:
        headers = ["Application", "mean O", "min", "max", "spread", "seeds"]
        body = []
        for app, values in self.accuracies.items():
            body.append(
                [
                    app,
                    f"{sum(values) / len(values):.1f}",
                    f"{min(values):.1f}",
                    f"{max(values):.1f}",
                    f"{self.spread(app):.1f}",
                    len(values),
                ]
            )
        return render_table(
            headers,
            body,
            title=(
                f"Seed robustness: overall accuracy (%) at depth "
                f"{self.depth} across seeds"
            ),
        )


def run_seed_study(
    apps: Iterable[str] = ("appbt", "barnes", "moldyn"),
    seeds: Iterable[int] = (0, 1, 2, 3, 4),
    depth: int = 1,
    quick: bool = True,
) -> SeedStudyResult:
    """Re-run each application under several seeds."""
    config = CosmosConfig(depth=depth)
    accuracies: Dict[str, List[float]] = {}
    for app in apps:
        accuracies[app] = []
        for seed in seeds:
            kwargs = dict(_SCALE_KWARGS[app]) if quick else {}
            collector = simulate(
                make_workload(app, **kwargs),
                iterations=iterations_for(app, quick),
                seed=seed,
            )
            result = evaluate_trace(
                collector.events, config, track_arcs=False
            )
            accuracies[app].append(100.0 * result.overall_accuracy)
    return SeedStudyResult(accuracies=accuracies, depth=depth)
