"""Experiment: traffic characterization / workload-model validation.

Prints the Gupta-&-Weber-style traffic summary for every application and
checks the quantities the paper quotes against the models:

* moldyn's producer-consumer coordinates average ~4.9 consumers, so its
  largest invalidation bursts should reach that scale;
* unstructured averages ~2.6 consumers per producer;
* appbt's boundary exchange has one consumer, so its invalidating writes
  overwhelmingly hit a single copy;
* most writes across all applications invalidate very few copies (the
  "average number of sharers is usually less than two" observation
  motivating shallow MHRs, Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..analysis.traffic import TrafficSummary, summarize_traffic
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace


@dataclass(frozen=True)
class TrafficResult:
    """Traffic summaries per application."""

    summaries: Dict[str, TrafficSummary]

    def format(self) -> str:
        parts = []
        for app, summary in self.summaries.items():
            parts.append(f"== {app} ==")
            parts.append(summary.format())
            parts.append("")
        return "\n".join(parts).rstrip()


def run_traffic(
    apps: Iterable[str] = BENCHMARK_NAMES,
    seed: int = 0,
    quick: bool = False,
) -> TrafficResult:
    """Characterize every application's coherence traffic."""
    summaries = {
        app: summarize_traffic(get_trace(app, seed=seed, quick=quick))
        for app in apps
    }
    return TrafficResult(summaries=summaries)
