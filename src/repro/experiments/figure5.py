"""Experiment: Figure 5 -- the speedup model's curves.

Analytic, so this reproduction is exact: speedup over the
correct-prediction overlap fraction ``f`` at accuracy ``p = 0.8`` for a
family of misprediction penalties ``r``, rendered as the table of points
behind the paper's plot.  Also verifies the paper's quoted example point
(p=0.8, f=0.3, r=1 -> 56% speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..accel.model import SpeedupSeries, figure5_series, speedup_percent
from ..analysis.report import render_matrix
from .paper_data import PAPER_FIGURE5_EXAMPLE


@dataclass(frozen=True)
class Figure5Result:
    """The family of speedup curves plus the quoted example point."""

    series: List[SpeedupSeries]
    example_speedup_percent: float

    def format(self) -> str:
        f_values = self.series[0].f_values
        col_labels = [f"f={f:.2f}" for f in f_values]
        row_labels = [f"r={s.r:.2f}" for s in self.series]
        values = [
            [f"{x:.2f}" for x in s.speedups] for s in self.series
        ]
        text = render_matrix(
            row_labels,
            col_labels,
            values,
            corner=f"speedup (p={self.series[0].p})",
            title="Figure 5: speedup of the Section 4.4 execution model",
        )
        quoted = PAPER_FIGURE5_EXAMPLE["speedup_percent"]
        text += (
            f"\n\nExample point (p={PAPER_FIGURE5_EXAMPLE['p']}, "
            f"f={PAPER_FIGURE5_EXAMPLE['f']}, r={PAPER_FIGURE5_EXAMPLE['r']}): "
            f"measured {self.example_speedup_percent:.0f}% speedup, "
            f"paper quotes {quoted}%"
        )
        return text


def run_figure5(
    p: float = 0.8,
    r_values: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    f_values: Sequence[float] = tuple(i / 10 for i in range(11)),
) -> Figure5Result:
    """Regenerate the Figure 5 curve family."""
    series = figure5_series(p=p, r_values=r_values, f_values=f_values)
    example = speedup_percent(
        PAPER_FIGURE5_EXAMPLE["p"],
        PAPER_FIGURE5_EXAMPLE["f"],
        PAPER_FIGURE5_EXAMPLE["r"],
    )
    return Figure5Result(series=series, example_speedup_percent=example)
