"""Experiment: critical-path composition under prediction.

Not a table from the paper -- the paper's *argument*, made measurable.
Section 2 claims a correct prediction removes the directory-indirection
hop from a coherence transaction's critical path; the accuracy tables
(5, 6, 8) only show how often predictions are right.  This experiment
traces every transaction causally (:mod:`repro.obs.spans`), segments its
critical path (:mod:`repro.obs.critpath`), and compares predictors on
*composition*: how much of the aggregate critical path remains directory
indirection, how much is converted to predicted shortcuts, and what the
mispredictions cost -- per workload, in simulated nanoseconds.

Each application is simulated once with span tracing on; every predictor
then replays the same trace (the paper's trace-driven methodology), so
differences between rows are attributable to the predictor alone.  The
output is deterministic for a given (workload, seed, depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..core.bank import PredictorBank
from ..core.config import CosmosConfig
from ..obs.critpath import (
    CritPathSummary,
    ReplayBank,
    attributed_paths,
    fold_critpath_metrics,
    replay_outcomes,
    summarize,
)
from ..obs.spans import SPANS, build_transactions
from ..predictors.last_message import LastMessagePredictor
from ..sim.machine import simulate
from ..sim.params import PAPER_PARAMS
from ..workloads.registry import BENCHMARK_NAMES
from .common import iterations_for, workload_for

#: Predictor rows, in presentation order.  ``none`` is the no-predictor
#: baseline every comparison anchors on.
PREDICTOR_NAMES = ("none", "last-message", "cosmos")


@dataclass(frozen=True)
class CriticalPathResult:
    """Per-(application, predictor) critical-path summaries."""

    depth: int
    #: ``summaries[app][predictor]`` -> :class:`CritPathSummary`.
    summaries: Dict[str, Dict[str, CritPathSummary]]

    def format(self) -> str:
        parts: List[str] = [
            "Critical-path composition by predictor (Cosmos depth "
            f"{self.depth}; f=0.3, r=0.5 as in Section 4).\n"
            "'indirection' is the directory time a correct prediction "
            "shortcuts;\n'saved' / 'penalty' are critical-path ns "
            "removed by hits / added by misses."
        ]
        for app, by_predictor in self.summaries.items():
            rows: List[List[object]] = []
            for predictor in PREDICTOR_NAMES:
                summary = by_predictor[predictor]
                rows.append(
                    [
                        predictor,
                        summary.transactions,
                        f"{summary.mean_share('indirection'):.1%}",
                        f"{summary.mean_share('predicted-shortcut'):.1%}",
                        f"{summary.mean_share('transfer'):.1%}",
                        f"{summary.mean_share('queue'):.1%}",
                        summary.hits,
                        summary.misses,
                        f"{summary.saved_ns:.0f}",
                        f"{summary.penalty_ns:.0f}",
                    ]
                )
            parts.append(
                render_table(
                    [
                        "predictor",
                        "txns",
                        "indirect",
                        "shortcut",
                        "transfer",
                        "queue",
                        "hits",
                        "misses",
                        "saved ns",
                        "penalty ns",
                    ],
                    rows,
                    title=f"{app}: mean critical-path shares",
                )
            )
        return "\n\n".join(parts)


def _trace_spans(app: str, seed: int, quick: bool):
    """Simulate ``app`` once with span tracing; return (events, txns)."""
    SPANS.enable()
    try:
        collector = simulate(
            workload_for(app, quick),
            iterations=iterations_for(app, quick),
            seed=seed,
        )
        transactions = build_transactions(SPANS.records)
    finally:
        SPANS.disable()
    return collector.all_events, transactions


def run_critical_path(
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    quick: bool = False,
    depth: int = 2,
    fold_metrics: bool = False,
) -> CriticalPathResult:
    """Compare predictors on critical-path composition per workload.

    ``fold_metrics`` additionally folds the Cosmos rows' paths into the
    global ``txn.critpath.*`` histograms (the CLI does this; the
    experiment report itself does not need it).
    """
    apps = list(apps) if apps is not None else list(BENCHMARK_NAMES)
    latency_ns = PAPER_PARAMS.one_way_message_ns
    summaries: Dict[str, Dict[str, CritPathSummary]] = {}
    for app in apps:
        events, transactions = _trace_spans(app, seed, quick)
        by_predictor: Dict[str, CritPathSummary] = {}
        for predictor in PREDICTOR_NAMES:
            if predictor == "none":
                outcomes: Dict[int, Optional[str]] = {}
            elif predictor == "last-message":
                outcomes = replay_outcomes(
                    events,
                    transactions,
                    ReplayBank(LastMessagePredictor),
                )
            else:
                outcomes = replay_outcomes(
                    events,
                    transactions,
                    PredictorBank(CosmosConfig(depth=depth)),
                )
            paths = attributed_paths(transactions, outcomes, latency_ns)
            if fold_metrics and predictor == "cosmos":
                fold_critpath_metrics(paths)
            by_predictor[predictor] = summarize(paths)
        summaries[app] = by_predictor
    return CriticalPathResult(depth=depth, summaries=summaries)
