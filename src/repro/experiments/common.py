"""Shared plumbing for the experiment drivers.

Simulating a workload is the expensive step; every experiment on the same
application replays the same trace.  :func:`get_trace` memoizes traces at
two levels:

* **in process** -- a dict keyed by (workload, iterations, seed, scale),
  so a full experiment suite simulates each application once, and
* **on disk** (opt in via :func:`configure_trace_cache`) -- a
  content-addressed :class:`~repro.trace.cache.TraceCache`, so repeated
  runs and the parallel runner's worker processes skip the simulator
  entirely and replay stored traces.

``scale`` shrinks both the data-structure sizes and the iteration count
proportionally, letting benchmarks exercise the full code path in a
fraction of the time of a paper-scale run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..protocol.stache import DEFAULT_OPTIONS
from ..sim.faults import FaultProfile
from ..sim.metrics import METRICS
from ..sim.params import PAPER_PARAMS
from ..trace.cache import TraceCache, trace_key
from ..trace.events import TraceEvent
from ..sim.machine import simulate
from ..workloads.base import Workload
from ..workloads.registry import make_workload

#: Paper-scale iteration counts per application (dsmc needs 320+ for
#: Table 8's last checkpoint).
DEFAULT_ITERATIONS: Dict[str, int] = {
    "appbt": 60,
    "barnes": 40,
    "dsmc": 400,
    "moldyn": 60,
    "unstructured": 40,
    # Synthetic pressure workload (not a Table 4 benchmark).
    "zipf": 20,
}

#: Constructor overrides that shrink each workload for quick runs.
_SCALE_KWARGS: Dict[str, Dict[str, int]] = {
    "appbt": {"face_blocks": 2, "false_share_blocks": 1},
    "barnes": {"n_objects": 48},
    "dsmc": {"buffers_per_proc": 1, "rare_blocks_per_proc": 6, "contended_buffers": 2},
    "moldyn": {"force_blocks": 16, "coord_blocks": 16},
    "unstructured": {"mesh_blocks": 24},
    "zipf": {"n_blocks": 64, "accesses_per_proc": 8},
}

_TRACE_CACHE: Dict[
    Tuple[str, int, int, bool, Optional[str], int], List[TraceEvent]
] = {}

#: The optional on-disk cache; ``None`` keeps memoization in-process only.
_DISK_CACHE: Optional[TraceCache] = None

#: Ambient fault-injection configuration (``--fault-profile``): every
#: simulation :func:`get_trace` runs uses it.  ``None`` = reliable
#: interconnect, the default and the golden-trace configuration.
_FAULTS: Optional[FaultProfile] = None
_FAULT_SEED: int = 0


def configure_trace_cache(
    cache: Optional[TraceCache],
) -> Optional[TraceCache]:
    """Install (or, with ``None``, remove) the on-disk trace cache.

    Returns the previously installed cache so callers can restore it.
    """
    global _DISK_CACHE
    previous = _DISK_CACHE
    _DISK_CACHE = cache
    return previous


def configure_faults(
    profile: Optional[object], fault_seed: int = 0
) -> Tuple[Optional[FaultProfile], int]:
    """Install the ambient fault profile for subsequent simulations.

    ``profile`` may be a :class:`~repro.sim.faults.FaultProfile`, a spec
    string (preset name or ``key=value,...``), or ``None`` to restore the
    reliable interconnect.  Returns the previous ``(profile, seed)`` pair
    so callers (tests, the runner) can restore it.
    """
    global _FAULTS, _FAULT_SEED
    previous = (_FAULTS, _FAULT_SEED)
    if isinstance(profile, str):
        profile = FaultProfile.parse(profile)
    if profile is not None and not profile.is_active:
        profile = None
    _FAULTS = profile
    _FAULT_SEED = fault_seed
    return previous


def current_faults() -> Tuple[Optional[FaultProfile], int]:
    """The ambient ``(fault profile, fault seed)`` pair."""
    return _FAULTS, _FAULT_SEED


def workload_for(name: str, quick: bool = False) -> Workload:
    """Build a paper-scale (or shrunken) workload instance."""
    kwargs = _SCALE_KWARGS[name] if quick else {}
    return make_workload(name, **kwargs)


def iterations_for(name: str, quick: bool = False) -> int:
    iterations = DEFAULT_ITERATIONS[name]
    return max(4, iterations // 4) if quick else iterations


def get_trace(
    name: str,
    iterations: Optional[int] = None,
    seed: int = 0,
    quick: bool = False,
) -> List[TraceEvent]:
    """Simulate (or fetch from cache) one application's message trace."""
    if iterations is None:
        iterations = iterations_for(name, quick)
    fault_spec = _FAULTS.spec() if _FAULTS is not None else None
    key = (name, iterations, seed, quick, fault_spec, _FAULT_SEED)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        METRICS.inc("trace.memo.hit")
        return trace
    with METRICS.timer("trace.acquire"):
        disk_key = None
        if _DISK_CACHE is not None:
            disk_key = trace_key(
                workload=name,
                iterations=iterations,
                seed=seed,
                params=PAPER_PARAMS,
                options=DEFAULT_OPTIONS,
                workload_kwargs=_SCALE_KWARGS[name] if quick else None,
                faults=fault_spec,
                fault_seed=_FAULT_SEED,
            )
            trace = _DISK_CACHE.load(disk_key)
        if trace is None:
            with METRICS.timer("trace.simulate"):
                collector = simulate(
                    workload_for(name, quick),
                    iterations=iterations,
                    seed=seed,
                    faults=_FAULTS,
                    fault_seed=_FAULT_SEED,
                )
                trace = collector.events
            METRICS.inc("trace.simulated")
            if _DISK_CACHE is not None and disk_key is not None:
                _DISK_CACHE.store(disk_key, trace)
    _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()
