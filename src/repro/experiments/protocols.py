"""Experiment: Section 2.1's protocol-independence claim.

"Other protocols differ (e.g., SGI Origin reduce coherence actions to
four and messages to three by directly forwarding processor two's
response to processor one), but this should have no first-order effect on
coherence prediction's usability."

We run the same workloads under Stache's recall protocol and under the
Origin-style forwarding protocol (``repro.protocol.origin``) and compare
Cosmos' accuracy.  Forwarding changes what Cosmos sees at a cache in one
important way: data responses now arrive from *previous owners*, not just
the home directory, so the cache-side sender field is no longer constant.
The claim is that accuracy stays in the same band -- not that it is
identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..protocol.stache import StacheOptions
from ..sim.machine import simulate
from .common import iterations_for, workload_for


@dataclass(frozen=True)
class ProtocolPoint:
    """Cosmos accuracy (%) and traffic under one protocol."""

    cache: float
    directory: float
    overall: float
    messages: int


@dataclass(frozen=True)
class ProtocolComparisonResult:
    """Stache vs Origin-forwarding accuracy per application."""

    points: Dict[str, Dict[str, ProtocolPoint]]
    depth: int

    def max_overall_delta(self) -> float:
        """Largest |overall(stache) - overall(origin)| across apps."""
        return max(
            abs(by_proto["stache"].overall - by_proto["origin"].overall)
            for by_proto in self.points.values()
        )

    def format(self) -> str:
        headers = [
            "Application",
            "stache C/D/O",
            "origin C/D/O",
            "O delta",
            "msgs stache",
            "msgs origin",
        ]
        body = []
        for app, by_proto in self.points.items():
            s, o = by_proto["stache"], by_proto["origin"]
            body.append(
                [
                    app,
                    f"{s.cache:.0f}/{s.directory:.0f}/{s.overall:.0f}",
                    f"{o.cache:.0f}/{o.directory:.0f}/{o.overall:.0f}",
                    f"{o.overall - s.overall:+.1f}",
                    s.messages,
                    o.messages,
                ]
            )
        return render_table(
            headers,
            body,
            title=(
                "Section 2.1 protocol independence: Cosmos accuracy (%) "
                f"at depth {self.depth} under recall vs forwarding"
            ),
        )


def run_protocol_comparison(
    apps: Iterable[str] = ("appbt", "moldyn", "dsmc"),
    depth: int = 2,
    seed: int = 0,
    quick: bool = False,
) -> ProtocolComparisonResult:
    """Measure Cosmos under Stache and under Origin forwarding."""
    config = CosmosConfig(depth=depth)
    points: Dict[str, Dict[str, ProtocolPoint]] = {}
    for app in apps:
        points[app] = {}
        for label, options in (
            ("stache", StacheOptions()),
            ("origin", StacheOptions(forwarding=True)),
        ):
            collector = simulate(
                workload_for(app, quick),
                iterations=iterations_for(app, quick),
                options=options,
                seed=seed,
            )
            events = collector.events
            result = evaluate_trace(events, config, track_arcs=False)
            points[app][label] = ProtocolPoint(
                cache=100.0 * result.cache_accuracy,
                directory=100.0 * result.directory_accuracy,
                overall=100.0 * result.overall_accuracy,
                messages=len(events),
            )
    return ProtocolComparisonResult(points=points, depth=depth)
