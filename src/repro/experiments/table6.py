"""Experiment: Table 6 -- noise-filter effect on prediction accuracy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..analysis.accuracy import filter_sweep
from ..analysis.report import render_table
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace
from .paper_data import PAPER_TABLE6


@dataclass(frozen=True)
class Table6Result:
    """Measured Table 6: app -> depth -> filter max count -> overall %."""

    cells: Dict[str, Dict[int, Dict[int, float]]]
    depths: tuple
    filter_counts: tuple

    def format(self, with_paper: bool = True) -> str:
        headers: List[object] = ["Depth"]
        for app in self.cells:
            headers.extend(f"{app}:{c}" for c in self.filter_counts)
        body: List[List[object]] = []
        for depth in self.depths:
            line: List[object] = [depth]
            for app in self.cells:
                line.extend(
                    f"{self.cells[app][depth][count]:.0f}"
                    for count in self.filter_counts
                )
            body.append(line)
        text = render_table(
            headers,
            body,
            title=(
                "Table 6: overall prediction rate (%) vs filter saturating-"
                "counter maximum (columns 0/1/2 per app; 0 = no filter)"
            ),
        )
        if with_paper:
            paper_body: List[List[object]] = []
            for depth in self.depths:
                line = [depth]
                for app in self.cells:
                    line.extend(
                        PAPER_TABLE6[app][depth][count]
                        for count in self.filter_counts
                    )
                paper_body.append(line)
            text += "\n\n" + render_table(
                headers, paper_body, title="Paper's Table 6 (for reference)"
            )
        return text


def run_table6(
    apps: Iterable[str] = BENCHMARK_NAMES,
    depths: Iterable[int] = (1, 2),
    filter_counts: Iterable[int] = (0, 1, 2),
    seed: int = 0,
    quick: bool = False,
) -> Table6Result:
    """Regenerate Table 6 (filter sweep at MHR depths 1 and 2)."""
    depths = tuple(depths)
    filter_counts = tuple(filter_counts)
    cells: Dict[str, Dict[int, Dict[int, float]]] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        cells[app] = filter_sweep(events, depths=depths, filter_counts=filter_counts)
    return Table6Result(cells=cells, depths=depths, filter_counts=filter_counts)
