"""Experiment: Figure 8 / Section 7 -- Cosmos vs directed optimizations.

The paper argues Cosmos subsumes directed predictors: the trigger
signatures of dynamic self-invalidation (Figure 8a) and migratory
protocols (Figure 8b) are just rows in Cosmos' pattern tables.  This
experiment runs microworkloads that exercise exactly those signatures and
compares Cosmos against the directed predictors on their home turf and on
unstructured (the application whose composite pattern no directed
predictor tracks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from ..core.config import CosmosConfig
from ..predictors.base import MessagePredictor
from ..predictors.cosmos_adapter import CosmosAdapter
from ..predictors.dsi import DSIPredictor
from ..predictors.last_message import LastMessagePredictor
from ..predictors.migratory import MigratoryPredictor
from ..predictors.most_common import MostCommonPredictor
from ..protocol.messages import Role
from ..sim.machine import simulate
from ..sim.memory_map import Allocator
from ..trace.events import TraceEvent
from ..workloads.access import Phase, read, write
from ..workloads.base import Workload
from ..workloads.patterns import migratory
from .common import get_trace


class MigratoryMicro(Workload):
    """Blocks migrating through fixed processor chains (Figure 8b)."""

    name = "migratory-micro"
    description = "pure migratory sharing: read-modify-write in turn"
    default_iterations = 40

    def __init__(
        self, n_procs: int = 16, n_blocks: int = 16, chain_length: int = 3
    ) -> None:
        super().__init__(n_procs)
        self.n_blocks = n_blocks
        self.chain_length = chain_length
        self._blocks: List[int] = []
        self._chains: List[List[int]] = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._blocks = allocator.alloc_blocks(self.n_blocks)
        self._chains = [
            rng.sample(range(self.n_procs), self.chain_length)
            for _ in range(self.n_blocks)
        ]

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        phase = self._new_phase()
        for block, chain in zip(self._blocks, self._chains):
            migratory(phase, block, chain)
        return [phase]


class SelfInvalidationMicro(Workload):
    """Write-miss-then-steal blocks (Figure 8a's DSI trigger)."""

    name = "dsi-micro"
    description = "blocks written by one node then immediately stolen"
    default_iterations = 40

    def __init__(self, n_procs: int = 16, n_blocks: int = 16) -> None:
        super().__init__(n_procs)
        self.n_blocks = n_blocks
        self._blocks: List[int] = []
        self._writers: List[int] = []
        self._stealers: List[int] = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._blocks = allocator.alloc_blocks(self.n_blocks)
        self._writers = [
            index % self.n_procs for index in range(self.n_blocks)
        ]
        self._stealers = [
            (writer + 1 + rng.randrange(self.n_procs - 1)) % self.n_procs
            for writer in self._writers
        ]

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        produce = self._new_phase()
        for block, writer in zip(self._blocks, self._writers):
            produce[writer].append(write(block))
        steal = self._new_phase()
        for block, stealer in zip(self._blocks, self._stealers):
            steal[stealer].append(write(block))
        return [produce, steal]


@dataclass(frozen=True)
class PredictorScore:
    """One predictor's cache-side score on one trace."""

    predictor: str
    accuracy: float
    precision: float
    coverage: float


@dataclass(frozen=True)
class Figure8Result:
    """Cosmos vs directed predictors across traces."""

    scores: Dict[str, List[PredictorScore]]

    def format(self) -> str:
        lines = [
            "Figure 8 / Section 7: Cosmos vs directed predictors "
            "(cache-side messages only)",
            "accuracy = hits/all refs; precision = hits/predictions made; "
            "coverage = predictions/refs",
        ]
        for trace_name, scores in self.scores.items():
            lines.append("")
            lines.append(f"== {trace_name} ==")
            for score in scores:
                lines.append(
                    f"  {score.predictor:14s} accuracy={score.accuracy:6.1%} "
                    f"precision={score.precision:6.1%} "
                    f"coverage={score.coverage:6.1%}"
                )
        return "\n".join(lines)


def _score_predictors(
    events: Sequence[TraceEvent],
    factories: Dict[str, Callable[[], MessagePredictor]],
) -> List[PredictorScore]:
    scores: List[PredictorScore] = []
    for name, factory in factories.items():
        per_module: Dict[int, MessagePredictor] = {}
        for event in events:
            if event.role is not Role.CACHE:
                continue
            predictor = per_module.get(event.node)
            if predictor is None:
                predictor = factory()
                per_module[event.node] = predictor
            predictor.observe(event.block, event.tuple)
        hits = sum(p.hits for p in per_module.values())
        preds = sum(p.predictions for p in per_module.values())
        refs = preds + sum(p.no_prediction for p in per_module.values())
        scores.append(
            PredictorScore(
                predictor=name,
                accuracy=hits / refs if refs else 0.0,
                precision=hits / preds if preds else 0.0,
                coverage=preds / refs if refs else 0.0,
            )
        )
    return scores


def default_factories() -> Dict[str, Callable[[], MessagePredictor]]:
    """The standard comparison line-up."""
    return {
        "cosmos-d1": lambda: CosmosAdapter(CosmosConfig(depth=1)),
        "cosmos-d2": lambda: CosmosAdapter(CosmosConfig(depth=2)),
        "migratory": lambda: MigratoryPredictor(predict_reacquire=True),
        "dsi": lambda: DSIPredictor(),
        "last-message": LastMessagePredictor,
        "most-common": MostCommonPredictor,
    }


def run_figure8(
    iterations: int = 40,
    seed: int = 0,
    include_apps: Iterable[str] = ("unstructured", "moldyn"),
    quick: bool = False,
) -> Figure8Result:
    """Score Cosmos and the directed predictors on trigger microworkloads
    and on real applications."""
    factories = default_factories()
    scores: Dict[str, List[PredictorScore]] = {}
    for workload in (MigratoryMicro(), SelfInvalidationMicro()):
        collector = simulate(workload, iterations=iterations, seed=seed)
        scores[workload.name] = _score_predictors(collector.events, factories)
    for app in include_apps:
        events = get_trace(app, seed=seed, quick=quick)
        scores[app] = _score_predictors(events, factories)
    return Figure8Result(scores=scores)
