"""Drivers regenerating every table and figure of the paper's evaluation."""

from .bounds import BoundsResult, run_bounds
from .common import (
    DEFAULT_ITERATIONS,
    clear_trace_cache,
    get_trace,
    iterations_for,
    workload_for,
)
from .figure2 import Figure2Result, ProducerConsumerMicro, run_figure2
from .figure5 import Figure5Result, run_figure5
from .figure8 import (
    Figure8Result,
    MigratoryMicro,
    SelfInvalidationMicro,
    run_figure8,
)
from .figures6_7 import AppSignatures, Figures67Result, run_figures6_7
from .hardware import (
    CapacityPoint,
    ConfidencePoint,
    HardwareResult,
    run_hardware,
)
from .integration import IntegrationResult, run_integration
from .mispredict import MispredictProfileResult, run_mispredict_profile
from .paper_data import (
    PAPER_FIGURE5_EXAMPLE,
    PAPER_TABLE5,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TIME_TO_ADAPT,
)
from .protocols import (
    ProtocolComparisonResult,
    ProtocolPoint,
    run_protocol_comparison,
)
from .replacement import (
    ReplacementPoint,
    ReplacementResult,
    evaluate_with_history_loss,
    run_replacement_study,
)
from .scaling import (
    ScalingPoint,
    ScalingResult,
    SeedStudyResult,
    run_scaling,
    run_seed_study,
)
from .sensitivity import SensitivityResult, run_sensitivity
from .table5 import Table5Result, run_table5
from .table6 import Table6Result, run_table6
from .table7 import Table7Result, run_table7
from .table8 import (
    TABLE8_CHECKPOINTS,
    TABLE8_TRANSITIONS,
    Table8Result,
    run_table8,
)
from .traffic import TrafficResult, run_traffic

__all__ = [
    "AppSignatures",
    "BoundsResult",
    "DEFAULT_ITERATIONS",
    "Figure2Result",
    "Figure5Result",
    "CapacityPoint",
    "ConfidencePoint",
    "Figure8Result",
    "Figures67Result",
    "HardwareResult",
    "IntegrationResult",
    "MigratoryMicro",
    "MispredictProfileResult",
    "PAPER_FIGURE5_EXAMPLE",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE8",
    "PAPER_TIME_TO_ADAPT",
    "ProducerConsumerMicro",
    "ProtocolComparisonResult",
    "ProtocolPoint",
    "ReplacementPoint",
    "ReplacementResult",
    "ScalingPoint",
    "ScalingResult",
    "SeedStudyResult",
    "SelfInvalidationMicro",
    "SensitivityResult",
    "TABLE8_CHECKPOINTS",
    "TABLE8_TRANSITIONS",
    "Table5Result",
    "Table6Result",
    "Table7Result",
    "Table8Result",
    "TrafficResult",
    "clear_trace_cache",
    "evaluate_with_history_loss",
    "run_bounds",
    "get_trace",
    "iterations_for",
    "run_figure2",
    "run_figure5",
    "run_figure8",
    "run_figures6_7",
    "run_hardware",
    "run_integration",
    "run_mispredict_profile",
    "run_protocol_comparison",
    "run_replacement_study",
    "run_scaling",
    "run_seed_study",
    "run_sensitivity",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_traffic",
    "workload_for",
]
