"""The paper's published numbers, for side-by-side comparison.

Transcribed from Mukherjee & Hill (ISCA 1998).  Our reproduction runs on
a synthetic substrate, so absolute values differ; experiments print these
next to measured values and EXPERIMENTS.md audits the qualitative claims.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Table 5 -- prediction rate (%) per application x MHR depth:
#: (cache, directory, overall).
PAPER_TABLE5: Dict[str, Dict[int, Tuple[int, int, int]]] = {
    "appbt": {1: (91, 77, 84), 2: (90, 79, 85), 3: (89, 80, 85), 4: (89, 80, 85)},
    "barnes": {1: (80, 42, 62), 2: (81, 56, 69), 3: (79, 57, 69), 4: (78, 56, 68)},
    "dsmc": {1: (94, 73, 84), 2: (95, 77, 86), 3: (94, 92, 93), 4: (94, 92, 93)},
    "moldyn": {1: (92, 79, 86), 2: (91, 80, 86), 3: (90, 79, 85), 4: (90, 77, 84)},
    "unstructured": {
        1: (85, 65, 74),
        2: (90, 86, 88),
        3: (90, 88, 89),
        4: (96, 88, 92),
    },
}

#: Table 6 -- overall prediction rate (%) per application x MHR depth x
#: filter saturating-counter maximum (0 = no filter).
PAPER_TABLE6: Dict[str, Dict[int, Dict[int, int]]] = {
    "appbt": {1: {0: 84, 1: 85, 2: 85}, 2: {0: 85, 1: 85, 2: 86}},
    "barnes": {1: {0: 62, 1: 66, 2: 66}, 2: {0: 69, 1: 71, 2: 71}},
    "dsmc": {1: {0: 84, 1: 86, 2: 86}, 2: {0: 86, 1: 88, 2: 88}},
    "moldyn": {1: {0: 86, 1: 86, 2: 86}, 2: {0: 86, 1: 86, 2: 86}},
    "unstructured": {1: {0: 74, 1: 78, 2: 78}, 2: {0: 88, 1: 89, 2: 89}},
}

#: Table 7 -- memory overhead per application x MHR depth:
#: (PHT/MHR ratio, overhead % of a 128-byte block).
PAPER_TABLE7: Dict[str, Dict[int, Tuple[float, float]]] = {
    "appbt": {1: (1.2, 5.4), 2: (1.4, 9.6), 3: (1.9, 16.4), 4: (2.6, 26.5)},
    "barnes": {1: (3.8, 13.5), 2: (6.9, 35.4), 3: (9.3, 63.0), 4: (10.9, 91.8)},
    "dsmc": {1: (0.8, 3.9), 2: (0.4, 5.1), 3: (0.3, 6.7), 4: (0.3, 8.9)},
    "moldyn": {1: (0.8, 4.0), 2: (1.1, 8.3), 3: (1.6, 14.9), 4: (2.0, 21.6)},
    "unstructured": {
        1: (1.7, 6.8),
        2: (2.1, 12.8),
        3: (2.8, 21.9),
        4: (3.4, 33.0),
    },
}

#: Table 8 -- dsmc per-transition cumulative (hits %, refs %) after
#: 4 / 80 / 320 iterations, depth-1 filterless Cosmos.  Keys are
#: (previous message type name, current message type name) at the role
#: the transition belongs to.
PAPER_TABLE8: Dict[Tuple[str, str], Dict[int, Tuple[int, int]]] = {
    ("get_ro_response", "upgrade_response"): {
        4: (2, 20),
        80: (34, 4),
        320: (62, 2),
    },
    ("get_ro_request", "inval_rw_response"): {
        4: (2, 25),
        80: (18, 13),
        320: (30, 12),
    },
    ("inval_rw_response", "upgrade_request"): {
        4: (1, 19),
        80: (18, 4),
        320: (35, 1),
    },
}

#: Section 6.2 -- approximate iterations to steady-state prediction rates.
PAPER_TIME_TO_ADAPT: Dict[str, int] = {
    "appbt": 30,
    "barnes": 20,
    "dsmc": 300,
    "moldyn": 30,
    "unstructured": 20,
}

#: Section 4.4 -- the quoted example point of the speedup model:
#: p = 0.8, f = 0.3, r = 1.0 gives a 56% speedup.
PAPER_FIGURE5_EXAMPLE = {"p": 0.8, "f": 0.3, "r": 1.0, "speedup_percent": 56}
