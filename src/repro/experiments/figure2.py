"""Experiment: Figure 2 -- the producer-consumer message signature.

Builds the paper's motivating example from first principles: a producer
incrementing a shared counter read by one consumer, run on the real
simulator, then the incoming-message signature observed at each module
and Cosmos' accuracy once it has locked on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.arcs import measure_arcs
from ..analysis.signatures import Signature, extract_signatures
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..protocol.messages import Role
from ..sim.machine import simulate
from ..sim.memory_map import Allocator
from ..trace.events import TraceEvent
from ..workloads.access import Phase, read
from ..workloads.base import Workload
from ..workloads.patterns import producer_consumer


class ProducerConsumerMicro(Workload):
    """The paper's Figure 2 microworkload: one producer, N consumers."""

    name = "producer-consumer-micro"
    description = "one shared counter: producer increments, consumers read"
    default_iterations = 50

    def __init__(self, n_procs: int = 16, n_consumers: int = 1) -> None:
        super().__init__(n_procs)
        if not 1 <= n_consumers < n_procs:
            raise ValueError("need between 1 and n_procs-1 consumers")
        self.n_consumers = n_consumers
        self._block = 0
        self.producer = 1  # node 0 is the home; keep endpoints remote
        self.consumers = [
            2 + (index % (n_procs - 2)) for index in range(n_consumers)
        ]

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._block = allocator.alloc_block(home=0)

    @property
    def block(self) -> int:
        return self._block

    def iteration(self, index: int, rng: random.Random) -> List[Phase]:
        update = self._new_phase()
        producer_consumer(update, self._block, self.producer, [])
        consume = self._new_phase()
        for consumer in self.consumers:
            consume[consumer].append(read(self._block))
        return [update, consume]


@dataclass(frozen=True)
class Figure2Result:
    """Observed signatures and steady-state accuracy of the microworkload."""

    signatures: Dict[Role, Signature]
    steady_accuracy: float
    events: int

    def format(self) -> str:
        lines = [
            "Figure 2: producer-consumer coherence message signature",
            f"(trace: {self.events} messages; steady-state depth-1 Cosmos "
            f"accuracy after warm-up: {self.steady_accuracy:.0%})",
            "",
        ]
        for role, signature in self.signatures.items():
            lines.append(str(signature))
        return "\n".join(lines)


def run_figure2(
    iterations: int = 50, n_consumers: int = 1, seed: int = 0
) -> Figure2Result:
    """Regenerate the Figure 2 signature from a live simulation."""
    workload = ProducerConsumerMicro(n_consumers=n_consumers)
    collector = simulate(workload, iterations=iterations, seed=seed)
    events = collector.events
    arcs = measure_arcs(events, depth=1, min_ref_percent=0.0)
    signatures = {
        role: sig
        for role, sig in extract_signatures(arcs).items()
        if sig is not None
    }
    # Steady-state accuracy: skip the first 20% of iterations as warm-up.
    warm = [e for e in events if e.iteration > max(1, iterations // 5)]
    result = evaluate_trace(warm, CosmosConfig(depth=1), track_arcs=False)
    return Figure2Result(
        signatures=signatures,
        steady_accuracy=result.overall_accuracy,
        events=len(events),
    )
