"""Experiment: Figures 6 and 7 -- dominant message signatures per application.

For each application and each role (cache / directory), reports every
dominant transition arc with the paper's ``X/Y`` label (X = percent of
references to the arc predicted correctly by a depth-1 filterless Cosmos,
Y = the arc's share of all references at the role) and the dominant
cyclic signature traced through the heaviest arcs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..analysis.arcs import Arc, measure_arcs
from ..analysis.signatures import Signature, extract_signatures
from ..protocol.messages import Role
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace


@dataclass(frozen=True)
class AppSignatures:
    """One application's arcs and dominant cycles."""

    app: str
    arcs: List[Arc]
    signatures: Dict[Role, Optional[Signature]]


@dataclass(frozen=True)
class Figures67Result:
    """Signature graphs for every application."""

    apps: Dict[str, AppSignatures]
    min_ref_percent: float

    def format(self) -> str:
        lines = [
            "Figures 6-7: dominant incoming-message signatures",
            f"(arcs with >= {self.min_ref_percent:.0f}% of role references; "
            "label X/Y = hit% / reference%)",
        ]
        for app, data in self.apps.items():
            lines.append("")
            lines.append(f"== {app} ==")
            for role in (Role.CACHE, Role.DIRECTORY):
                lines.append(f"  at the {role}:")
                for arc in data.arcs:
                    if arc.role == role:
                        lines.append(
                            f"    {str(arc.src):22s} -> {str(arc.dst):22s} "
                            f"{arc.label}"
                        )
                signature = data.signatures.get(role)
                if signature is not None:
                    cycle = " -> ".join(str(m) for m in signature.cycle)
                    lines.append(f"    dominant signature: {cycle} -> (repeat)")
        return "\n".join(lines)


def run_figures6_7(
    apps: Iterable[str] = BENCHMARK_NAMES,
    min_ref_percent: float = 2.0,
    seed: int = 0,
    quick: bool = False,
) -> Figures67Result:
    """Regenerate the Figure 6/7 arc labels and dominant signatures."""
    results: Dict[str, AppSignatures] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        arcs = measure_arcs(
            events, depth=1, min_ref_percent=min_ref_percent
        )
        results[app] = AppSignatures(
            app=app, arcs=arcs, signatures=extract_signatures(arcs)
        )
    return Figures67Result(apps=results, min_ref_percent=min_ref_percent)
