"""Experiment: Section 3.7 -- cache replacement and Cosmos history loss.

Stache never replaces remote blocks, so the paper's Cosmos always keeps
its history; Section 3.7 warns that an implementation merging the
first-level table into the cache-block state would lose a block's
history at every replacement.  This experiment quantifies both halves:

1. **Traffic**: shrinking the cache forces silent replacement of clean
   blocks, whose re-reads inflate coherence traffic.
2. **Prediction**: the same trace is scored twice -- once with
   *persistent* predictor history (a decoupled table, the paper's
   recommendation) and once with history *dropped on every replacement*
   (the merged organization).  The gap is the cost of merging.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import random

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.predictor import CosmosPredictor
from ..protocol.messages import Role
from ..protocol.stache import StacheOptions
from ..sim.machine import Machine
from ..sim.memory_map import Allocator
from ..sim.params import PAPER_PARAMS, SystemParams
from ..trace.events import TraceEvent
from ..workloads.access import Phase, read, write
from ..workloads.base import Workload
from .common import iterations_for, workload_for


class ReadMostlyMicro(Workload):
    """Shared lookup tables: read every iteration, written rarely.

    Invalidation-based sharing already forces a miss after every write,
    so cache capacity only shows up as extra traffic when blocks are
    *re-read without intervening writes* -- exactly this access pattern.
    Each processor reads all table blocks every iteration; an owner
    refreshes the table only every ``write_period`` iterations.
    """

    name = "read-mostly-micro"
    description = "shared lookup tables, reread each iteration, rare writes"
    default_iterations = 30

    def __init__(
        self,
        n_procs: int = 16,
        table_blocks: int = 48,
        readers: int = 4,
        write_period: int = 10,
    ) -> None:
        super().__init__(n_procs)
        self.table_blocks = table_blocks
        self.readers = readers
        self.write_period = write_period
        self._blocks: list = []

    def setup(self, allocator: Allocator, rng: random.Random) -> None:
        self._blocks = allocator.alloc_blocks(self.table_blocks)

    def iteration(self, index: int, rng: random.Random):
        phase = self._new_phase()
        if index % self.write_period == 1:
            for block_index, block in enumerate(self._blocks):
                phase[block_index % self.n_procs].append(write(block))
        lookups = self._new_phase()
        for block_index, block in enumerate(self._blocks):
            owner = block_index % self.n_procs
            for offset in range(1, self.readers + 1):
                lookups[(owner + offset) % self.n_procs].append(read(block))
        return [phase, lookups]

#: A replacement marker: (time, node, block).
Replacement = Tuple[int, int, int]


def evaluate_with_history_loss(
    events: Sequence[TraceEvent],
    replacements: Iterable[Replacement],
    config: Optional[CosmosConfig] = None,
) -> float:
    """Overall accuracy when cache-side history dies with the cache line.

    Events and replacement markers are merged in time order; each marker
    erases the evicted block's history in the evicting node's cache-side
    predictor (directory-side history is unaffected -- directory state is
    persistent, as Section 3.7 notes).
    """
    config = config if config is not None else CosmosConfig(depth=1)
    predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}

    def predictor_for(node: int, role: Role) -> CosmosPredictor:
        key = (node, role)
        predictor = predictors.get(key)
        if predictor is None:
            predictor = CosmosPredictor(config)
            predictors[key] = predictor
        return predictor

    # Merge the two time-ordered streams (tag 0 = replacement first at a
    # tie: the eviction happens before the next message is handled).
    timeline = heapq.merge(
        ((time, 0, (node, block)) for time, node, block in replacements),
        (
            (event.time, 1, event)
            for event in events
        ),
    )
    hits = refs = 0
    for _time, tag, payload in timeline:
        if tag == 0:
            node, block = payload
            predictor_for(node, Role.CACHE).forget(block)
        else:
            event = payload
            observation = predictor_for(event.node, event.role).observe(
                event.block, event.tuple
            )
            refs += 1
            hits += observation.hit
    return hits / refs if refs else 0.0


@dataclass(frozen=True)
class ReplacementPoint:
    """Measurements at one cache size."""

    cache_blocks: Optional[int]  # None = infinite (Stache)
    messages: int
    replacements: int
    accuracy_persistent: float
    accuracy_merged: float

    @property
    def history_loss_cost(self) -> float:
        """Accuracy points lost by merging history into cache state."""
        return 100.0 * (self.accuracy_persistent - self.accuracy_merged)


@dataclass(frozen=True)
class ReplacementResult:
    """Cache-size sweep for one application."""

    app: str
    depth: int
    points: List[ReplacementPoint]

    def format(self) -> str:
        headers = [
            "cache (blocks)",
            "messages",
            "replacements",
            "persistent-history acc",
            "merged-history acc",
            "merge cost (points)",
        ]
        body = []
        for point in self.points:
            body.append(
                [
                    "inf" if point.cache_blocks is None else point.cache_blocks,
                    point.messages,
                    point.replacements,
                    f"{100 * point.accuracy_persistent:.1f}%",
                    f"{100 * point.accuracy_merged:.1f}%",
                    f"{point.history_loss_cost:.1f}",
                ]
            )
        return render_table(
            headers,
            body,
            title=(
                f"Section 3.7 replacement study ({self.app}, Cosmos depth "
                f"{self.depth}): persistent vs cache-merged history"
            ),
        )


def run_replacement_study(
    app: str = "read-mostly-micro",
    cache_blocks: Iterable[Optional[int]] = (None, 64, 32, 16),
    depth: int = 1,
    seed: int = 0,
    quick: bool = False,
) -> ReplacementResult:
    """Sweep cache capacity; measure traffic and history-loss cost.

    ``app`` may be one of the five benchmarks or ``"read-mostly-micro"``
    (the default): under write-invalidate coherence, actively shared
    blocks are invalidated between uses anyway, so only read-mostly reuse
    exposes the capacity-traffic effect.
    """
    points: List[ReplacementPoint] = []
    for capacity in cache_blocks:
        if capacity is None:
            params = PAPER_PARAMS
            options = StacheOptions()
        else:
            params = dc_replace(
                PAPER_PARAMS,
                cache_bytes=capacity * PAPER_PARAMS.cache_block_bytes,
            )
            options = StacheOptions(finite_caches=True)
        machine = Machine(params=params, options=options, seed=seed)
        if app == ReadMostlyMicro.name:
            workload = ReadMostlyMicro()
            iterations = workload.default_iterations
        else:
            workload = workload_for(app, quick)
            iterations = iterations_for(app, quick)
        machine.run_workload(workload, iterations=iterations)
        events = machine.collector.events
        config = CosmosConfig(depth=depth)
        persistent = evaluate_with_history_loss(events, [], config)
        merged = evaluate_with_history_loss(
            events, machine.replacements, config
        )
        points.append(
            ReplacementPoint(
                cache_blocks=capacity,
                messages=len(events),
                replacements=len(machine.replacements),
                accuracy_persistent=persistent,
                accuracy_merged=merged,
            )
        )
    return ReplacementResult(app=app, depth=depth, points=points)
