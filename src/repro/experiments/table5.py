"""Experiment: Table 5 -- prediction rates per application and MHR depth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.accuracy import AccuracyRow, depth_sweep
from ..analysis.report import render_table
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace
from .paper_data import PAPER_TABLE5


@dataclass(frozen=True)
class Table5Result:
    """Measured Table 5: app -> depth -> (cache, directory, overall) %."""

    rows: Dict[str, List[AccuracyRow]]

    def cell(self, app: str, depth: int) -> AccuracyRow:
        for row in self.rows[app]:
            if row.depth == depth:
                return row
        raise KeyError(f"no depth-{depth} row for {app}")

    def format(self, with_paper: bool = True) -> str:
        headers: List[str] = ["Depth of MHR"]
        for app in self.rows:
            headers.extend([f"{app}:C", f"{app}:D", f"{app}:O"])
        depths = sorted({row.depth for rows in self.rows.values() for row in rows})
        body: List[List[object]] = []
        for depth in depths:
            line: List[object] = [depth]
            for app in self.rows:
                cell = self.cell(app, depth)
                line.extend(
                    [f"{cell.cache:.0f}", f"{cell.directory:.0f}", f"{cell.overall:.0f}"]
                )
            body.append(line)
        text = render_table(
            headers,
            body,
            title="Table 5: Cosmos prediction rates (%), C=cache D=directory O=overall",
        )
        if with_paper:
            paper_body: List[List[object]] = []
            for depth in depths:
                line = [depth]
                for app in self.rows:
                    c, d, o = PAPER_TABLE5[app][depth]
                    line.extend([c, d, o])
                paper_body.append(line)
            text += "\n\n" + render_table(
                headers, paper_body, title="Paper's Table 5 (for reference)"
            )
        return text


def run_table5(
    apps: Iterable[str] = BENCHMARK_NAMES,
    depths: Iterable[int] = (1, 2, 3, 4),
    seed: int = 0,
    quick: bool = False,
) -> Table5Result:
    """Regenerate Table 5 from fresh (or cached) simulations."""
    rows: Dict[str, List[AccuracyRow]] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        rows[app] = depth_sweep(events, depths=depths)
    return Table5Result(rows=rows)
