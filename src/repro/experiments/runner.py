"""Command-line driver: regenerate any table or figure of the paper.

Usage::

    repro-experiments all                 # everything, paper scale
    repro-experiments table5              # one experiment
    repro-experiments table5 --quick      # shrunken workloads, fast
    repro-experiments all --jobs 4        # shard across 4 worker processes
    repro-experiments all --sequential    # force the in-process path
    repro-experiments all --html out.html # self-contained HTML report
    repro-experiments table5 --metrics-json m.json   # runtime metrics dump
    repro-experiments --list

or ``python -m repro.experiments.runner ...``.

Parallel runs (``--jobs N``) shard independent experiments across a
``spawn`` process pool and hand simulation traces between workers
through the on-disk trace cache (``--trace-cache DIR``, or the
``REPRO_TRACE_CACHE`` environment variable, defaulting to
``~/.cache/repro/traces`` when parallel).  The same seeds drive the same
simulations wherever they run, so the report text is byte-identical to
``--sequential``; only the wall time changes.
"""

from __future__ import annotations

import argparse
import html as html_module
import os
import signal
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError, RunInterrupted, ShardError
from ..ioutil import atomic_write_text
from ..obs import (
    OBS,
    build_manifest,
    export_trace_events,
    save_trace_events,
    validate_trace_events,
)
from ..protocol.messages import format_table1
from ..sim.metrics import METRICS, dump_metrics_json
from ..sim.params import PAPER_PARAMS
from ..trace.cache import TraceCache
from ..workloads.registry import BENCHMARK_NAMES, format_table4
from ..sim.faults import PRESETS, FaultProfile
from .bounds import run_bounds
from .common import configure_faults, configure_trace_cache
from .corruption import run_corruption_study
from .critical_path import run_critical_path
from .faults import run_fault_study
from .mispredict import run_mispredict_profile
from .figure2 import run_figure2
from .figure5 import run_figure5
from .figure8 import run_figure8
from .figures6_7 import run_figures6_7
from .capacity import run_capacity_study
from .hardware import run_hardware
from .integration import run_integration
from .protocols import run_protocol_comparison
from .replacement import run_replacement_study
from .scaling import run_scaling, run_seed_study
from .sensitivity import run_sensitivity
from .traffic import run_traffic
from .table5 import run_table5
from .table6 import run_table6
from .table7 import run_table7
from .table8 import run_table8

#: A rendered experiment: (name, text, elapsed seconds).
Section = Tuple[str, str, float]


def _static_tables(quick: bool, seed: int) -> str:
    parts = [
        "Table 1: coherence message vocabulary",
        format_table1(),
        "",
        "Table 3: system parameters",
        PAPER_PARAMS.describe(),
        "",
        format_table4(),
    ]
    return "\n".join(parts)


#: Experiment name -> callable(quick, seed) -> printable text.
EXPERIMENTS: Dict[str, Callable[[bool, int], str]] = {
    "tables1-3-4": _static_tables,
    "figure2": lambda quick, seed: run_figure2(seed=seed).format(),
    "figure5": lambda quick, seed: run_figure5().format(),
    "table5": lambda quick, seed: run_table5(quick=quick, seed=seed).format(),
    "table6": lambda quick, seed: run_table6(quick=quick, seed=seed).format(),
    "table7": lambda quick, seed: run_table7(quick=quick, seed=seed).format(),
    "table8": lambda quick, seed: run_table8(quick=quick, seed=seed).format(),
    "figures6-7": lambda quick, seed: run_figures6_7(
        quick=quick, seed=seed
    ).format(),
    "figure8": lambda quick, seed: run_figure8(quick=quick, seed=seed).format(),
    "sensitivity": lambda quick, seed: run_sensitivity(
        quick=quick, seed=seed
    ).format(),
    "integration": lambda quick, seed: run_integration(
        quick=quick, seed=seed
    ).format(),
    "protocols": lambda quick, seed: run_protocol_comparison(
        quick=quick, seed=seed
    ).format(),
    "replacement": lambda quick, seed: run_replacement_study(
        quick=quick, seed=seed
    ).format(),
    "traffic": lambda quick, seed: run_traffic(
        quick=quick, seed=seed
    ).format(),
    "scaling": lambda quick, seed: run_scaling(
        quick=quick, seed=seed
    ).format(),
    "seeds": lambda quick, seed: run_seed_study(quick=quick).format(),
    "hardware": lambda quick, seed: run_hardware(
        quick=quick, seed=seed
    ).format(),
    "bounds": lambda quick, seed: run_bounds(
        quick=quick, seed=seed
    ).format(),
    "faults": lambda quick, seed: run_fault_study(
        quick=quick, seed=seed
    ).format(),
    "corruption": lambda quick, seed: run_corruption_study(
        quick=quick, seed=seed
    ).format(),
    "mispredict-profile": lambda quick, seed: run_mispredict_profile(
        quick=quick, seed=seed
    ).format(),
    "critical-path": lambda quick, seed: run_critical_path(
        quick=quick, seed=seed
    ).format(),
    "capacity": lambda quick, seed: run_capacity_study(
        quick=quick, seed=seed
    ).format(),
}

#: Workloads each experiment replays through the shared trace cache.
#: Experiments that simulate privately (non-default protocol options or
#: machine sizes: sensitivity, protocols, replacement, scaling, seeds)
#: or not at all are mapped to the empty tuple; the parallel planner
#: uses this to warm exactly the traces a run will need.
EXPERIMENT_TRACES: Dict[str, Tuple[str, ...]] = {
    name: () for name in EXPERIMENTS
}
EXPERIMENT_TRACES.update(
    {
        "table5": tuple(BENCHMARK_NAMES),
        "table6": tuple(BENCHMARK_NAMES),
        "table7": tuple(BENCHMARK_NAMES),
        "table8": tuple(BENCHMARK_NAMES),
        "figures6-7": tuple(BENCHMARK_NAMES),
        "figure8": tuple(BENCHMARK_NAMES),
        "traffic": tuple(BENCHMARK_NAMES),
        "bounds": tuple(BENCHMARK_NAMES),
        "integration": tuple(BENCHMARK_NAMES),
        "hardware": ("moldyn",),
        "mispredict-profile": tuple(BENCHMARK_NAMES),
        "corruption": tuple(BENCHMARK_NAMES),
    }
)

#: Fallback shared cache directory for parallel runs.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro" / "traces"


def run_experiments(
    names: List[str],
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    on_section: Optional[Callable[[Section], None]] = None,
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
    run_dir: Optional[str] = None,
    resume_dir: Optional[str] = None,
) -> Tuple[List[Section], List[dict]]:
    """Run ``names`` sequentially (``jobs <= 1``) or on a worker pool.

    Both paths produce identical section text for identical inputs; the
    parallel path shards experiments across ``spawn`` processes and
    merges results back in request order.  ``on_section`` is called once
    per section, in order.  ``fault_spec`` (``--fault-profile``) injects
    interconnect faults into every simulation either path runs.  Returns
    ``(sections, shard_stats)`` where ``shard_stats`` holds one
    JSON-able accounting dict per shard (simulation shards included) for
    ``--metrics-json``.

    ``run_dir`` journals every shard completion under that directory
    (forcing the pool path even for ``jobs=1``) so an interrupted or
    killed run can be resumed; ``resume_dir`` resumes such a run,
    rebuilding the journaled plan exactly and re-executing only the
    shards with no recorded success -- the merged output is
    byte-identical to an uninterrupted run.  The two are mutually
    exclusive; with ``resume_dir`` set, ``names``/``quick``/``seed``/
    fault arguments are taken from the journal, not the caller.
    """
    sections: List[Section] = []
    shard_stats: List[dict] = []
    if jobs > 1 or run_dir is not None or resume_dir is not None:
        from ..parallel import RunJournal, plan_run, run_plan

        journal = None
        if resume_dir is not None:
            if run_dir is not None:
                raise ValueError("run_dir and resume_dir are exclusive")
            journal = RunJournal.load(resume_dir)
            plan = journal.plan()
        else:
            plan = plan_run(
                names,
                quick,
                seed,
                cache_dir,
                EXPERIMENT_TRACES,
                fault_spec=fault_spec,
                fault_seed=fault_seed,
            )
            if run_dir is not None:
                journal = RunJournal.create(
                    run_dir,
                    plan,
                    meta={
                        "names": list(names),
                        "quick": quick,
                        "seed": seed,
                        "cache_dir": cache_dir,
                        "fault_spec": fault_spec,
                        "fault_seed": fault_seed,
                    },
                )
        try:
            sections, outcomes = run_plan(plan, jobs, journal=journal)
        finally:
            if journal is not None:
                journal.close()
        shard_stats = [
            {
                "kind": outcome.kind,
                "name": outcome.name,
                "seconds": outcome.seconds,
                "events": outcome.events,
                "events_per_second": round(outcome.events_per_second, 1),
                "pid": outcome.pid,
            }
            for outcome in outcomes
        ]
        if on_section is not None:
            for section in sections:
                on_section(section)
        return sections, shard_stats

    previous = configure_trace_cache(
        TraceCache(cache_dir) if cache_dir is not None else None
    )
    previous_faults = configure_faults(fault_spec, fault_seed)
    try:
        for name in names:
            start = time.perf_counter()
            text = EXPERIMENTS[name](quick, seed)
            elapsed = time.perf_counter() - start
            METRICS.inc("shard.experiment")
            section = (name, text, elapsed)
            sections.append(section)
            shard_stats.append(
                {
                    "kind": "experiment",
                    "name": name,
                    "seconds": elapsed,
                    "events": 0,
                    "events_per_second": 0.0,
                    "pid": os.getpid(),
                }
            )
            if on_section is not None:
                on_section(section)
    finally:
        configure_trace_cache(previous)
        configure_faults(*previous_faults)
    return sections, shard_stats


def report_text(sections: List[Section]) -> str:
    """The report body: every section's text, in order (no timings)."""
    return ("\n\n" + "=" * 78 + "\n\n").join(text for _, text, _ in sections)


_HTML_STYLE = """
body { font-family: Georgia, serif; max-width: 70rem; margin: 2rem auto;
       padding: 0 1rem; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2.5rem; }
pre { background: #f6f6f4; border: 1px solid #ddd; border-radius: 4px;
      padding: 1rem; overflow-x: auto; font-size: 0.85rem; line-height: 1.3; }
nav ul { columns: 3; list-style: none; padding: 0; }
nav a { text-decoration: none; }
.meta { color: #666; font-size: 0.85rem; }
"""


def render_html_report(sections: List[Tuple[str, str, float]]) -> str:
    """Build a self-contained HTML report from experiment outputs."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Cosmos reproduction report</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Using Prediction to Accelerate Coherence Protocols "
        "&mdash; reproduction report</h1>",
        '<p class="meta">Mukherjee &amp; Hill, ISCA 1998. Generated by '
        "<code>repro-experiments --html</code>; see EXPERIMENTS.md for the "
        "measured-vs-paper audit.</p>",
        "<nav><ul>",
    ]
    for name, _text, _elapsed in sections:
        parts.append(f'<li><a href="#{name}">{html_module.escape(name)}</a></li>')
    parts.append("</ul></nav>")
    for name, text, elapsed in sections:
        parts.append(f'<h2 id="{name}">{html_module.escape(name)}</h2>')
        parts.append(
            f'<p class="meta">regenerated in {elapsed:.1f}s</p>'
        )
        parts.append(f"<pre>{html_module.escape(text)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def _resolve_cache_dir(args: argparse.Namespace, jobs: int) -> Optional[str]:
    """Which on-disk trace cache (if any) this invocation should use.

    Precedence: ``--no-trace-cache`` wins; then an explicit
    ``--trace-cache DIR``; then ``REPRO_TRACE_CACHE``; finally parallel
    runs fall back to a per-user default (workers need *some* shared
    directory to hand traces to each other).  Sequential runs default to
    no disk cache, preserving the historical behaviour.
    """
    if args.no_trace_cache:
        return None
    if args.trace_cache is not None:
        return args.trace_cache
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env:
        return env
    if jobs > 1:
        return str(DEFAULT_CACHE_DIR)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Using Prediction to "
            "Accelerate Coherence Protocols' (Mukherjee & Hill, ISCA 1998)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (or 'all'); see --list",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use shrunken workloads (fast; coarser numbers)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments on N worker processes (default 1: in-process)",
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="force the in-process path (equivalent to --jobs 1)",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help=(
            "cache simulation traces on disk under DIR (default: "
            "$REPRO_TRACE_CACHE, else ~/.cache/repro/traces for parallel "
            "runs, else disabled)"
        ),
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the on-disk trace cache entirely",
    )
    parser.add_argument(
        "--fault-profile",
        metavar="SPEC",
        default=None,
        help=(
            "inject interconnect faults into every simulation: a preset "
            f"({', '.join(PRESETS)}) or 'drop=0.05,reorder=0.2,...'"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault-injection RNG (default 0)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="dump counters/timers/per-shard throughput as JSON to PATH",
    )
    parser.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help=(
            "capture a structured event log during the run and export it "
            "as Chrome trace-event / Perfetto JSON to PATH (forces "
            "--sequential: the log is an in-process ring buffer)"
        ),
    )
    parser.add_argument(
        "--obs-level",
        choices=("proto", "msg", "pred", "full"),
        default="msg",
        help=(
            "capture depth for --trace-events: proto, msg, or pred/full "
            "(default msg)"
        ),
    )
    parser.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write a self-contained HTML report to PATH",
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal every shard completion under DIR (fsync'd, so even "
            "kill -9 loses only in-flight work) and write the final "
            "report there; an interrupted run resumes with --resume DIR"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help=(
            "resume an interrupted --run-dir run: re-executes only the "
            "shards with no journaled success and merges byte-identical "
            "output (experiment names/seeds come from DIR's plan.json)"
        ),
    )
    args = parser.parse_args(argv)

    if args.run_dir and args.resume:
        print("--run-dir and --resume are mutually exclusive", file=sys.stderr)
        return 2
    if args.resume and args.experiments:
        print(
            "--resume replays the journaled plan; do not also name "
            "experiments",
            file=sys.stderr,
        )
        return 2

    if args.list or (not args.experiments and not args.resume):
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return 0

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see what is available", file=sys.stderr)
        return 2

    fault_spec: Optional[str] = None
    if args.fault_profile is not None:
        try:
            profile = FaultProfile.parse(args.fault_profile)
        except Exception as exc:
            print(f"bad --fault-profile: {exc}", file=sys.stderr)
            return 2
        if profile.is_active:
            fault_spec = profile.spec()

    jobs = 1 if args.sequential else max(1, args.jobs)
    if args.trace_events and (args.run_dir or args.resume):
        print(
            "--trace-events captures an in-process event log; it cannot "
            "combine with the journaled worker-pool path "
            "(--run-dir/--resume)",
            file=sys.stderr,
        )
        return 2
    if args.trace_events and jobs > 1:
        print(
            "note: --trace-events captures an in-process event log; "
            "forcing --sequential",
            file=sys.stderr,
        )
        jobs = 1
    cache_dir = _resolve_cache_dir(args, jobs)

    printed = 0

    def _print_section(section: Section) -> None:
        nonlocal printed
        name, text, elapsed = section
        if printed:
            print("\n" + "=" * 78 + "\n")
        print(text)
        print(f"\n[{name} regenerated in {elapsed:.1f}s]")
        printed += 1

    METRICS.reset()
    if args.trace_events:
        OBS.configure(args.obs_level)
    wall_start = time.perf_counter()

    def _sigterm(signum: int, frame: object) -> None:
        # A polite kill should behave like Ctrl-C: the pool cancels
        # in-flight shards, the journal keeps everything acknowledged,
        # and the exit message names the resume command.
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        try:
            sections, shard_stats = run_experiments(
                names,
                quick=args.quick,
                seed=args.seed,
                jobs=jobs,
                cache_dir=cache_dir,
                on_section=_print_section,
                fault_spec=fault_spec,
                fault_seed=args.fault_seed,
                run_dir=args.run_dir,
                resume_dir=args.resume,
            )
        except RunInterrupted as exc:
            print(f"\n{exc}", file=sys.stderr)
            print(
                f"resume with: repro-experiments --resume {exc.run_dir}",
                file=sys.stderr,
            )
            return 130
        except KeyboardInterrupt:
            print(
                "\ninterrupted (no --run-dir: no shard journal, "
                "nothing to resume)",
                file=sys.stderr,
            )
            return 130
        except ShardError as exc:
            print(f"\n{exc}", file=sys.stderr)
            return 1
        except ReproError as exc:
            # e.g. --resume on a directory with no journal, or --run-dir
            # on one that already holds a plan: usage errors, not crashes.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        wall_seconds = time.perf_counter() - wall_start

        if args.trace_events:
            manifest = build_manifest(
                "repro-experiments",
                experiments=names,
                quick=args.quick,
                seed=args.seed,
                fault_profile=fault_spec,
                fault_seed=args.fault_seed,
                obs_level=args.obs_level,
            )
            document = export_trace_events(
                OBS.events(),
                PAPER_PARAMS.n_nodes,
                manifest=manifest,
                dropped=OBS.dropped,
            )
            errors = validate_trace_events(document)
            if errors:
                print(
                    "timeline export failed validation: "
                    + "; ".join(errors[:5]),
                    file=sys.stderr,
                )
                return 1
            save_trace_events(document, args.trace_events)
            print(
                f"\nwrote {document['otherData']['events']} timeline "
                f"events to {args.trace_events} ({OBS.dropped} dropped)"
            )
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        if args.trace_events:
            OBS.disable()

    report_dir = args.run_dir or args.resume
    if report_dir is not None:
        report_path = Path(report_dir) / "report.txt"
        atomic_write_text(report_path, report_text(sections) + "\n")
        print(f"\nreport written to {report_path}")
    if args.html:
        atomic_write_text(args.html, render_html_report(sections))
        print(f"\nHTML report written to {args.html}")
    if args.metrics_json:
        dump_metrics_json(
            METRICS.snapshot(),
            args.metrics_json,
            shards=shard_stats,
            wall_seconds=wall_seconds,
            jobs=jobs,
            quick=args.quick,
            seed=args.seed,
            trace_cache=cache_dir,
            experiments=names,
            fault_profile=fault_spec,
            fault_seed=args.fault_seed,
            manifest=build_manifest(
                "repro-experiments",
                experiments=names,
                quick=args.quick,
                seed=args.seed,
                jobs=jobs,
                fault_profile=fault_spec,
                fault_seed=args.fault_seed,
            ),
        )
        print(f"\nmetrics written to {args.metrics_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
