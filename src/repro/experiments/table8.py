"""Experiment: Table 8 -- dsmc's slow-adapting transitions.

Tracks three named dsmc transitions with a depth-1 filterless Cosmos at
cumulative checkpoints of 4, 80, and 320 iterations, plus the overall
time-to-adapt curves of Section 6.2 for every application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.adaptation import (
    AdaptationCurve,
    Transition,
    TransitionSnapshot,
    accuracy_curve,
    transition_progress,
)
from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..protocol.messages import MessageType, Role
from ..workloads.registry import BENCHMARK_NAMES
from .common import DEFAULT_ITERATIONS, get_trace
from .paper_data import PAPER_TABLE8, PAPER_TIME_TO_ADAPT

#: The three transitions of the paper's Table 8.  The first lives at the
#: cache (responses are cache-bound); the other two at the directory.
TABLE8_TRANSITIONS: Tuple[Transition, ...] = (
    (Role.CACHE, MessageType.GET_RO_RESPONSE, MessageType.UPGRADE_RESPONSE),
    (Role.DIRECTORY, MessageType.GET_RO_REQUEST, MessageType.INVAL_RW_RESPONSE),
    (Role.DIRECTORY, MessageType.INVAL_RW_RESPONSE, MessageType.UPGRADE_REQUEST),
)

#: The paper's cumulative checkpoints.
TABLE8_CHECKPOINTS: Tuple[int, ...] = (4, 80, 320)


@dataclass(frozen=True)
class Table8Result:
    """Measured Table 8 plus per-application adaptation curves."""

    progress: Dict[Transition, List[TransitionSnapshot]]
    curves: Dict[str, AdaptationCurve]

    def format(self, with_paper: bool = True) -> str:
        headers: List[object] = ["Transition"]
        checkpoints = sorted(
            {s.iteration for snaps in self.progress.values() for s in snaps}
        )
        for iteration in checkpoints:
            headers.extend([f"{iteration}it:hits", f"{iteration}it:refs"])
        body: List[List[object]] = []
        for transition, snaps in self.progress.items():
            _role, src, dst = transition
            line: List[object] = [f"<{src}, {dst}>"]
            by_iter = {s.iteration: s for s in snaps}
            for iteration in checkpoints:
                snap = by_iter.get(iteration)
                if snap is None:
                    line.extend(["-", "-"])
                else:
                    line.extend(
                        [f"{snap.hits_percent:.0f}%", f"{snap.refs_percent:.0f}%"]
                    )
            body.append(line)
        text = render_table(
            headers,
            body,
            title=(
                "Table 8: dsmc per-transition cumulative accuracy "
                "(depth-1, no filter)"
            ),
        )
        if with_paper:
            paper_body: List[List[object]] = []
            for (src_name, dst_name), cells in PAPER_TABLE8.items():
                line: List[object] = [f"<{src_name}, {dst_name}>"]
                for iteration in TABLE8_CHECKPOINTS:
                    hits, refs = cells[iteration]
                    line.extend([f"{hits}%", f"{refs}%"])
                paper_body.append(line)
            text += "\n\n" + render_table(
                headers, paper_body, title="Paper's Table 8 (for reference)"
            )
        if self.curves:
            curve_headers = ["Application", "steady-state iteration", "paper (~)"]
            curve_body = []
            for app, curve in self.curves.items():
                curve_body.append(
                    [
                        app,
                        str(curve.steady_state_iteration(tolerance=2.0)),
                        str(PAPER_TIME_TO_ADAPT.get(app, "-")),
                    ]
                )
            text += "\n\n" + render_table(
                curve_headers,
                curve_body,
                title="Time to adapt (Section 6.2): iterations to reach "
                "within 2 points of final accuracy",
            )
        return text


def run_table8(
    checkpoints: Iterable[int] = TABLE8_CHECKPOINTS,
    curve_apps: Iterable[str] = BENCHMARK_NAMES,
    seed: int = 0,
    quick: bool = False,
) -> Table8Result:
    """Regenerate Table 8 and the time-to-adapt summary."""
    checkpoints = tuple(checkpoints)
    iterations = max(max(checkpoints), DEFAULT_ITERATIONS["dsmc"])
    if quick:
        checkpoints = tuple(c for c in checkpoints if c <= 100) or (4,)
        iterations = max(max(checkpoints), 100)
    dsmc_events = get_trace("dsmc", iterations=iterations, seed=seed, quick=quick)
    progress = transition_progress(
        dsmc_events,
        TABLE8_TRANSITIONS,
        checkpoints,
        config=CosmosConfig(depth=1),
    )
    curves: Dict[str, AdaptationCurve] = {}
    for app in curve_apps:
        events = get_trace(app, seed=seed, quick=quick)
        last = max(event.iteration for event in events) if events else 1
        marks = sorted({1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 320, last})
        marks = [m for m in marks if m <= last]
        curves[app] = accuracy_curve(events, marks, config=CosmosConfig(depth=1))
    return Table8Result(progress=progress, curves=curves)
