"""Experiment: Table 7 -- memory overhead of Cosmos predictors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..analysis.overhead import OverheadRow, overhead_sweep
from ..analysis.report import render_table
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace
from .paper_data import PAPER_TABLE7


@dataclass(frozen=True)
class Table7Result:
    """Measured Table 7: app -> [OverheadRow per depth]."""

    rows: Dict[str, List[OverheadRow]]

    def cell(self, app: str, depth: int) -> OverheadRow:
        for row in self.rows[app]:
            if row.depth == depth:
                return row
        raise KeyError(f"no depth-{depth} row for {app}")

    def format(self, with_paper: bool = True) -> str:
        headers: List[object] = ["Depth of MHR"]
        for app in self.rows:
            headers.extend([f"{app}:Ratio", f"{app}:Ovhd"])
        depths = sorted({row.depth for rows in self.rows.values() for row in rows})
        body: List[List[object]] = []
        for depth in depths:
            line: List[object] = [depth]
            for app in self.rows:
                cell = self.cell(app, depth)
                line.extend(
                    [f"{cell.ratio:.1f}", f"{cell.overhead_percent:.1f}%"]
                )
            body.append(line)
        text = render_table(
            headers,
            body,
            title=(
                "Table 7: memory overhead (Ratio = PHT entries / MHR "
                "entries; Ovhd per 128-byte block)"
            ),
        )
        if with_paper:
            paper_body: List[List[object]] = []
            for depth in depths:
                line = [depth]
                for app in self.rows:
                    ratio, ovhd = PAPER_TABLE7[app][depth]
                    line.extend([f"{ratio:.1f}", f"{ovhd:.1f}%"])
                paper_body.append(line)
            text += "\n\n" + render_table(
                headers, paper_body, title="Paper's Table 7 (for reference)"
            )
        return text


def run_table7(
    apps: Iterable[str] = BENCHMARK_NAMES,
    depths: Iterable[int] = (1, 2, 3, 4),
    seed: int = 0,
    quick: bool = False,
) -> Table7Result:
    """Regenerate Table 7 (PHT/MHR ratios and per-block overhead)."""
    rows: Dict[str, List[OverheadRow]] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        rows[app] = overhead_sweep(events, depths=depths)
    return Table7Result(rows=rows)
