"""Experiment: hardware-budget studies of Cosmos.

The paper evaluates an unbounded Cosmos (Stache's tables live in main
memory and persist).  A hardware implementation faces two knobs the
paper leaves open:

* **Capacity** -- a bounded Message History Table must evict predictor
  state (LRU here).  We sweep per-module MHT capacity and watch accuracy
  fall off once the table no longer covers the active working set of
  blocks.
* **Confidence** -- Section 4's actions pay real costs on
  mispredictions, so an implementation may only act on *confident*
  predictions.  Gating on the filter counter trades coverage for
  precision; we report the trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..protocol.messages import Role
from ..core.predictor import CosmosPredictor
from ..trace.events import TraceEvent
from .common import get_trace


@dataclass(frozen=True)
class CapacityPoint:
    """Accuracy at one per-module MHT capacity."""

    capacity: Optional[int]  # None = unbounded
    overall: float
    evictions: int


@dataclass(frozen=True)
class ConfidencePoint:
    """Coverage/precision at one confidence threshold."""

    threshold: int
    accuracy: float
    precision: float
    coverage: float


@dataclass(frozen=True)
class HardwareResult:
    """Capacity and confidence sweeps for one application."""

    app: str
    capacity_points: List[CapacityPoint]
    confidence_points: List[ConfidencePoint]

    def format(self) -> str:
        cap_headers = ["MHT capacity / module", "overall", "evictions"]
        cap_body = [
            [
                "unbounded" if p.capacity is None else p.capacity,
                f"{p.overall:.1%}",
                p.evictions,
            ]
            for p in self.capacity_points
        ]
        text = render_table(
            cap_headers,
            cap_body,
            title=f"Hardware budget ({self.app}): accuracy vs MHT capacity",
        )
        conf_headers = ["confidence threshold", "accuracy", "precision",
                        "coverage"]
        conf_body = [
            [
                p.threshold,
                f"{p.accuracy:.1%}",
                f"{p.precision:.1%}",
                f"{p.coverage:.1%}",
            ]
            for p in self.confidence_points
        ]
        text += "\n\n" + render_table(
            conf_headers,
            conf_body,
            title=(
                f"Confidence gating ({self.app}): coverage/precision "
                "trade-off (depth 1, filter max 3)"
            ),
        )
        return text


def _run_bank(
    events: Iterable[TraceEvent], config: CosmosConfig
) -> Tuple[int, int, int, int]:
    """(hits, predictions, refs, evictions) over a per-module bank."""
    predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}
    hits = predictions = refs = 0
    for event in events:
        key = (event.node, event.role)
        predictor = predictors.get(key)
        if predictor is None:
            predictor = CosmosPredictor(config)
            predictors[key] = predictor
        observation = predictor.observe(event.block, event.tuple)
        refs += 1
        if observation.predicted is not None:
            predictions += 1
            hits += observation.hit
    evictions = sum(p.capacity_evictions for p in predictors.values())
    return hits, predictions, refs, evictions


def run_hardware(
    app: str = "moldyn",
    capacities: Iterable[Optional[int]] = (None, 256, 64, 16, 4),
    thresholds: Iterable[int] = (0, 1, 2, 3),
    depth: int = 1,
    seed: int = 0,
    quick: bool = False,
) -> HardwareResult:
    """Sweep MHT capacity and confidence threshold on one trace."""
    events = get_trace(app, seed=seed, quick=quick)
    capacity_points: List[CapacityPoint] = []
    for capacity in capacities:
        config = CosmosConfig(depth=depth, mht_capacity=capacity)
        hits, _preds, refs, evictions = _run_bank(events, config)
        capacity_points.append(
            CapacityPoint(
                capacity=capacity,
                overall=hits / refs if refs else 0.0,
                evictions=evictions,
            )
        )
    confidence_points: List[ConfidencePoint] = []
    for threshold in thresholds:
        config = CosmosConfig(
            depth=depth, filter_max_count=3, confidence_threshold=threshold
        )
        hits, preds, refs, _evictions = _run_bank(events, config)
        confidence_points.append(
            ConfidencePoint(
                threshold=threshold,
                accuracy=hits / refs if refs else 0.0,
                precision=hits / preds if preds else 0.0,
                coverage=preds / refs if refs else 0.0,
            )
        )
    return HardwareResult(
        app=app,
        capacity_points=capacity_points,
        confidence_points=confidence_points,
    )
