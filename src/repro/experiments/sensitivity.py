"""Experiment: Section 5's latency-insensitivity claim.

"Changing the network latency from 40 nanoseconds to one microsecond
hardly changes Cosmos' prediction rates."  We rerun applications with the
network latency stretched 25x and compare depth-1 overall accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Tuple

from ..analysis.report import render_table
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..sim.machine import simulate
from ..sim.params import PAPER_PARAMS
from .common import iterations_for, workload_for


@dataclass(frozen=True)
class SensitivityResult:
    """Overall accuracy (%) at baseline vs stretched network latency."""

    accuracies: Dict[str, Tuple[float, float]]
    base_latency_ns: int
    slow_latency_ns: int

    def max_delta(self) -> float:
        """Largest absolute accuracy change across applications."""
        return max(
            abs(slow - base) for base, slow in self.accuracies.values()
        )

    def format(self) -> str:
        headers = [
            "Application",
            f"{self.base_latency_ns} ns",
            f"{self.slow_latency_ns} ns",
            "delta",
        ]
        body = []
        for app, (base, slow) in self.accuracies.items():
            body.append(
                [app, f"{base:.1f}", f"{slow:.1f}", f"{slow - base:+.1f}"]
            )
        return render_table(
            headers,
            body,
            title=(
                "Section 5 sensitivity: depth-1 overall accuracy (%) vs "
                "network latency"
            ),
        )


def run_sensitivity(
    apps: Iterable[str] = ("appbt", "dsmc"),
    slow_latency_ns: int = 1000,
    seed: int = 0,
    quick: bool = True,
) -> SensitivityResult:
    """Compare accuracy at the paper's 40 ns latency and a stretched one."""
    base_params = PAPER_PARAMS
    slow_params = replace(base_params, network_latency_ns=slow_latency_ns)
    config = CosmosConfig(depth=1)
    accuracies: Dict[str, Tuple[float, float]] = {}
    for app in apps:
        iterations = iterations_for(app, quick)
        values = []
        for params in (base_params, slow_params):
            collector = simulate(
                workload_for(app, quick),
                iterations=iterations,
                params=params,
                seed=seed,
            )
            result = evaluate_trace(
                collector.events, config, track_arcs=False
            )
            values.append(100.0 * result.overall_accuracy)
        accuracies[app] = (values[0], values[1])
    return SensitivityResult(
        accuracies=accuracies,
        base_latency_ns=base_params.network_latency_ns,
        slow_latency_ns=slow_latency_ns,
    )
