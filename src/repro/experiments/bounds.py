"""Experiment: how close is Cosmos to the best possible table predictor?

For each application and MHR depth, compares Cosmos' measured accuracy
to the offline ceiling of :mod:`repro.analysis.bounds`.  The gap is
Cosmos' training loss (cold starts and re-learning); the remainder above
the ceiling is noise no depth-``d`` predictor can remove.  Applications
whose patterns change (barnes) leave a bigger gap than applications with
frozen patterns (unstructured's mesh).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..analysis.bounds import OptimalityBound, measure_bounds
from ..analysis.report import render_table
from ..workloads.registry import BENCHMARK_NAMES
from .common import get_trace


@dataclass(frozen=True)
class BoundsResult:
    """Ceiling-vs-Cosmos comparison per application."""

    bounds: Dict[str, List[OptimalityBound]]

    def format(self) -> str:
        headers = [
            "Application",
            "depth",
            "ceiling",
            "cosmos",
            "gap (pts)",
            "efficiency",
        ]
        body = []
        for app, app_bounds in self.bounds.items():
            for bound in app_bounds:
                body.append(
                    [
                        app,
                        bound.depth,
                        f"{bound.bound_accuracy:.1%}",
                        f"{bound.cosmos_accuracy:.1%}",
                        f"{100 * bound.gap:.1f}",
                        f"{bound.efficiency:.1%}",
                    ]
                )
        return render_table(
            headers,
            body,
            title=(
                "Offline optimality bound: the best any fixed-depth table "
                "predictor could do vs what Cosmos achieves online"
            ),
        )


def run_bounds(
    apps: Iterable[str] = BENCHMARK_NAMES,
    depths: Iterable[int] = (1, 2, 3),
    seed: int = 0,
    quick: bool = False,
) -> BoundsResult:
    """Measure the ceiling and Cosmos' standing for every application."""
    depths = tuple(depths)
    bounds: Dict[str, List[OptimalityBound]] = {}
    for app in apps:
        events = get_trace(app, seed=seed, quick=quick)
        bounds[app] = measure_bounds(events, depths=depths)
    return BoundsResult(bounds=bounds)
