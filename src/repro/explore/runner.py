"""Drive schedule-exploration episodes and replay recorded failures.

:func:`explore` runs ``episodes`` independent schedules of one workload
under a strategy (each episode's policy seeded from a hash of the base
seed, like the parallel runner's shard seeds), watching the invariant
oracles after every delivery, at every iteration boundary, and at the
end of the run.  A violation stops the episode and is packaged as a
replayable :class:`~repro.explore.artifact.ExploreArtifact` with a
forensics bundle photographed at the failure point.

:func:`replay_artifact` re-executes an artifact's decision log through a
:class:`~repro.explore.strategies.ReplayPolicy`; because the explored
machine is deterministic in (workload streams, seed, fault seed,
decision log), the replay reproduces the original run byte-for-byte up
to the failure.

Crash-point exploration (``fork_at=N``) runs startup plus the first N
iterations once under FIFO, captures a PR 4 checkpoint in memory, and
restores it for every episode -- divergent suffixes without
re-simulating prefixes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import (
    OracleViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    WatchdogError,
)
from ..obs.bundle import build_failure_bundle
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..sim import checkpoint as ckpt
from ..sim.faults import FaultProfile
from ..sim.machine import Machine
from ..sim.metrics import METRICS
from ..sim.params import PAPER_PARAMS
from ..workloads.recorded import RecordedWorkload, materialize
from ..workloads.registry import make_workload
from .artifact import ExploreArtifact, save_artifact
from .network import DEFAULT_DEFER_CAP, ExploringNetwork
from .oracles import DEFAULT_ORACLES, parse_oracles
from .strategies import DeliveryPolicy, FifoPolicy, ReplayPolicy, make_policy


@dataclass
class ExploreConfig:
    """One exploration campaign: a workload, a strategy, and budgets."""

    app: str
    iterations: Optional[int] = None
    seed: int = 0
    strategy: str = "random-walk"
    episodes: int = 10
    budget_events: Optional[int] = None
    budget_wall_s: Optional[float] = None
    fault_spec: Optional[str] = None
    fault_seed: int = 0
    quantum_ns: Optional[int] = None
    defer_cap: int = DEFAULT_DEFER_CAP
    pct_depth: int = 3
    delay_bound: int = 4
    fork_at: Optional[int] = None
    oracles: Sequence[str] = DEFAULT_ORACLES
    workload_kwargs: dict = field(default_factory=dict)


@dataclass
class EpisodeResult:
    """What one explored schedule did."""

    episode: int
    policy_seed: int
    outcome: str  # "ok" | "violation" | "budget-exhausted"
    oracle: Optional[str] = None
    message: Optional[str] = None
    events: int = 0
    decisions: int = 0
    artifact: Optional[ExploreArtifact] = None
    artifact_path: Optional[str] = None


@dataclass
class ExploreReport:
    """The campaign summary ``repro-explore run`` prints."""

    config: ExploreConfig
    results: List[EpisodeResult]

    @property
    def violations(self) -> List[EpisodeResult]:
        return [r for r in self.results if r.outcome == "violation"]

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.results)


def episode_seed(base_seed: int, episode: int) -> int:
    """Derived per-episode policy seed (stable across hosts)."""
    digest = hashlib.sha256(
        f"repro-explore:{base_seed}:{episode}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# config plumbing
# ----------------------------------------------------------------------


def _workload_descriptor(
    config: ExploreConfig, workload: RecordedWorkload, iterations: int
) -> dict:
    return {
        "name": config.app,
        "kwargs": dict(config.workload_kwargs),
        "seed": config.seed,
        "iterations": iterations,
    }


def build_workload(
    workload_config: dict,
) -> Tuple[RecordedWorkload, int]:
    """Rebuild the (frozen) workload an artifact's config names or embeds."""
    if "recorded" in workload_config:
        workload = RecordedWorkload.from_dict(workload_config["recorded"])
        return workload, len(workload.iteration_phases)
    iterations = workload_config["iterations"]
    live = make_workload(
        workload_config["name"], **workload_config.get("kwargs", {})
    )
    return (
        materialize(live, workload_config["seed"], iterations),
        iterations,
    )


def artifact_config(
    config: ExploreConfig, workload: RecordedWorkload, iterations: int
) -> dict:
    """The replayable half of an artifact (see ``.repro`` format docs)."""
    return {
        "workload": _workload_descriptor(config, workload, iterations),
        "seed": config.seed,
        "options": asdict(DEFAULT_OPTIONS),
        "fault_spec": config.fault_spec,
        "fault_seed": config.fault_seed,
        "quantum_ns": config.quantum_ns,
        "defer_cap": config.defer_cap,
    }


def _faults_from(spec: Optional[str]) -> Optional[FaultProfile]:
    if spec is None:
        return None
    profile = FaultProfile.parse(spec)
    return profile if profile.is_active else None


def _classify(exc: ReproError) -> str:
    if isinstance(exc, OracleViolation):
        return exc.oracle
    if isinstance(exc, WatchdogError):
        return "liveness"
    if isinstance(exc, ProtocolError):
        return "coherence"
    return "simulation"


@dataclass
class _Execution:
    """Everything :func:`_execute` learns about one run."""

    machine: Machine
    outcome: str
    failure: Optional[dict] = None
    forensics: Optional[dict] = None

    @property
    def network(self) -> ExploringNetwork:
        return self.machine.network


def _execute(
    run_config: dict,
    workload: RecordedWorkload,
    iterations: int,
    policy: DeliveryPolicy,
    oracle_specs: Sequence[str],
    budget_events: Optional[int] = None,
    deadline: Optional[float] = None,
    fork: Optional[Tuple[ckpt.Checkpoint, int]] = None,
    stop_after: Optional[int] = None,
) -> _Execution:
    """Run one schedule under ``policy``; never raises on a violation.

    ``run_config`` is the artifact-shaped config dict (seed, options,
    faults, quantum, defer cap).  With ``fork=(checkpoint, at)``, the
    machine restores the FIFO prefix checkpoint instead of re-simulating
    iterations ``1..at``.  With ``stop_after=N``, the run pauses at the
    iteration-``N`` boundary without end-of-run folds -- the quiescent
    state :func:`_prefix_checkpoint` captures from.
    """
    faults = _faults_from(run_config.get("fault_spec"))
    fault_seed = run_config.get("fault_seed", 0)
    options = StacheOptions(**run_config["options"])
    oracles = parse_oracles(oracle_specs)

    def factory(engine, params, deliver):
        return ExploringNetwork(
            engine,
            params,
            deliver,
            policy=FifoPolicy() if fork is not None else policy,
            faults=faults,
            fault_seed=fault_seed,
            quantum_ns=run_config.get("quantum_ns"),
            defer_cap=run_config.get("defer_cap", DEFAULT_DEFER_CAP),
        )

    if fork is not None:
        machine, workload = ckpt.restore(fork[0], network_factory=factory)
        machine.network.set_policy(policy)
        first_iteration = fork[1] + 1
    else:
        machine = Machine(
            params=PAPER_PARAMS,
            options=options,
            seed=run_config["seed"],
            faults=faults,
            fault_seed=fault_seed,
            network_factory=factory,
        )
        first_iteration = 1

    for oracle in oracles:
        oracle.attach(machine)

    def on_delivery(msg):
        for oracle in oracles:
            oracle.after_delivery(msg)

    machine.deliver_hooks.append(on_delivery)

    try:
        if fork is None:
            machine.begin_workload(workload, iterations)
        last = stop_after if stop_after is not None else iterations
        for index in range(first_iteration, last + 1):
            machine.run_iteration(workload, index)
            for oracle in oracles:
                oracle.at_quiescence(index)
            if (
                budget_events is not None
                and machine.engine.events_processed >= budget_events
            ):
                return _Execution(machine, "budget-exhausted")
            if deadline is not None and time.monotonic() > deadline:
                return _Execution(machine, "budget-exhausted")
        if stop_after is not None:
            return _Execution(machine, "ok")
        collector = machine.finish_workload()
        for oracle in oracles:
            oracle.at_end(collector)
    except ReproError as exc:
        oracle_name = _classify(exc)
        failure = {
            "oracle": oracle_name,
            "error": type(exc).__name__,
            "message": str(exc),
            "sim_time_ns": machine.engine.now,
            "events_processed": machine.engine.events_processed,
            "at_decision": len(machine.network.decisions),
            "event_context": getattr(exc, "event_context", None),
        }
        forensics = build_failure_bundle(
            machine.engine,
            f"{oracle_name} violation: {exc}",
            machine=machine,
        )
        METRICS.inc("explore.violations")
        return _Execution(machine, "violation", failure, forensics)
    return _Execution(machine, "ok")


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------


def explore(
    config: ExploreConfig,
    out_dir: Optional[Union[str, Path]] = None,
) -> ExploreReport:
    """Run one exploration campaign; write ``.repro`` artifacts for any
    violations under ``out_dir`` (when given)."""
    live = make_workload(config.app, **config.workload_kwargs)
    iterations = (
        config.iterations
        if config.iterations is not None
        else live.default_iterations
    )
    workload = materialize(live, config.seed, iterations)
    run_config = artifact_config(config, workload, iterations)
    deadline = (
        time.monotonic() + config.budget_wall_s
        if config.budget_wall_s is not None
        else None
    )

    fork: Optional[Tuple[ckpt.Checkpoint, int]] = None
    if config.fork_at is not None:
        if not 1 <= config.fork_at < iterations:
            raise SimulationError(
                f"fork_at={config.fork_at} must be inside [1, "
                f"{iterations - 1}] for a {iterations}-iteration run"
            )
        fork = (_prefix_checkpoint(run_config, workload, config.fork_at,
                                   iterations), config.fork_at)

    results: List[EpisodeResult] = []
    for episode in range(config.episodes):
        if deadline is not None and time.monotonic() > deadline:
            break
        seed = episode_seed(config.seed, episode)
        policy = make_policy(
            config.strategy,
            seed=seed,
            pct_depth=config.pct_depth,
            delay_bound=config.delay_bound,
        )
        METRICS.inc("explore.episodes")
        execution = _execute(
            run_config,
            workload,
            iterations,
            policy,
            config.oracles,
            budget_events=config.budget_events,
            deadline=deadline,
            fork=fork,
        )
        result = EpisodeResult(
            episode=episode,
            policy_seed=seed,
            outcome=execution.outcome,
            events=execution.machine.engine.events_processed,
            decisions=len(execution.network.decisions),
        )
        if execution.outcome == "violation":
            result.oracle = execution.failure["oracle"]
            result.message = execution.failure["message"]
            result.artifact = ExploreArtifact(
                config=run_config,
                strategy=policy.describe(),
                decisions=list(execution.network.decisions),
                failure=execution.failure,
                forensics=execution.forensics,
                oracles=list(config.oracles),
            )
            if out_dir is not None:
                target = Path(out_dir)
                target.mkdir(parents=True, exist_ok=True)
                path = target / (
                    f"{config.app}-{config.strategy}-ep{episode:03d}.repro"
                )
                save_artifact(result.artifact, path)
                result.artifact_path = str(path)
        results.append(result)
    return ExploreReport(config=config, results=results)


def _prefix_checkpoint(
    run_config: dict,
    workload: RecordedWorkload,
    fork_at: int,
    iterations: int,
) -> ckpt.Checkpoint:
    """Run startup + iterations 1..fork_at once under FIFO and capture."""
    execution = _execute(
        run_config,
        workload,
        iterations,
        FifoPolicy(),
        oracle_specs=(),
        stop_after=fork_at,
    )
    if execution.outcome != "ok":
        raise SimulationError(
            "the FIFO prefix itself failed before the fork point: "
            f"{execution.failure}"
        )
    return ckpt.capture(
        execution.machine, workload, fork_at + 1, iterations
    )


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


@dataclass
class ReplayResult:
    execution: _Execution
    policy: ReplayPolicy
    artifact_oracle: Optional[str] = None

    @property
    def reproduced(self) -> bool:
        """Did the replay fail the same way the artifact recorded?"""
        recorded = self.artifact_oracle
        if recorded is None:
            return self.execution.outcome == "ok"
        return (
            self.execution.outcome == "violation"
            and self.execution.failure["oracle"] == recorded
        )


def replay_artifact(
    artifact: ExploreArtifact,
    extra_oracles: Sequence[str] = (),
) -> ReplayResult:
    """Re-execute an artifact's decision log; returns the replayed run.

    The re-recorded decision log (``result.execution.network.decisions``)
    is the *canonical* form of the input log -- clamped and truncated to
    the decisions actually consumed -- which is what the shrinker feeds
    forward between passes.
    """
    workload, iterations = build_workload(artifact.config["workload"])
    policy = ReplayPolicy(artifact.decisions)
    oracle_specs = list(artifact.oracles) + [
        spec for spec in extra_oracles if spec not in artifact.oracles
    ]
    execution = _execute(
        artifact.config,
        workload,
        iterations,
        policy,
        oracle_specs,
    )
    return ReplayResult(
        execution=execution,
        policy=policy,
        artifact_oracle=artifact.oracle,
    )
