"""``repro-explore``: adversarial schedule exploration from the shell.

Three subcommands:

* ``run`` -- explore one workload under a strategy, within event and
  wall-clock budgets; every invariant violation is written out as a
  replayable ``.repro`` artifact.  Exit status 0 means every episode
  was clean; 3 means violations were found (and saved); 1 is an error.
* ``replay`` -- re-execute an artifact's decision log and report
  whether it reproduces the recorded failure (exit 0) or not (exit 1).
* ``shrink`` -- minimize a failing artifact by delta debugging and
  write the reduced artifact next to (or over) the input.

Examples::

    repro-explore run dsmc --quick --strategy random-walk \\
        --episodes 20 --budget-events 50000 --out failures/
    repro-explore replay failures/dsmc-random-walk-ep003.repro
    repro-explore shrink failures/dsmc-random-walk-ep003.repro \\
        --out minimal.repro
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from ..workloads.registry import BENCHMARK_NAMES
from .artifact import load_artifact, save_artifact
from .network import DEFAULT_DEFER_CAP
from .oracles import DEFAULT_ORACLES
from .runner import ExploreConfig, explore, replay_artifact
from .shrink import shrink
from .strategies import STRATEGIES

#: Exit status for "the exploration found (and saved) violations" --
#: distinct from 1 so scripts can tell "found a bug" from "broke".
EXIT_VIOLATIONS = 3

_QUICK_KWARGS = {
    "appbt": {"face_blocks": 2, "false_share_blocks": 1},
    "barnes": {"n_objects": 48},
    "dsmc": {
        "buffers_per_proc": 1,
        "rare_blocks_per_proc": 6,
        "contended_buffers": 2,
    },
    "moldyn": {"force_blocks": 16, "coord_blocks": 16},
    "unstructured": {"mesh_blocks": 24},
}

_QUICK_ITERATIONS = 3


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = dict(_QUICK_KWARGS[args.workload]) if args.quick else {}
    iterations = args.iterations
    if iterations is None and args.quick:
        iterations = _QUICK_ITERATIONS
    config = ExploreConfig(
        app=args.workload,
        iterations=iterations,
        seed=args.seed,
        strategy=args.strategy,
        episodes=args.episodes,
        budget_events=args.budget_events,
        budget_wall_s=args.budget_wall,
        fault_spec=args.fault_profile,
        fault_seed=args.fault_seed,
        quantum_ns=args.quantum,
        defer_cap=args.defer_cap,
        pct_depth=args.pct_depth,
        delay_bound=args.delay_bound,
        fork_at=args.fork_at,
        oracles=tuple(args.oracle) if args.oracle else DEFAULT_ORACLES,
        workload_kwargs=kwargs,
    )
    report = explore(config, out_dir=args.out)
    for result in report.results:
        line = (
            f"episode {result.episode:3d}  seed {result.policy_seed:>20d}  "
            f"{result.outcome:<16s} events={result.events:<8d} "
            f"decisions={result.decisions}"
        )
        if result.oracle:
            line += f"  oracle={result.oracle}"
        print(line)
        if result.message:
            print(f"             {result.message}")
        if result.artifact_path:
            print(f"             saved {result.artifact_path}")
    violations = report.violations
    print(
        f"{len(report.results)} episode(s), {len(violations)} "
        f"violation(s), {report.total_events} events simulated"
    )
    return EXIT_VIOLATIONS if violations else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    result = replay_artifact(
        artifact, extra_oracles=tuple(args.oracle or ())
    )
    execution = result.execution
    print(
        f"replayed {result.policy.consumed}/{len(artifact.decisions)} "
        f"decisions: {execution.outcome}"
    )
    if execution.failure is not None:
        print(
            f"  oracle={execution.failure['oracle']}  "
            f"t={execution.failure['sim_time_ns']}ns  "
            f"decision {execution.failure['at_decision']}"
        )
        print(f"  {execution.failure['message']}")
    if artifact.oracle is not None:
        expected = artifact.oracle
        print(
            f"recorded failure: oracle={expected} -- "
            + ("reproduced" if result.reproduced else "NOT reproduced")
        )
    return 0 if result.reproduced else 1


def _cmd_shrink(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    result = shrink(
        artifact,
        max_checks=args.max_checks,
        reduce_workload=not args.keep_workload,
        progress=(None if args.quiet else lambda msg: print(f"  {msg}")),
    )
    out = args.out if args.out is not None else args.artifact
    save_artifact(result.artifact, out)
    print(
        f"decisions: {result.original_decisions} -> "
        f"{result.final_decisions} "
        f"({result.decision_ratio:.1%} of original), "
        f"accesses: {result.original_accesses} -> "
        f"{result.final_accesses}, {result.checks} replays"
    )
    print(f"minimized artifact written to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description=(
            "deterministic schedule exploration for the Stache/Cosmos "
            "simulator: adversarial delivery orders, invariant oracles, "
            "replayable failure artifacts, automatic shrinking"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="explore schedules, saving violations as artifacts"
    )
    run.add_argument("workload", choices=BENCHMARK_NAMES)
    run.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down workload (same shapes, smaller footprint)",
    )
    run.add_argument("--iterations", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--strategy", choices=STRATEGIES, default="random-walk"
    )
    run.add_argument(
        "--episodes",
        type=int,
        default=10,
        help="independent schedules to explore (default 10)",
    )
    run.add_argument(
        "--budget-events",
        type=int,
        default=None,
        metavar="N",
        help="stop an episode once it has processed N engine events",
    )
    run.add_argument(
        "--budget-wall",
        type=float,
        default=None,
        metavar="S",
        help="stop the whole run after S wall-clock seconds",
    )
    run.add_argument(
        "--oracle",
        action="append",
        metavar="SPEC",
        help=(
            "invariant oracle to arm (repeatable); default: "
            + ", ".join(DEFAULT_ORACLES)
            + "; also: overtake[=0xBLOCK], liveness=N, mc-spot[=N]"
        ),
    )
    run.add_argument("--fault-profile", default=None, metavar="SPEC")
    run.add_argument("--fault-seed", type=int, default=0)
    run.add_argument(
        "--quantum",
        type=int,
        default=None,
        metavar="NS",
        help="delivery-slot width (default: one network hop)",
    )
    run.add_argument(
        "--defer-cap",
        type=int,
        default=DEFAULT_DEFER_CAP,
        help="max deferrals per message before forced delivery",
    )
    run.add_argument(
        "--pct-depth",
        type=int,
        default=3,
        help="pct strategy: number of priority change points",
    )
    run.add_argument(
        "--delay-bound",
        type=int,
        default=4,
        help="delay-bounded strategy: max deferrals it may use",
    )
    run.add_argument(
        "--fork-at",
        type=int,
        default=None,
        metavar="ITER",
        help=(
            "run iterations 1..ITER once under FIFO, checkpoint, and "
            "explore only the suffix of each episode from there"
        ),
    )
    run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for .repro artifacts of any violations",
    )
    run.set_defaults(func=_cmd_run)

    rep = sub.add_parser(
        "replay", help="re-execute a .repro artifact's decision log"
    )
    rep.add_argument("artifact")
    rep.add_argument(
        "--oracle",
        action="append",
        metavar="SPEC",
        help="additional oracle to arm during the replay (repeatable)",
    )
    rep.set_defaults(func=_cmd_replay)

    shr = sub.add_parser(
        "shrink", help="minimize a failing artifact by delta debugging"
    )
    shr.add_argument("artifact")
    shr.add_argument(
        "--out",
        default=None,
        help="where to write the minimized artifact (default: in place)",
    )
    shr.add_argument(
        "--max-checks",
        type=int,
        default=3000,
        help="replay budget for the whole shrink (default 3000)",
    )
    shr.add_argument(
        "--keep-workload",
        action="store_true",
        help="only shrink the decision log, not the access streams",
    )
    shr.add_argument("--quiet", action="store_true")
    shr.set_defaults(func=_cmd_shrink)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
