"""Delivery-order policies for the schedule explorer.

The :class:`~repro.explore.network.ExploringNetwork` pools concurrently
in-flight messages and, at each drain, asks its policy which pooled
message to deliver next.  A policy returns either an index into the
enabled set (deliver that entry now) or :data:`DEFER_REST` (push the
whole pool to the next delivery quantum).  Every returned decision is
appended to the network's decision log, so any run -- random walk, PCT,
delay-bounded -- replays bit-for-bit from its log via
:class:`ReplayPolicy`.

Strategies:

* ``fifo`` -- always index 0 (admission order); the identity schedule.
* ``random-walk`` -- seeded uniform choice among enabled deliveries,
  with an occasional whole-pool deferral.
* ``pct`` -- a message-level adaptation of probabilistic concurrency
  testing: each message draws a random priority at admission, the
  highest-priority enabled message is delivered, and at ``d``
  pre-drawn change points every pooled priority is re-drawn (a priority
  inversion).
* ``delay-bounded`` -- admission order, but with seeded adversarial
  deferrals; the network's per-message defer cap bounds each message to
  at most ``k`` deferrals, which is exactly the delay-bounded-systematic
  guarantee.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..protocol.messages import Message

#: Policy decision: defer every (non-ripe) pooled message to the next
#: delivery quantum instead of delivering one now.
DEFER_REST = -1

#: An enabled entry as presented to ``decide``: (admission sequence
#: number, the message, how many times it has already been deferred).
Enabled = Tuple[int, Message, int]


class DeliveryPolicy:
    """Base policy: FIFO (admission order), records snapshots as empty."""

    name = "fifo"
    #: Per-message deferral cap this policy wants; ``None`` = use the
    #: network's default.
    defer_cap: Optional[int] = None

    def on_admit(self, seq: int, msg: Message) -> None:
        """A message entered the pool (PCT assigns priorities here)."""

    def decide(self, enabled: Sequence[Enabled]) -> int:
        """Pick the next delivery: an index into ``enabled``, or
        :data:`DEFER_REST`."""
        return 0

    def describe(self) -> dict:
        """Name + parameters, for artifacts and reports."""
        return {"name": self.name}

    # Checkpoint-fork support -------------------------------------------

    def snapshot_state(self) -> dict:
        return {}

    def restore_state(self, state: dict) -> None:
        pass


class FifoPolicy(DeliveryPolicy):
    """The identity schedule (used for prefixes and as a baseline)."""


class RandomWalkPolicy(DeliveryPolicy):
    """Seeded uniform choice among enabled deliveries."""

    name = "random-walk"

    def __init__(self, seed: int = 0, defer_prob: float = 0.2) -> None:
        if not 0.0 <= defer_prob < 1.0:
            raise ConfigError(
                f"random-walk defer_prob {defer_prob} must be in [0, 1)"
            )
        self.seed = seed
        self.defer_prob = defer_prob
        self._rng = random.Random(seed)

    def decide(self, enabled: Sequence[Enabled]) -> int:
        if len(enabled) > 1 and self._rng.random() < self.defer_prob:
            return DEFER_REST
        return self._rng.randrange(len(enabled))

    def describe(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "defer_prob": self.defer_prob,
        }

    def snapshot_state(self) -> dict:
        return {"rng": self._rng.getstate()}

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng"])


class PCTPolicy(DeliveryPolicy):
    """Message-level probabilistic concurrency testing.

    Classic PCT schedules threads by random priority with ``d`` change
    points; messages are one-shot, so the adaptation re-draws every
    *pooled* priority at each change point (drawn uniformly over the
    first ``horizon`` deliveries).  Depth ``d`` bounds how many
    priority inversions a single run can express, which is what gives
    PCT its bug-depth guarantee.
    """

    name = "pct"

    def __init__(
        self, seed: int = 0, change_points: int = 3, horizon: int = 50_000
    ) -> None:
        if change_points < 0:
            raise ConfigError("pct change_points must be >= 0")
        if horizon < 2:
            raise ConfigError("pct horizon must be >= 2")
        self.seed = seed
        self.change_points = change_points
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._priorities: dict = {}
        self._delivered = 0
        self._changes_at: List[int] = sorted(
            self._rng.sample(
                range(1, horizon), min(change_points, horizon - 1)
            )
        )

    def on_admit(self, seq: int, msg: Message) -> None:
        self._priorities[seq] = self._rng.random()

    def decide(self, enabled: Sequence[Enabled]) -> int:
        self._delivered += 1
        if self._changes_at and self._delivered >= self._changes_at[0]:
            self._changes_at.pop(0)
            for seq, _msg, _defers in enabled:
                self._priorities[seq] = self._rng.random()
        best = 0
        best_priority = -1.0
        for index, (seq, _msg, _defers) in enumerate(enabled):
            priority = self._priorities.get(seq, 0.0)
            if priority > best_priority:
                best_priority = priority
                best = index
        return best

    def describe(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "change_points": self.change_points,
            "horizon": self.horizon,
        }

    def snapshot_state(self) -> dict:
        return {
            "rng": self._rng.getstate(),
            "priorities": dict(self._priorities),
            "delivered": self._delivered,
            "changes_at": list(self._changes_at),
        }

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng"])
        self._priorities = dict(state["priorities"])
        self._delivered = state["delivered"]
        self._changes_at = list(state["changes_at"])


class DelayBoundedPolicy(DeliveryPolicy):
    """At most ``k`` adversarial deferrals per message.

    Delivers in admission order but, with seeded probability, defers the
    whole pool a quantum.  The bound is structural, not statistical: the
    policy sets the network's per-message defer cap to ``k``, and the
    network force-delivers any message that has reached it.
    """

    name = "delay-bounded"

    def __init__(
        self, seed: int = 0, bound: int = 4, defer_prob: float = 0.3
    ) -> None:
        if bound < 1:
            raise ConfigError("delay bound must be >= 1")
        if not 0.0 <= defer_prob < 1.0:
            raise ConfigError(
                f"delay-bounded defer_prob {defer_prob} must be in [0, 1)"
            )
        self.seed = seed
        self.bound = bound
        self.defer_cap = bound
        self.defer_prob = defer_prob
        self._rng = random.Random(seed)

    def decide(self, enabled: Sequence[Enabled]) -> int:
        deferrable = any(defers < self.bound for _s, _m, defers in enabled)
        if deferrable and self._rng.random() < self.defer_prob:
            return DEFER_REST
        return 0

    def describe(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "bound": self.bound,
            "defer_prob": self.defer_prob,
        }

    def snapshot_state(self) -> dict:
        return {"rng": self._rng.getstate()}

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng"])


class ReplayPolicy(DeliveryPolicy):
    """Replays a recorded decision log, one decision per ``decide``.

    Decisions are consumed in order; indices out of range for the
    current pool are clamped (a shrinker-mutated log must stay
    executable), and an exhausted log falls back to FIFO.  Because the
    pool's evolution is a pure function of admissions and decisions,
    replaying an unmodified log reproduces the original run
    byte-for-byte.
    """

    name = "replay"

    def __init__(self, decisions: Sequence[int]) -> None:
        self.decisions = list(decisions)
        self._cursor = 0

    @property
    def consumed(self) -> int:
        return self._cursor

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.decisions)

    def decide(self, enabled: Sequence[Enabled]) -> int:
        if self._cursor >= len(self.decisions):
            return 0
        decision = self.decisions[self._cursor]
        self._cursor += 1
        if decision == DEFER_REST:
            return DEFER_REST
        return min(decision, len(enabled) - 1)

    def describe(self) -> dict:
        return {"name": self.name, "decisions": len(self.decisions)}

    def snapshot_state(self) -> dict:
        return {"cursor": self._cursor}

    def restore_state(self, state: dict) -> None:
        self._cursor = state["cursor"]


#: CLI strategy names -> constructor.
STRATEGIES = ("random-walk", "pct", "delay-bounded", "fifo")


def make_policy(
    strategy: str,
    seed: int = 0,
    pct_depth: int = 3,
    pct_horizon: int = 50_000,
    delay_bound: int = 4,
    defer_prob: float = 0.2,
) -> DeliveryPolicy:
    """Build the policy for one exploration episode."""
    if strategy == "fifo":
        return FifoPolicy()
    if strategy == "random-walk":
        return RandomWalkPolicy(seed=seed, defer_prob=defer_prob)
    if strategy == "pct":
        return PCTPolicy(
            seed=seed, change_points=pct_depth, horizon=pct_horizon
        )
    if strategy == "delay-bounded":
        return DelayBoundedPolicy(seed=seed, bound=delay_bound)
    raise ConfigError(
        f"unknown exploration strategy {strategy!r}; "
        f"expected one of {', '.join(STRATEGIES)}"
    )
