"""Automatic failure shrinking: delta debugging over schedules and streams.

Given a ``.repro`` artifact whose decision log reproduces an invariant
violation, :func:`shrink` searches for a *smaller* artifact that fails
the same way (same oracle), using classic ddmin passes with replay as
the test function:

1. **Trailing-FIFO strip** -- a :class:`~repro.explore.strategies
   .ReplayPolicy` falls back to FIFO (decision 0) once its log is
   exhausted, so any all-zero suffix of the log is dead weight and is
   dropped first.
2. **Segment removal** -- ddmin over the decision log: remove chunks,
   keep any candidate that still reproduces.  Removing decisions shifts
   the meaning of everything after them; that is fine, the test is
   "does the same oracle still fire", not "is the run identical".
3. **FIFO normalization** -- ddmin over the *non-zero* decisions,
   rewriting them to 0.  A minimal log then reads as "FIFO everywhere
   except these N choices", which is the human-readable form of a
   schedule bug.
4. **Access-stream reduction** (optional) -- the workload is embedded as
   a frozen :class:`~repro.workloads.recorded.RecordedWorkload` and
   ddmin runs over whole iterations, then over chunks of each
   processor's access streams.

After every accepted candidate the artifact's log is replaced by the
*canonical* re-recorded log from the accepting replay (clamped,
truncated at the failure, trailing FIFO stripped), so the final artifact
always replays byte-identically.

Every pass is budgeted by ``max_checks`` total replays; shrinking a
quick-scale run takes well under a hundred.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigError
from ..workloads.recorded import RecordedWorkload
from .artifact import ExploreArtifact
from .runner import build_workload, replay_artifact


@dataclass
class ShrinkResult:
    """The minimized artifact plus before/after accounting."""

    artifact: ExploreArtifact
    checks: int
    original_decisions: int
    final_decisions: int
    original_accesses: int
    final_accesses: int

    @property
    def decision_ratio(self) -> float:
        if self.original_decisions == 0:
            return 1.0
        return self.final_decisions / self.original_decisions


#: How many near-FIFO prefixes the fresh-trigger pass tries (after the
#: removal passes converge) before giving up.
_TRIGGER_HORIZON = 80
#: The cheap up-front scan's horizon, kept short because its checks run
#: against the not-yet-minimized (expensive) workload.
_TRIGGER_EARLY = 24


def _strip_trailing_zeros(decisions: Sequence[int]) -> List[int]:
    trimmed = list(decisions)
    while trimmed and trimmed[-1] == 0:
        trimmed.pop()
    return trimmed


def ddmin(
    items: List,
    test: Callable[[List], bool],
) -> List:
    """Classic delta debugging: a 1-minimal sublist still passing ``test``.

    ``test`` receives a candidate sublist and returns True when the
    failure still reproduces.  The input is assumed to pass already.
    """
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and test(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the same offset: the next chunk slid in.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(granularity * 2, len(items))
    return items


class _Budget:
    def __init__(self, max_checks: int) -> None:
        self.max_checks = max_checks
        #: Current ceiling; the removal passes run under a lowered cap
        #: so the trigger search always keeps a slice of the budget.
        self.cap = max_checks
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.cap:
            return False
        self.used += 1
        return True


def shrink(
    artifact: ExploreArtifact,
    max_checks: int = 3000,
    reduce_workload: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Minimize a failing artifact; returns the smallest reproducer found.

    The input artifact must record a failure; :class:`ConfigError`
    otherwise.  The result's artifact carries a ``shrink`` block with the
    before/after numbers and replays byte-identically.
    """
    if artifact.failure is None:
        raise ConfigError(
            "cannot shrink an artifact that records no failure; "
            "run `repro-explore run` until a violation is found first"
        )
    say = progress if progress is not None else (lambda _msg: None)
    budget = _Budget(max_checks)

    workload, _ = build_workload(artifact.config["workload"])
    original_accesses = workload.total_accesses()
    original_decisions = len(artifact.decisions)

    state = {
        "config": copy.deepcopy(artifact.config),
        "decisions": list(artifact.decisions),
        "failure": artifact.failure,
        "forensics": artifact.forensics,
    }

    def try_candidate(
        decisions: Sequence[int],
        workload_dict: Optional[dict] = None,
    ) -> bool:
        """Replay a candidate; on reproduction, adopt its canonical form."""
        if not budget.take():
            return False
        config = state["config"]
        if workload_dict is not None:
            config = copy.deepcopy(config)
            config["workload"] = {"recorded": workload_dict}
        candidate = ExploreArtifact(
            config=config,
            strategy=artifact.strategy,
            decisions=list(decisions),
            failure=state["failure"],
            oracles=list(artifact.oracles),
        )
        result = replay_artifact(candidate)
        if not result.reproduced:
            return False
        state["config"] = config
        state["decisions"] = _strip_trailing_zeros(
            result.execution.network.decisions
        )
        state["failure"] = result.execution.failure
        state["forensics"] = result.execution.forensics
        return True

    # Pass 1: drop the dead all-FIFO suffix (and re-canonicalize).
    if not try_candidate(_strip_trailing_zeros(state["decisions"])):
        raise ConfigError(
            "artifact does not reproduce its own failure; refusing to "
            "shrink (stale decision log or changed configuration?)"
        )
    say(f"canonicalized: {original_decisions} -> "
        f"{len(state['decisions'])} decisions")

    # Pass 2: drop whole iterations early -- iterations after the
    # failure point go for free, and every surviving check gets cheaper.
    if reduce_workload:
        _shrink_iterations(state, try_candidate, say)

    # A short-horizon trigger scan up front: oracles that fire under
    # almost any divergence (an unfiltered overtake, say) collapse to a
    # handful of decisions right here, making every later pass trivial.
    _trigger_search(state, try_candidate, say, horizon=_TRIGGER_EARLY)

    # Passes 3-5, to a fixpoint: ddmin the decision log (a denser
    # message stream compresses best *before* accesses are removed,
    # because contention gives the oracle earlier chances to fire), then
    # normalize non-zero decisions back to FIFO, then thin the access
    # streams -- which shortens the canonical log again, so iterate
    # while the log keeps shrinking.  Once that converges, the
    # fresh-trigger search scans for an *earlier* firing of the same
    # oracle -- short logs of the shape ``k FIFO deliveries, m defers
    # (pooling m+1 quanta of arrivals together), one divergent choice``
    # -- which removal-based ddmin cannot reach; a hit re-opens the
    # whole fixpoint.
    # The removal passes run under a lowered cap so the trigger search
    # always gets a turn.
    reserve = min(400, max_checks // 5)
    converged = None
    while converged != len(state["decisions"]) and budget.used < max_checks:
        converged = len(state["decisions"])
        budget.cap = max_checks - reserve
        previous = None
        while (
            previous != len(state["decisions"])
            and budget.used < budget.cap
        ):
            previous = len(state["decisions"])
            ddmin(list(state["decisions"]), try_candidate)
            say(f"segment removal: {len(state['decisions'])} decisions "
                f"({budget.used} checks)")
            _normalize_to_fifo(state, try_candidate, say, budget)
            if reduce_workload:
                # A shorter log may now fail in an earlier iteration, so
                # whole-iteration removal gets a (cheap) chance too.
                _shrink_iterations(state, try_candidate, say)
                _shrink_accesses(state, try_candidate, say)
        budget.cap = max_checks
        _trigger_search(state, try_candidate, say)

    final_workload, _ = build_workload(state["config"]["workload"])
    shrunk = ExploreArtifact(
        config=state["config"],
        strategy=artifact.strategy,
        decisions=list(state["decisions"]),
        failure=state["failure"],
        forensics=state["forensics"],
        oracles=list(artifact.oracles),
        shrink={
            "original_decisions": original_decisions,
            "final_decisions": len(state["decisions"]),
            "original_accesses": original_accesses,
            "final_accesses": final_workload.total_accesses(),
            "checks": budget.used,
        },
    )
    return ShrinkResult(
        artifact=shrunk,
        checks=budget.used,
        original_decisions=original_decisions,
        final_decisions=len(state["decisions"]),
        original_accesses=original_accesses,
        final_accesses=final_workload.total_accesses(),
    )


def _trigger_search(
    state, try_candidate, say, horizon=_TRIGGER_HORIZON
) -> None:
    from .strategies import DEFER_REST

    horizon = min(len(state["decisions"]), horizon)
    for k in range(horizon):
        for defers in range(4):
            tail = [DEFER_REST] * defers + [1]
            if len(state["decisions"]) <= k + len(tail):
                return
            if try_candidate([0] * k + tail):
                say(f"fresh trigger: {len(state['decisions'])} "
                    "decisions")
                return


def _normalize_to_fifo(state, try_candidate, say, budget) -> None:
    """ddmin over the set of positions kept non-zero; the rest become 0."""
    nonzero = [
        index for index, value in enumerate(state["decisions"]) if value
    ]
    if not nonzero:
        return
    base = list(state["decisions"])

    def keep_only(positions: List[int]) -> bool:
        kept = set(positions)
        candidate = [
            value if index in kept else 0
            for index, value in enumerate(base)
        ]
        return try_candidate(candidate)

    ddmin(nonzero, keep_only)
    say(f"fifo normalization: "
        f"{sum(1 for d in state['decisions'] if d)} non-FIFO "
        f"decisions remain ({budget.used} checks)")


def _shrink_iterations(state, try_candidate, say) -> None:
    """ddmin over whole iterations of the (embedded) workload."""
    workload, _ = build_workload(state["config"]["workload"])

    def with_iterations(iteration_phases: List) -> bool:
        candidate = RecordedWorkload(
            n_procs=workload.n_procs,
            startup_phases=workload.startup_phases,
            iteration_phases=iteration_phases,
            source=workload.source,
        )
        return try_candidate(state["decisions"], candidate.to_dict())

    kept = ddmin(list(workload.iteration_phases), with_iterations)
    candidate = RecordedWorkload(
        n_procs=workload.n_procs,
        startup_phases=workload.startup_phases,
        iteration_phases=kept,
        source=workload.source,
    )
    # Re-anchor the embedded workload to the iteration-minimal form
    # (ddmin's last *accepted* candidate may not be its return value).
    try_candidate(state["decisions"], candidate.to_dict())
    say(f"iteration removal: {len(kept)} iterations remain")


def _shrink_accesses(state, try_candidate, say) -> None:
    """ddmin each processor's access stream, one stream at a time; the
    phase lists are mutated in place and rolled back on rejection."""
    workload, _ = build_workload(state["config"]["workload"])
    for phases in [workload.startup_phases, *workload.iteration_phases]:
        for phase in phases:
            for stream_index in range(len(phase)):
                _shrink_stream(
                    phase, stream_index, workload, state, try_candidate
                )
    say(f"access removal: {workload.total_accesses()} accesses remain")


def _shrink_stream(phase, stream_index, workload, state, try_candidate):
    accepted = phase[stream_index]
    if len(accepted) < 2:
        return

    def test(accesses: List) -> bool:
        nonlocal accepted
        phase[stream_index] = accesses
        if try_candidate(state["decisions"], workload.to_dict()):
            accepted = accesses
            return True
        phase[stream_index] = accepted
        return False

    ddmin(list(accepted), test)
    phase[stream_index] = accepted
