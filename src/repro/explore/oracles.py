"""Invariant oracles evaluated during schedule exploration.

An oracle watches an exploring run and raises
:class:`~repro.errors.OracleViolation` the moment an invariant breaks.
Three hook points, wired by the runner:

* ``after_delivery(msg)`` -- via the machine's ``deliver_hooks``, after
  the receiving controller has processed the message;
* ``at_quiescence(iteration)`` -- at each iteration boundary, when the
  event queue has drained;
* ``at_end(collector)`` -- once, after the workload completes.

The default battery:

* ``coherence`` -- the machine-level checker
  (:meth:`~repro.sim.machine.Machine._check_coherence`, which walks
  ``protocol/state.py::check_invariants`` plus cross-node exclusivity).
  Under exploration the machine already runs it after every delivery
  (recovery is armed), so this oracle's job is classification: it
  re-raises the machine's :class:`~repro.errors.ProtocolError` as a
  named violation if one slips through on a path the machine does not
  guard.
* ``quiescence`` -- every iteration boundary must find no outstanding
  miss, no active or queued directory transaction, and an empty pool.
* ``liveness`` -- every outstanding request must complete within a
  delivery budget: a request observed outstanding while more than
  ``budget`` deliveries happen machine-wide is declared livelocked
  (retried requests eventually completing is exactly what this bounds).
* ``predictor-balance`` -- Cosmos accuracy may depend on the schedule,
  but its accounting must not: for every predictor module,
  ``predictions + no_prediction == refs`` after replaying the explored
  trace, and the bank's total refs equals the trace length.  Fault-free
  runs only (dropped/duplicated messages change the trace itself).
* ``overtake`` (opt-in, ``overtake`` or ``overtake=0x<block>``) -- fires
  when a delivery overtakes an earlier-admitted message for the same
  block.  Overtaking is *legal* under exploration (that is the point),
  so this is an injected invariant used to seed shrinker regressions
  and to flag schedules that exercise reordering for a specific block.
* ``mc-spot`` (opt-in, ``mc-spot`` or ``mc-spot=N``) -- every ``N``
  deliveries (default 64), project the delivered block's coherence
  state through the model checker's abstraction
  (:func:`repro.mc.abstraction.spot_project`) and assert it is
  reachable in the exhaustively enumerated two-node model
  (:func:`repro.mc.explorer.reachable_space`).  Samples involving more
  than one remote node are skipped (the projection targets the 2-node
  model); fault-injected runs disarm the oracle (drops and duplicates
  take the live run outside the fault-free space).

Oracles are built from spec strings (:func:`parse_oracles`) so CLI
``run``/``replay``/``shrink`` can carry them in ``.repro`` artifacts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..core.predictor import CosmosPredictor
from ..errors import ConfigError, OracleViolation, ProtocolError
from ..protocol.messages import Message

#: Default machine-wide delivery budget for one outstanding request.
DEFAULT_LIVENESS_BUDGET = 20_000
#: How often (in deliveries) the liveness oracle polls outstanding sets.
_LIVENESS_POLL = 256


class Oracle:
    """Base oracle: attach once, then observe the run."""

    name = "oracle"

    def attach(self, machine) -> None:
        self.machine = machine

    def after_delivery(self, msg: Message) -> None:
        pass

    def at_quiescence(self, iteration: int) -> None:
        pass

    def at_end(self, collector) -> None:
        pass

    def spec(self) -> str:
        """The string :func:`parse_oracles` would rebuild this from."""
        return self.name


class CoherenceOracle(Oracle):
    """Classify coherence failures; re-check when the machine does not.

    With recovery armed (always true under exploration) the machine
    checks after every delivery and raises ``ProtocolError`` itself; the
    oracle then only normalizes the failure.  On a hypothetical
    unguarded machine it runs the check here.
    """

    name = "coherence"

    def after_delivery(self, msg: Message) -> None:
        if self.machine.recovery is not None:
            return  # the machine already checked this delivery
        try:
            self.machine._check_coherence(msg.block)
        except ProtocolError as exc:
            raise OracleViolation(self.name, str(exc)) from exc


class QuiescenceOracle(Oracle):
    """Iteration boundaries must be fully quiescent."""

    name = "quiescence"

    def at_quiescence(self, iteration: int) -> None:
        try:
            self.machine.assert_quiescent()
        except ProtocolError as exc:
            raise OracleViolation(
                self.name,
                f"iteration {iteration} boundary is not quiescent: {exc}",
            ) from exc
        if self.machine.engine.pending():
            raise OracleViolation(
                self.name,
                f"iteration {iteration} boundary reached with "
                f"{self.machine.engine.pending()} events still pending "
                f"({self.machine.engine.describe_pending()})",
            )


class LivenessOracle(Oracle):
    """Every outstanding request completes within a delivery budget."""

    name = "liveness"

    def __init__(self, budget: int = DEFAULT_LIVENESS_BUDGET) -> None:
        if budget < 1:
            raise ConfigError("liveness budget must be >= 1")
        self.budget = budget
        self._deliveries = 0
        #: (node, block) -> delivery count when first seen outstanding.
        self._first_seen: Dict[Tuple[int, int], int] = {}

    def after_delivery(self, msg: Message) -> None:
        self._deliveries += 1
        if self._deliveries % _LIVENESS_POLL:
            return
        now = self._deliveries
        current = set()
        for node in self.machine.nodes:
            for block in node.cache.outstanding_blocks():
                key = (node.node_id, block)
                current.add(key)
                first = self._first_seen.setdefault(key, now)
                if now - first > self.budget:
                    raise OracleViolation(
                        self.name,
                        f"request by P{key[0]} for block 0x{key[1]:x} "
                        f"still outstanding after {now - first} "
                        f"machine-wide deliveries (budget {self.budget})",
                    )
        # Completed requests leave the watch list.
        for key in list(self._first_seen):
            if key not in current:
                del self._first_seen[key]

    def at_quiescence(self, iteration: int) -> None:
        self._first_seen.clear()

    def spec(self) -> str:
        if self.budget == DEFAULT_LIVENESS_BUDGET:
            return self.name
        return f"{self.name}={self.budget}"


class PredictorBalanceOracle(Oracle):
    """Cosmos accounting must balance regardless of schedule.

    Runs the explored trace through a fresh predictor bank and asserts,
    per module, ``predictions + no_prediction == refs`` and, bank-wide,
    that total refs equal the trace length.  Only meaningful fault-free:
    drops and duplications change the observed trace itself.
    """

    name = "predictor-balance"

    def at_end(self, collector) -> None:
        machine = getattr(self, "machine", None)
        if machine is not None and machine.faults is not None:
            return
        events = collector.events
        if not events:
            return
        created: List[CosmosPredictor] = []
        config = CosmosConfig()

        def factory() -> CosmosPredictor:
            predictor = CosmosPredictor(config)
            created.append(predictor)
            return predictor

        evaluate_trace(
            events, config, predictor_factory=factory, track_arcs=False
        )
        total_refs = 0
        for index, predictor in enumerate(created):
            refs = predictor.predictions + predictor.no_prediction
            total_refs += refs
            if predictor.hits > predictor.predictions:
                raise OracleViolation(
                    self.name,
                    f"predictor {index}: {predictor.hits} hits out of "
                    f"{predictor.predictions} predictions",
                )
        if total_refs != len(events):
            raise OracleViolation(
                self.name,
                f"predictor bank consumed {total_refs} references for a "
                f"{len(events)}-event trace: observe() accounting does "
                "not balance",
            )


class OvertakeOracle(Oracle):
    """Injected invariant: no same-block overtaking (opt-in).

    Registers on the exploring network's delivery observers and fires
    when a delivered message leaves an *earlier-admitted* message for
    the same block in the pool.  With ``block`` set, only that block is
    watched.
    """

    name = "overtake"

    def __init__(self, block: Optional[int] = None) -> None:
        self.block = block

    def attach(self, machine) -> None:
        super().attach(machine)
        network = machine.network
        observers = getattr(network, "delivery_observers", None)
        if observers is None:
            raise ConfigError(
                "the overtake oracle needs an ExploringNetwork "
                f"(got {type(network).__name__})"
            )
        observers.append(self._on_delivery)

    def _on_delivery(self, seq: int, msg: Message, remaining) -> None:
        if self.block is not None and msg.block != self.block:
            return
        # The pool is admission-ordered; only entries admitted *before*
        # the delivered message count as overtaken.
        for pooled_seq, pooled, _defers in remaining:
            if pooled_seq < seq and pooled.block == msg.block:
                raise OracleViolation(
                    self.name,
                    f"delivery of {msg.mtype.name} "
                    f"P{msg.src}->P{msg.dst} for block 0x{msg.block:x} "
                    f"overtook an earlier-admitted {pooled.mtype.name} "
                    f"P{pooled.src}->P{pooled.dst} for the same block",
                )

    def spec(self) -> str:
        if self.block is None:
            return self.name
        return f"{self.name}=0x{self.block:x}"


#: Default delivery sampling period for the mc-spot oracle.
DEFAULT_MC_SPOT_EVERY = 64


class McSpotOracle(Oracle):
    """Spot-check live coherence states against the exhaustive model.

    Every ``every`` deliveries, the delivered block's live state (cache
    states, outstanding attempts, directory entry, in-flight messages)
    is projected onto the two-node model-checker state space; a
    projection outside the enumerated reachable set means the simulator
    wandered somewhere the model says is impossible -- either a protocol
    bug or a model/abstraction gap, both worth a loud stop.

    The model is chosen to match the machine's protocol options.
    Projections involving more than one remote node are skipped and
    counted (the model is two-node); fault-injected machines disarm the
    oracle entirely.
    """

    name = "mc-spot"

    def __init__(self, every: int = DEFAULT_MC_SPOT_EVERY) -> None:
        if every < 1:
            raise ConfigError("mc-spot sampling period must be >= 1")
        self.every = every
        self.samples = 0
        self.skipped = 0
        self._deliveries = 0
        self._model = None
        self._states = None

    def attach(self, machine) -> None:
        super().attach(machine)
        if machine.faults is not None:
            return  # disarmed: faulty runs leave the fault-free space
        # Deferred import: repro.mc.crossval imports repro.explore.
        from ..mc.explorer import reachable_space
        from ..mc.model import MCConfig, Model

        config = MCConfig(
            n_nodes=2,
            homes=(0,),
            half_migratory=machine.options.half_migratory,
            forwarding=machine.options.forwarding,
        )
        self._model = Model(config)
        self._states = reachable_space(config).states

    def after_delivery(self, msg: Message) -> None:
        if self._model is None:
            return
        self._deliveries += 1
        if self._deliveries % self.every:
            return
        from ..mc.abstraction import spot_project

        state = spot_project(self.machine, msg.block, self._model)
        if state is None:
            self.skipped += 1
            return
        self.samples += 1
        if state not in self._states:
            raise OracleViolation(
                self.name,
                f"block 0x{msg.block:x} projects to an abstract state "
                f"outside the model's {len(self._states)}-state "
                f"reachable space: {state!r}",
            )

    def spec(self) -> str:
        if self.every == DEFAULT_MC_SPOT_EVERY:
            return self.name
        return f"{self.name}={self.every}"


#: The battery every exploration run gets unless overridden.
DEFAULT_ORACLES = (
    "coherence",
    "quiescence",
    "liveness",
    "predictor-balance",
)


def parse_oracles(specs: Iterable[str]) -> List[Oracle]:
    """Build oracles from spec strings (``name`` or ``name=value``)."""
    oracles: List[Oracle] = []
    for raw in specs:
        spec = raw.strip().lower()
        name, _, value = spec.partition("=")
        if name == "coherence":
            oracles.append(CoherenceOracle())
        elif name == "quiescence":
            oracles.append(QuiescenceOracle())
        elif name == "liveness":
            budget = int(value) if value else DEFAULT_LIVENESS_BUDGET
            oracles.append(LivenessOracle(budget=budget))
        elif name == "predictor-balance":
            oracles.append(PredictorBalanceOracle())
        elif name == "overtake":
            block = int(value, 0) if value else None
            oracles.append(OvertakeOracle(block=block))
        elif name == "mc-spot":
            every = int(value) if value else DEFAULT_MC_SPOT_EVERY
            oracles.append(McSpotOracle(every=every))
        else:
            raise ConfigError(
                f"unknown oracle {raw!r}; expected one of "
                "coherence, quiescence, liveness[=N], "
                "predictor-balance, overtake[=0xBLOCK], mc-spot[=N]"
            )
    return oracles
