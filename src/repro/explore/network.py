"""The scheduler seam: an interconnect whose delivery order is a policy.

:class:`ExploringNetwork` is a drop-in network (same constructor head as
:class:`~repro.sim.network.Network`, installed through the machine's
``network_factory`` seam) that decouples *when a message arrives* from
*when it is delivered*.  Arrivals -- computed by an inner network, so
fault injection composes underneath exploration -- are admitted into a
pool; actual deliveries happen at quantized **delivery slots** (multiples
of ``quantum_ns``), where the installed
:class:`~repro.explore.strategies.DeliveryPolicy` repeatedly picks which
pooled message to hand to the machine next, or defers the rest of the
pool a quantum.

Three properties make this a sound exploration substrate:

* **Determinism / replayability.**  The pool's evolution is a pure
  function of the admission order (fixed by the engine's determinism)
  and the sequence of policy decisions; every decision is appended to
  :attr:`decisions`, so replaying the log through a
  :class:`~repro.explore.strategies.ReplayPolicy` reproduces the run
  byte-for-byte.
* **Liveness.**  Whenever the pool is non-empty a drain is scheduled,
  and each message can be deferred at most ``defer_cap`` times before it
  is force-delivered, so every message is delivered within a bounded
  number of quanta and quiescence is preserved.
* **Bounded skew.**  ``max_skew_ns`` accounts for the inner network's
  own worst case plus quantization and the defer cap, and the machine
  arms protocol recovery from it (``adversarial = True``), exactly as it
  does for a fault profile.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from ..errors import SimulationError
from ..protocol.messages import Message
from ..sim.engine import Engine
from ..sim.faults import FaultProfile, FaultyNetwork
from ..sim.network import Network
from ..sim.params import SystemParams
from .strategies import DEFER_REST, DeliveryPolicy, FifoPolicy

#: Default per-message deferral cap (force-delivery after this many).
DEFAULT_DEFER_CAP = 4

#: A pooled arrival: (admission seq, message, deferrals so far).
_Entry = Tuple[int, Message, int]


class ExploringNetwork:
    """Interconnect with a pluggable, replayable delivery-order policy."""

    adversarial = True

    def __init__(
        self,
        engine: Engine,
        params: SystemParams,
        deliver: Callable[[Message], None],
        policy: Optional[DeliveryPolicy] = None,
        faults: Optional[FaultProfile] = None,
        fault_seed: int = 0,
        quantum_ns: Optional[int] = None,
        defer_cap: int = DEFAULT_DEFER_CAP,
    ) -> None:
        if defer_cap < 1:
            raise SimulationError("defer_cap must be >= 1")
        self._engine = engine
        self._deliver_outer = deliver
        self.policy = policy if policy is not None else FifoPolicy()
        self.quantum_ns = (
            quantum_ns if quantum_ns is not None
            else params.one_way_message_ns
        )
        if self.quantum_ns < 1:
            raise SimulationError("quantum_ns must be >= 1")
        self.default_defer_cap = defer_cap
        # The inner network computes *arrival* times (and faults);
        # its "deliver" callback is our admission hook.
        if faults is not None and faults.is_active:
            self.inner = FaultyNetwork(
                engine, params, self._admit, faults, fault_seed
            )
        else:
            self.inner = Network(engine, params, self._admit)
        #: The recorded decision log: one int per policy consultation.
        self.decisions: List[int] = []
        #: Observers called before each delivery with
        #: ``(admission seq, message, remaining pool)`` -- the overtake
        #: oracle's hook.
        self.delivery_observers: List[Callable] = []
        self._pool: List[_Entry] = []
        self._admit_seq = 0
        self._scheduled: Set[int] = set()
        self.deliveries = 0

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    @property
    def latency_ns(self) -> int:
        return self.inner.latency_ns

    @property
    def messages_sent(self) -> int:
        return self.inner.messages_sent

    @property
    def defer_cap(self) -> int:
        cap = getattr(self.policy, "defer_cap", None)
        return cap if cap is not None else self.default_defer_cap

    @property
    def max_skew_ns(self) -> int:
        """Worst-case delivery delay beyond the base latency.

        Inner skew (faults), plus one quantum of arrival quantization,
        plus one quantum per permitted deferral, plus one more for the
        forced-delivery drain itself.
        """
        cap = max(self.default_defer_cap, self.defer_cap)
        return self.inner.max_skew_ns + (cap + 2) * self.quantum_ns

    def send(self, msg: Message) -> None:
        self.inner.send(msg)

    # ------------------------------------------------------------------
    # admission and drains
    # ------------------------------------------------------------------

    def _admit(self, msg: Message) -> None:
        """An arrival (from the inner network) joins the pool."""
        seq = self._admit_seq
        self._admit_seq += 1
        self._pool.append((seq, msg, 0))
        self.policy.on_admit(seq, msg)
        self._schedule_drain(self._next_slot())

    def _next_slot(self) -> int:
        """The first delivery slot strictly after the current time."""
        return (self._engine.now // self.quantum_ns + 1) * self.quantum_ns

    def _schedule_drain(self, slot: int) -> None:
        if slot not in self._scheduled:
            self._scheduled.add(slot)
            self._engine.schedule_at(slot, self._drain, slot)

    def _drain(self, slot: int) -> None:
        self._scheduled.discard(slot)
        cap = self.defer_cap
        while self._pool:
            decision = self.policy.decide(tuple(self._pool))
            self.decisions.append(decision)
            if decision == DEFER_REST:
                # Ripe entries (at the cap) are force-delivered now, in
                # admission order; the rest wait one more quantum.
                ripe = [e for e in self._pool if e[2] >= cap]
                rest = [
                    (seq, msg, defers + 1)
                    for seq, msg, defers in self._pool
                    if defers < cap
                ]
                self._pool = []
                for entry in ripe:
                    self._deliver_entry(entry)
                self._pool = rest
                if rest:
                    self._schedule_drain(slot + self.quantum_ns)
                return
            index = decision if decision < len(self._pool) else (
                len(self._pool) - 1
            )
            entry = self._pool.pop(index)
            self._deliver_entry(entry)

    def _deliver_entry(self, entry: _Entry) -> None:
        seq, msg, _defers = entry
        if self.delivery_observers:
            remaining = tuple(self._pool)
            for observer in self.delivery_observers:
                observer(seq, msg, remaining)
        self.deliveries += 1
        self._deliver_outer(msg)

    # ------------------------------------------------------------------
    # policy management (checkpoint forking)
    # ------------------------------------------------------------------

    def set_policy(self, policy: DeliveryPolicy) -> None:
        """Swap the delivery policy at a quiescent point.

        Used by crash-point exploration: run the prefix under FIFO,
        checkpoint, then fork with a different strategy for the suffix.
        The decision log keeps accumulating across the swap, so the
        artifact's log replays prefix and suffix alike.
        """
        if self._pool or self._scheduled:
            raise SimulationError(
                "cannot swap delivery policy with messages in flight "
                f"({len(self._pool)} pooled, {len(self._scheduled)} "
                "drains scheduled)"
            )
        self.policy = policy

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        if self._pool or self._scheduled:
            raise SimulationError(
                "cannot snapshot an exploring network with messages "
                "in flight"
            )
        return {
            "inner": self.inner.snapshot_state(),
            "decisions": list(self.decisions),
            "admit_seq": self._admit_seq,
            "deliveries": self.deliveries,
            "policy_name": self.policy.name,
            "policy_state": self.policy.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        if self._pool or self._scheduled:
            raise SimulationError(
                "cannot restore into an exploring network with messages "
                "in flight"
            )
        self.inner.restore_state(state["inner"])
        self.decisions = list(state["decisions"])
        self._admit_seq = state["admit_seq"]
        self.deliveries = state["deliveries"]
        # Only re-apply policy state to the same kind of policy; a fork
        # restores a FIFO-prefix snapshot into a fresh strategy policy
        # and then installs it via set_policy.
        if state["policy_name"] == self.policy.name:
            self.policy.restore_state(state["policy_state"])
