"""``.repro`` artifacts: a failing schedule, minimized and replayable.

An artifact is one JSON document holding everything needed to reproduce
a schedule-exploration failure byte-for-byte:

* the **configuration** -- either a named workload (name + constructor
  kwargs + seed, re-materialized deterministically at replay) or, after
  the shrinker has bitten into the access stream, the frozen
  :class:`~repro.workloads.recorded.RecordedWorkload` streams embedded
  inline; plus machine options, fault spec/seed, and the exploring
  network's quantum and defer cap;
* the **strategy** that found the failure (name, seed, parameters) --
  informational after recording, since replay drives the run from the
  decision log;
* the **decision log** itself;
* the **failure**: which oracle fired (or which error class), the
  message, and where in the run it happened;
* the PR 3 **forensics bundle** photographed at the failure point;
* optional **shrink** statistics (original vs final decision-log and
  access counts).

Artifacts carry a SHA-256 over their canonical JSON (integrity, not
security -- a truncated download should fail loudly, like a checkpoint).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..errors import TraceError
from ..ioutil import atomic_write
from ..obs.manifest import build_manifest

#: Bump when the artifact schema changes; old artifacts refuse to load.
FORMAT_VERSION = 1

_KIND = "repro-explore-artifact"


@dataclass
class ExploreArtifact:
    """One replayable failure (or, before a failure, one replayable run)."""

    config: dict
    strategy: dict
    decisions: List[int]
    failure: Optional[dict] = None
    forensics: Optional[dict] = None
    shrink: Optional[dict] = None
    oracles: List[str] = field(default_factory=list)

    @property
    def oracle(self) -> Optional[str]:
        """The oracle (or error class) that fired, if any."""
        if self.failure is None:
            return None
        return self.failure.get("oracle")

    def to_document(self) -> dict:
        document = {
            "kind": _KIND,
            "format": FORMAT_VERSION,
            "manifest": build_manifest("repro-explore"),
            "config": self.config,
            "strategy": self.strategy,
            "oracles": list(self.oracles),
            "decisions": list(self.decisions),
            "failure": self.failure,
            "forensics": self.forensics,
            "shrink": self.shrink,
        }
        document["sha256"] = _digest(document)
        return document

    @classmethod
    def from_document(cls, document: dict, source: str = "<artifact>"):
        if not isinstance(document, dict) or document.get("kind") != _KIND:
            raise TraceError(f"{source} is not a .repro explore artifact")
        if document.get("format") != FORMAT_VERSION:
            raise TraceError(
                f"{source} has artifact format {document.get('format')}; "
                f"this build reads format {FORMAT_VERSION}"
            )
        recorded = document.get("sha256")
        if recorded is not None and recorded != _digest(document):
            raise TraceError(
                f"integrity check failed for {source}: the artifact is "
                "corrupt (truncated or edited)"
            )
        return cls(
            config=document["config"],
            strategy=document["strategy"],
            decisions=list(document["decisions"]),
            failure=document.get("failure"),
            forensics=document.get("forensics"),
            shrink=document.get("shrink"),
            oracles=list(document.get("oracles", [])),
        )


def _digest(document: dict) -> str:
    """SHA-256 over the canonical JSON, excluding the digest itself and
    the manifest (attribution only, varies per host)."""
    payload = {
        key: value
        for key, value in document.items()
        if key not in ("sha256", "manifest")
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_artifact(
    artifact: ExploreArtifact, path: Union[str, Path]
) -> Path:
    """Atomically write ``artifact`` as pretty-printed JSON."""
    with atomic_write(path) as handle:
        json.dump(artifact.to_document(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return Path(path)


def load_artifact(path: Union[str, Path]) -> ExploreArtifact:
    """Load and verify a ``.repro`` artifact."""
    target = Path(path)
    if not target.exists():
        raise TraceError(f"no artifact at {target}")
    try:
        with open(target, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"unreadable artifact {target}: {exc}") from exc
    return ExploreArtifact.from_document(document, source=str(target))
