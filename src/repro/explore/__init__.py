"""Adversarial schedule exploration with invariant oracles.

The explorer drives the simulated machine through *chosen* message
delivery orders instead of the network's natural FIFO timing, watching
invariant oracles the whole way, and packages any violation as a
replayable, shrinkable ``.repro`` artifact:

* :mod:`~repro.explore.strategies` -- delivery-order policies
  (random-walk, PCT, delay-bounded, FIFO, replay-from-log);
* :mod:`~repro.explore.network` -- the scheduler seam: an interconnect
  whose delivery order is the policy's to pick, with fault injection
  composing underneath;
* :mod:`~repro.explore.oracles` -- coherence, quiescence, liveness,
  predictor-balance, and the opt-in overtake oracle;
* :mod:`~repro.explore.runner` -- episode campaigns, budgets,
  checkpoint forking, and byte-identical replay;
* :mod:`~repro.explore.shrink` -- delta debugging over decision logs
  and access streams;
* :mod:`~repro.explore.artifact` -- the ``.repro`` on-disk format;
* :mod:`~repro.explore.cli` -- the ``repro-explore`` command.
"""

from .artifact import ExploreArtifact, load_artifact, save_artifact
from .network import DEFAULT_DEFER_CAP, ExploringNetwork
from .oracles import DEFAULT_ORACLES, Oracle, parse_oracles
from .runner import (
    ExploreConfig,
    ExploreReport,
    EpisodeResult,
    ReplayResult,
    explore,
    replay_artifact,
)
from .shrink import ShrinkResult, ddmin, shrink
from .strategies import (
    DEFER_REST,
    STRATEGIES,
    DeliveryPolicy,
    DelayBoundedPolicy,
    FifoPolicy,
    PCTPolicy,
    RandomWalkPolicy,
    ReplayPolicy,
    make_policy,
)

__all__ = [
    "DEFAULT_DEFER_CAP",
    "DEFAULT_ORACLES",
    "DEFER_REST",
    "DelayBoundedPolicy",
    "DeliveryPolicy",
    "EpisodeResult",
    "ExploreArtifact",
    "ExploreConfig",
    "ExploreReport",
    "ExploringNetwork",
    "FifoPolicy",
    "Oracle",
    "PCTPolicy",
    "RandomWalkPolicy",
    "ReplayPolicy",
    "ReplayResult",
    "STRATEGIES",
    "ShrinkResult",
    "ddmin",
    "explore",
    "load_artifact",
    "make_policy",
    "parse_oracles",
    "replay_artifact",
    "save_artifact",
    "shrink",
]
