"""repro: reproduction of "Using Prediction to Accelerate Coherence Protocols".

Mukherjee & Hill, ISCA 1998.  The package provides:

* :mod:`repro.core` -- the Cosmos two-level coherence-message predictor;
* :mod:`repro.protocol` -- a Stache-style full-map write-invalidate
  directory protocol (the coherence substrate);
* :mod:`repro.sim` -- a discrete-event 16-node machine simulator;
* :mod:`repro.workloads` -- models of the paper's five benchmarks;
* :mod:`repro.predictors` -- baseline and directed predictors;
* :mod:`repro.accel` -- prediction-to-action integration and the
  Section 4.4 speedup model;
* :mod:`repro.analysis` -- accuracy, signature, adaptation, and
  memory-overhead analyses;
* :mod:`repro.experiments` -- drivers regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.parallel` -- sharded parallel execution of independent
  experiment cells over a ``spawn`` worker pool, fed by the
  content-addressed on-disk trace cache (:mod:`repro.trace.cache`);
* :mod:`repro.obs` -- deep observability: the structured event log,
  Perfetto timeline export, misprediction forensics, and run
  manifests.

Quickstart::

    from repro import CosmosConfig, evaluate_trace, make_workload, simulate

    trace = simulate(make_workload("appbt"), iterations=30, seed=1)
    result = evaluate_trace(trace.events, CosmosConfig(depth=2))
    print(f"overall accuracy: {result.overall_accuracy:.1%}")
"""

from ._version import __version__
from .core import (
    CosmosConfig,
    CosmosPredictor,
    EvaluationResult,
    MemoryOverhead,
    PredictorBank,
    evaluate_trace,
)
from .errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from .protocol import Message, MessageType, Role, StacheOptions
from .sim import Machine, PAPER_PARAMS, SystemParams, simulate
from .trace import TraceCollector, TraceEvent, load_trace, save_trace
from .workloads import Workload, all_workloads, make_workload

__all__ = [
    "ConfigError",
    "CosmosConfig",
    "CosmosPredictor",
    "EvaluationResult",
    "Machine",
    "MemoryOverhead",
    "Message",
    "MessageType",
    "PAPER_PARAMS",
    "PredictorBank",
    "ProtocolError",
    "ReproError",
    "Role",
    "SimulationError",
    "StacheOptions",
    "SystemParams",
    "TraceCollector",
    "TraceError",
    "TraceEvent",
    "Workload",
    "WorkloadError",
    "__version__",
    "all_workloads",
    "evaluate_trace",
    "load_trace",
    "make_workload",
    "save_trace",
    "simulate",
]
