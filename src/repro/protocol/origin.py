"""SGI-Origin-style three-hop request forwarding.

The paper's Section 2.1 notes that Origin serves a miss to a remotely
owned block in three messages rather than Stache's four: the directory
*forwards* the request to the owner, which answers the requester directly
and sends a revision notice back to the directory.  The paper asserts
this difference "should have no first-order effect on coherence
prediction's usability" -- a claim this module makes testable
(``repro.experiments.protocols`` runs Cosmos over both protocols).

Differences from the base controller, for misses whose block is owned by
a *remote* cache:

* read miss: directory sends ``fwd_get_ro_request`` to the owner; the
  owner demotes its copy to shared, sends ``get_ro_response`` straight to
  the requester and a ``revision`` to the directory (which then records
  both nodes as sharers).  Note the owner keeps a shared copy -- Origin
  has no half-migratory invalidation on this path.
* write miss: directory sends ``fwd_get_rw_request``; the owner
  invalidates its copy, sends ``get_rw_response`` to the requester and a
  ``revision`` to the directory (which records the new owner).

All other transitions (idle/shared reads, invalidation fan-out for
writes to shared blocks, upgrades, home-local accesses) behave exactly
like the base directory.  Invalidation acknowledgments still return to
the directory rather than the requester -- a simplification relative to
real Origin that keeps ack collection in one place and does not affect
the per-block message orders Cosmos observes.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from ..errors import ProtocolError
from .directory_ctrl import DirectoryController, _Request, _Txn
from .messages import Message, MessageType
from .recovery import RecoveryConfig, Scheduler
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import DirEntry


class OriginDirectoryController(DirectoryController):
    """Directory that forwards owner misses instead of recalling data."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
        *,
        recovery: Optional[RecoveryConfig] = None,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        super().__init__(
            node_id, send, options, recovery=recovery, schedule=schedule
        )
        self.forwards = 0

    #: Checkpoints additionally capture the forwarding counter.
    _STAT_FIELDS = DirectoryController._STAT_FIELDS + ("forwards",)

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MessageType.REVISION:
            self._on_ack(msg)
            return
        super().handle_message(msg)

    def _forward(
        self,
        block: int,
        entry: DirEntry,
        request: _Request,
        fwd_type: MessageType,
        final_owner,
        final_sharers: Set[int],
    ) -> _Txn:
        assert entry.owner is not None and entry.owner != self.node_id
        self.forwards += 1
        seq: Optional[int] = None
        if self._recovery is not None:
            seq = self._take_seq()
        msg = Message(
            src=self.node_id,
            dst=entry.owner,
            mtype=fwd_type,
            block=block,
            requester=request.requester,
            seq=seq,
            # The owner answers the requester directly; it needs the
            # requester's own attempt seq to stamp that response with.
            requester_seq=request.req_seq,
            txn=request.txn,
        )
        self._send(msg)
        txn = _Txn(
            request=request,
            pending_acks={entry.owner},
            final_owner=final_owner,
            final_sharers=final_sharers,
            reply_type=None,  # the owner answers the requester directly
        )
        if self._recovery is not None:
            assert seq is not None
            txn.pending_seq[entry.owner] = seq
            txn.pending_msg[entry.owner] = msg
        return txn

    def _start_read(self, block: int, entry: DirEntry, request: _Request) -> _Txn:
        if (
            entry.owner is not None
            and entry.owner != self.node_id
            and not request.is_local
        ):
            return self._forward(
                block,
                entry,
                request,
                MessageType.FWD_GET_RO_REQUEST,
                final_owner=None,
                final_sharers={entry.owner, request.requester},
            )
        return super()._start_read(block, entry, request)

    def _start_write(self, block: int, entry: DirEntry, request: _Request) -> _Txn:
        if (
            entry.owner is not None
            and entry.owner != self.node_id
            and not entry.sharers
            and not request.is_local
        ):
            return self._forward(
                block,
                entry,
                request,
                MessageType.FWD_GET_RW_REQUEST,
                final_owner=request.requester,
                final_sharers=set(),
            )
        return super()._start_write(block, entry, request)
