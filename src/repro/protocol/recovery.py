"""Recovery policy for running the protocol over an unreliable network.

The Stache controllers were written against an idealized interconnect
(no loss, no duplication, per-channel FIFO).  When the machine runs on a
:class:`~repro.sim.faults.FaultyNetwork` instead, the controllers switch
on three cooperating mechanisms, configured here:

* **sequence numbers** -- every request carries a per-controller
  sequence number; responses and acknowledgments echo the number they
  answer, so duplicates and stale deliveries are suppressed by exact
  match rather than guessed at.
* **timeout + bounded exponential backoff** -- the requesting side
  (cache for misses, directory for invalidation/downgrade/forward
  rounds) schedules a timeout on the simulation engine; an unanswered
  attempt is re-sent with a fresh sequence number and a doubled (capped)
  timeout.  Retries are bounded: exhausting them raises
  :class:`~repro.errors.ProtocolError` instead of livelocking silently.
* **idempotent re-grants** -- an at-least-once request stream means the
  directory will see requests it has already served; instead of
  declaring an invariant violation it re-sends the response the
  (possibly lost) original answered with.

Mispredictions and faults may only move the protocol between legal
states (paper Section 4.3); the machine-level invariant checker in
:mod:`repro.sim.machine` asserts exactly that after every delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: ``schedule(delay_ns, callback, *args)`` -- the engine's scheduling hook.
Scheduler = Callable[..., None]


@dataclass(frozen=True)
class RecoveryConfig:
    """Timeout/retry policy shared by the cache and directory sides."""

    #: First-attempt timeout (ns).  Must comfortably exceed the worst
    #: round trip (including invalidation rounds and fault-injected
    #: skew) or every transaction would burn one pointless retry.
    timeout_ns: int = 2_000
    #: Multiplier applied to the timeout after each unanswered attempt.
    backoff: int = 2
    #: Ceiling on the per-attempt timeout (ns).
    max_timeout_ns: int = 64_000
    #: Attempts beyond the first before declaring livelock.
    max_retries: int = 24

    def next_timeout(self, current_ns: int) -> int:
        """The timeout to arm after an attempt armed with ``current_ns``."""
        return min(self.max_timeout_ns, current_ns * self.backoff)

    @classmethod
    def for_network(
        cls, one_way_ns: int, max_skew_ns: int = 0
    ) -> "RecoveryConfig":
        """Derive a sane policy from network latency and fault skew.

        The initial timeout covers a four-message transaction (request,
        invalidation, acknowledgment, response) with every hop suffering
        the worst fault-injected delay, plus slack for queueing behind a
        serialized transaction at the directory.
        """
        round_ns = 4 * (one_way_ns + max_skew_ns)
        timeout = 2 * round_ns
        return cls(
            timeout_ns=timeout,
            backoff=2,
            max_timeout_ns=32 * timeout,
            max_retries=24,
        )
