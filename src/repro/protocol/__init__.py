"""Coherence-protocol substrate: message vocabulary, states, and FSMs."""

from .cache_ctrl import CacheController
from .directory_ctrl import DirectoryController
from .messages import (
    CACHE_BOUND,
    DIRECTORY_BOUND,
    MESSAGE_DESCRIPTIONS,
    TABLE1_TYPES,
    Message,
    MessageType,
    Role,
    format_table1,
    parse_message_type,
    receiver_role,
)
from .origin import OriginDirectoryController
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import CacheState, DirEntry, DirState

__all__ = [
    "CACHE_BOUND",
    "DIRECTORY_BOUND",
    "MESSAGE_DESCRIPTIONS",
    "CacheController",
    "CacheState",
    "DEFAULT_OPTIONS",
    "DirEntry",
    "DirState",
    "DirectoryController",
    "Message",
    "MessageType",
    "OriginDirectoryController",
    "Role",
    "StacheOptions",
    "TABLE1_TYPES",
    "format_table1",
    "parse_message_type",
    "receiver_role",
]
