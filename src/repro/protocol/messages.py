"""Coherence message vocabulary (paper Table 1, plus the downgrade pair).

The paper's Table 1 lists the messages of a full-map, write-invalidate
directory protocol.  Requests flow from caches to the directory; responses
and invalidation requests flow from the directory to caches.  Figure 8 of
the paper additionally uses a ``downgrade_request`` / ``downgrade_response``
pair (directory asks a cache to demote an exclusive block to shared), which
Stache's half-migratory optimization normally replaces with a full
invalidation; we implement both so the optimization can be toggled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Role(enum.Enum):
    """Which module of a node a predictor (or a message) is attached to."""

    CACHE = "cache"
    DIRECTORY = "directory"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class MessageType(enum.IntEnum):
    """All coherence message types exchanged by the Stache-style protocol.

    The integer values are stable and compact (4 bits suffice), matching the
    paper's assumption of a 4-bit message-type field in a Cosmos tuple
    (Table 7 footnote).
    """

    # cache -> directory (received by a directory)
    GET_RO_REQUEST = 0
    GET_RW_REQUEST = 1
    UPGRADE_REQUEST = 2
    INVAL_RO_RESPONSE = 3
    INVAL_RW_RESPONSE = 4
    DOWNGRADE_RESPONSE = 5

    # directory -> cache (received by a cache)
    GET_RO_RESPONSE = 6
    GET_RW_RESPONSE = 7
    UPGRADE_RESPONSE = 8
    INVAL_RO_REQUEST = 9
    INVAL_RW_REQUEST = 10
    DOWNGRADE_REQUEST = 11

    # Origin-style three-hop forwarding extension (repro.protocol.origin):
    # the directory forwards a miss to the current owner, which responds
    # directly to the requester and sends a revision to the directory.
    FWD_GET_RO_REQUEST = 12  # directory -> owner cache
    FWD_GET_RW_REQUEST = 13  # directory -> owner cache
    REVISION = 14            # owner cache -> directory

    def __str__(self) -> str:
        return self.name.lower()


#: Human-readable descriptions, reproducing the paper's Table 1.
MESSAGE_DESCRIPTIONS = {
    MessageType.GET_RO_REQUEST: "get block in read-only (shared) state",
    MessageType.GET_RW_REQUEST: "get block in read-write (exclusive) state",
    MessageType.UPGRADE_REQUEST: "upgrade block from read-only to read-write",
    MessageType.INVAL_RO_RESPONSE: "response to inval_ro_request",
    MessageType.INVAL_RW_RESPONSE: "response to inval_rw_request",
    MessageType.DOWNGRADE_RESPONSE: "response to downgrade_request",
    MessageType.GET_RO_RESPONSE: "response to get_ro_request",
    MessageType.GET_RW_RESPONSE: "response to get_rw_request",
    MessageType.UPGRADE_RESPONSE: "response to upgrade_request",
    MessageType.INVAL_RO_REQUEST: "invalidate read-only (shared) copy of block",
    MessageType.INVAL_RW_REQUEST: (
        "invalidate read-write (exclusive) copy and return block"
    ),
    MessageType.DOWNGRADE_REQUEST: (
        "demote read-write (exclusive) copy of block to read-only"
    ),
    MessageType.FWD_GET_RO_REQUEST: (
        "forwarded read miss: send the block read-only to the requester"
    ),
    MessageType.FWD_GET_RW_REQUEST: (
        "forwarded write miss: send the block read-write to the requester"
    ),
    MessageType.REVISION: (
        "owner's revision notice closing a forwarded transaction"
    ),
}

#: Message types received by a directory module.
DIRECTORY_BOUND = frozenset(
    {
        MessageType.GET_RO_REQUEST,
        MessageType.GET_RW_REQUEST,
        MessageType.UPGRADE_REQUEST,
        MessageType.INVAL_RO_RESPONSE,
        MessageType.INVAL_RW_RESPONSE,
        MessageType.DOWNGRADE_RESPONSE,
        MessageType.REVISION,
    }
)

#: Message types received by a cache module.
CACHE_BOUND = frozenset(
    {
        MessageType.GET_RO_RESPONSE,
        MessageType.GET_RW_RESPONSE,
        MessageType.UPGRADE_RESPONSE,
        MessageType.INVAL_RO_REQUEST,
        MessageType.INVAL_RW_REQUEST,
        MessageType.DOWNGRADE_REQUEST,
        MessageType.FWD_GET_RO_REQUEST,
        MessageType.FWD_GET_RW_REQUEST,
    }
)

#: The message types of the paper's Table 1 (plus the downgrade pair);
#: the forwarding extension's types are excluded.
TABLE1_TYPES = frozenset(MessageType) - {
    MessageType.FWD_GET_RO_REQUEST,
    MessageType.FWD_GET_RW_REQUEST,
    MessageType.REVISION,
}


def receiver_role(mtype: MessageType) -> Role:
    """Return which module (cache or directory) receives messages of ``mtype``."""
    return Role.DIRECTORY if mtype in DIRECTORY_BOUND else Role.CACHE


@dataclass(frozen=True)
class Message:
    """One coherence message in flight.

    Attributes:
        src: sending node id.
        dst: receiving node id.
        mtype: the coherence message type.
        block: block-aligned byte address the message refers to.
        requester: for forwarded requests, the node the owner must
            answer directly (``None`` for ordinary messages).
        seq: sender-assigned sequence number of this message (stamped by
            controllers running in recovery mode; ``None`` on a reliable
            network, where delivery order makes numbering redundant).
        ack_seq: the ``seq`` of the request this message answers, echoed
            so the receiver can match a response/acknowledgment to its
            current attempt and discard duplicates or stale deliveries.
        requester_seq: for forwarded requests, the ``seq`` of the
            requester's original request, so the owner's direct response
            carries the right ``ack_seq``.
        txn: causal transaction id (see :mod:`repro.obs.spans`): the id
            assigned at the module whose access this message ultimately
            serves, propagated through every hop -- requests, collection
            rounds, Origin forwards, revisions, responses, and retries
            all carry the same id.  ``None`` whenever span tracing is
            off (the default).
    """

    src: int
    dst: int
    mtype: MessageType
    block: int
    requester: Optional[int] = None
    seq: Optional[int] = None
    ack_seq: Optional[int] = None
    requester_seq: Optional[int] = None
    txn: Optional[int] = None

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError("node ids must be non-negative")

    @property
    def role_at_receiver(self) -> Role:
        """The module at the destination node that handles this message."""
        return receiver_role(self.mtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mtype} block=0x{self.block:x} "
            f"P{self.src} -> P{self.dst}"
        )


def format_table1(include_extensions: bool = False) -> str:
    """Render the paper's Table 1 as an aligned text table.

    With ``include_extensions`` the Origin-forwarding message types are
    listed in a third section; by default only the paper's vocabulary is
    shown.
    """
    shown = frozenset(MessageType) if include_extensions else TABLE1_TYPES
    lines = ["%-22s %s" % ("Message", "Description"), "-" * 72]
    lines.append("-- received by a directory (cache -> directory) --")
    for mtype in sorted(DIRECTORY_BOUND & shown):
        lines.append("%-22s %s" % (mtype, MESSAGE_DESCRIPTIONS[mtype]))
    lines.append("-- received by a cache (directory -> cache) --")
    for mtype in sorted(CACHE_BOUND & shown):
        lines.append("%-22s %s" % (mtype, MESSAGE_DESCRIPTIONS[mtype]))
    if include_extensions:
        lines.append("-- three-hop forwarding extension (not in the paper) --")
        for mtype in sorted(frozenset(MessageType) - TABLE1_TYPES):
            lines.append("%-22s %s" % (mtype, MESSAGE_DESCRIPTIONS[mtype]))
    return "\n".join(lines)


def parse_message_type(name: str) -> MessageType:
    """Parse a message type from its lowercase name (as printed by ``str``)."""
    try:
        return MessageType[name.upper()]
    except KeyError:
        raise ValueError(f"unknown message type: {name!r}") from None
