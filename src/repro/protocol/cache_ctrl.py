"""Cache-side coherence controller.

One controller per node manages the node's cache of *remote* blocks
(blocks whose home directory is another node).  Accesses to blocks homed
at the node itself never reach this controller; Stache serves them through
the local directory (see :class:`repro.protocol.directory_ctrl.DirectoryController`).

The controller is a finite-state machine over the stable states
``invalid -> shared -> exclusive`` with a single outstanding transaction
per block tracked separately (the processor model issues one access at a
time, so at most one transaction is ever in flight per controller).

With a :class:`~repro.protocol.recovery.RecoveryConfig` installed the
controller additionally survives an unreliable network: requests carry
sequence numbers, unanswered attempts are retried with bounded
exponential backoff, responses are matched to the *current* attempt (so
duplicates and stale deliveries are discarded), and invalidations are
acknowledged idempotently from any state.  An invalidation arriving
while a transaction is outstanding also *poisons* the attempt -- any
response still in flight to the old attempt would install a copy the
directory has already revoked, so the attempt is re-issued under a fresh
sequence number instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ProtocolError
from ..obs.log import OBS
from ..obs.spans import SPANS
from .messages import Message, MessageType
from .recovery import RecoveryConfig, Scheduler
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import CacheState

#: Callback invoked when an access completes.
DoneCallback = Callable[[], None]

#: Callback invoked when a block is replaced (victim block address).
ReplacementCallback = Callable[[int], None]


@dataclass
class _Outstanding:
    """A miss transaction in flight from this cache."""

    home: int
    is_write: bool
    done_cb: DoneCallback
    #: Sequence number of the current attempt (recovery mode only).
    seq: Optional[int] = None
    #: Timeout-driven re-issues so far (poison re-issues are unbounded
    #: and tracked separately -- see ``_poison_outstanding``).
    retries: int = 0
    #: Timeout armed for the current attempt (ns).
    timeout_ns: int = 0
    #: Causal span id (:mod:`repro.obs.spans`); ``None`` with tracing off.
    trace_id: Optional[int] = None


class CacheController:
    """Per-node cache FSM for remote blocks."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
        *,
        recovery: Optional[RecoveryConfig] = None,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        if recovery is not None and schedule is None:
            raise ProtocolError(
                "recovery mode needs an engine scheduler for timeouts"
            )
        self.node_id = node_id
        self._send = send
        self._options = options
        self._recovery = recovery
        self._schedule = schedule
        self._next_seq = 1
        self._states: Dict[int, CacheState] = {}
        self._outstanding: Dict[int, _Outstanding] = {}
        # Finite-capacity mode (off by default: Stache never replaces).
        self._n_sets: Optional[int] = None
        self._block_bytes = 64
        self._resident: Dict[int, int] = {}
        self._on_replacement: Optional[ReplacementCallback] = None
        #: Accept unsolicited read-only data pushed by a predictive
        #: directory (producer-initiated communication, paper Table 2).
        self.allow_pushed_data = False
        self.pushed_blocks_accepted = 0
        # Statistics
        self.hits = 0
        self.misses = 0
        self.replacements = 0
        self.pinned_evictions_skipped = 0
        #: Recovery-mode statistics (folded into ``proto.*`` metrics by
        #: the machine after a run).
        self.request_retries = 0
        self.poisoned_reissues = 0
        self.stale_responses_dropped = 0
        self.duplicate_invals_acked = 0
        self.pushes_rejected = 0
        #: Backoff armed by each timeout retry (ns); folded into the
        #: ``proto.retry.backoff_ns`` histogram by the machine.
        self.retry_backoffs_ns: list = []

    def configure_finite(
        self,
        n_sets: int,
        block_bytes: int,
        on_replacement: Optional[ReplacementCallback] = None,
    ) -> None:
        """Give the cache a finite direct-mapped capacity.

        Stache itself never replaces remote blocks (Section 5.1); this
        mode models a hardware cache instead.  Clean (shared) victims are
        dropped silently -- the directory keeps believing this node is a
        sharer and may still send it an ``inval_ro_request``, which the
        cache acknowledges from the invalid state.  Dirty (exclusive)
        victims are pinned: the Table 1 vocabulary has no writeback
        message, so they stay resident until coherence recalls them,
        slightly overcommitting the nominal capacity.
        """
        if n_sets < 1:
            raise ProtocolError("a finite cache needs at least one set")
        self._n_sets = n_sets
        self._block_bytes = block_bytes
        self._on_replacement = on_replacement

    def _set_of(self, block: int) -> int:
        assert self._n_sets is not None
        return (block // self._block_bytes) % self._n_sets

    def _allocate_slot(self, block: int) -> None:
        """Make room for ``block``, evicting a clean victim if needed."""
        if self._n_sets is None:
            return
        index = self._set_of(block)
        victim = self._resident.get(index)
        if victim is None or victim == block:
            self._resident[index] = block
            return
        if (
            self.state_of(victim) is CacheState.SHARED
            and victim not in self._outstanding
        ):
            self._set_state(victim, CacheState.INVALID)
            self.replacements += 1
            self._resident[index] = block
            if self._on_replacement is not None:
                self._on_replacement(victim)
        else:
            # Dirty or in-flight victim: pinned (see configure_finite).
            self.pinned_evictions_skipped += 1

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    #: Plain-data statistics captured verbatim into checkpoints.
    _STAT_FIELDS = (
        "pushed_blocks_accepted",
        "hits",
        "misses",
        "replacements",
        "pinned_evictions_skipped",
        "request_retries",
        "poisoned_reissues",
        "stale_responses_dropped",
        "duplicate_invals_acked",
        "pushes_rejected",
    )

    def snapshot_state(self) -> dict:
        """Capture this cache's quiescent state as plain data.

        Only legal with no outstanding transaction: in-flight misses
        hold live ``done_cb`` callbacks which cannot (and need not) be
        serialized -- the machine checkpoints between phases, where
        every access has completed.
        """
        if self._outstanding:
            raise ProtocolError(
                f"cannot snapshot cache at node {self.node_id} with "
                f"outstanding transactions for blocks "
                f"{[hex(b) for b in sorted(self._outstanding)]}"
            )
        state = {
            "next_seq": self._next_seq,
            "states": {
                block: cache_state.value
                for block, cache_state in self._states.items()
            },
            "resident": dict(self._resident),
            "retry_backoffs_ns": list(self.retry_backoffs_ns),
            "allow_pushed_data": self.allow_pushed_data,
        }
        for name in self._STAT_FIELDS:
            state[name] = getattr(self, name)
        return state

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self._next_seq = state["next_seq"]
        self._states = {
            block: CacheState(value)
            for block, value in state["states"].items()
        }
        self._outstanding = {}
        self._resident = dict(state["resident"])
        self.retry_backoffs_ns = list(state["retry_backoffs_ns"])
        self.allow_pushed_data = state["allow_pushed_data"]
        for name in self._STAT_FIELDS:
            setattr(self, name, state[name])

    def state_of(self, block: int) -> CacheState:
        """Current stable state of ``block`` in this cache."""
        return self._states.get(block, CacheState.INVALID)

    def _set_state(self, block: int, new_state: CacheState) -> None:
        """Single choke point for stable-state writes (observability)."""
        if OBS.proto:
            old = self._states.get(block, CacheState.INVALID)
            if old is not new_state:
                OBS.emit_now(
                    "proto",
                    "cache-state",
                    self.node_id,
                    block,
                    {"from": old.value, "to": new_state.value},
                )
        self._states[block] = new_state

    def has_outstanding(self, block: int) -> bool:
        return block in self._outstanding

    def outstanding_blocks(self) -> list:
        """Blocks with an in-flight miss, sorted (diagnostics/oracles)."""
        return sorted(self._outstanding)

    # ------------------------------------------------------------------
    # processor side
    # ------------------------------------------------------------------

    def access(
        self, block: int, home: int, is_write: bool, done_cb: DoneCallback
    ) -> bool:
        """Issue a processor load or store.

        Returns ``True`` when the access hits in the cache (the caller is
        responsible for invoking ``done_cb`` after its hit latency);
        returns ``False`` when a coherence transaction was started, in
        which case ``done_cb`` fires when the response arrives.
        """
        if home == self.node_id:
            raise ProtocolError(
                f"block 0x{block:x} is homed at node {home}; home accesses "
                "must go through the local directory"
            )
        state = self.state_of(block)
        if state is CacheState.EXCLUSIVE or (
            state is CacheState.SHARED and not is_write
        ):
            self.hits += 1
            return True

        self.misses += 1
        if block in self._outstanding:
            raise ProtocolError(
                f"node {self.node_id} issued an access to block 0x{block:x} "
                "with a transaction already outstanding"
            )
        self._allocate_slot(block)
        txn = _Outstanding(home=home, is_write=is_write, done_cb=done_cb)
        if SPANS.enabled:
            txn.trace_id = SPANS.open(
                self.node_id, home, block, "write" if is_write else "read"
            )
        self._outstanding[block] = txn
        self._issue(block, txn)
        return False

    # ------------------------------------------------------------------
    # request issue / timeout / retry (recovery machinery)
    # ------------------------------------------------------------------

    def _request_type(self, block: int, txn: _Outstanding) -> MessageType:
        """The request matching the *current* state (retries recompute:
        an upgrade whose copy was since invalidated becomes a full write
        miss)."""
        state = self.state_of(block)
        if txn.is_write and state is CacheState.SHARED:
            return MessageType.UPGRADE_REQUEST
        if txn.is_write:
            return MessageType.GET_RW_REQUEST
        return MessageType.GET_RO_REQUEST

    def _issue(self, block: int, txn: _Outstanding) -> None:
        """Send (or re-send) the request for ``txn`` and arm its timeout."""
        seq: Optional[int] = None
        if self._recovery is not None:
            seq = self._take_seq()
            txn.seq = seq
        self._send(
            Message(
                src=self.node_id,
                dst=txn.home,
                mtype=self._request_type(block, txn),
                block=block,
                seq=seq,
                txn=txn.trace_id,
            )
        )
        if self._recovery is not None:
            assert self._schedule is not None
            if txn.timeout_ns == 0:
                txn.timeout_ns = self._recovery.timeout_ns
            self._schedule(txn.timeout_ns, self._on_timeout, block, seq)

    def _on_timeout(self, block: int, seq: Optional[int]) -> None:
        txn = self._outstanding.get(block)
        if txn is None or txn.seq != seq:
            return  # completed, or already re-issued under a new attempt
        assert self._recovery is not None
        txn.retries += 1
        if txn.retries > self._recovery.max_retries:
            raise ProtocolError(
                f"node {self.node_id} exhausted "
                f"{self._recovery.max_retries} retries for block "
                f"0x{block:x}: livelock on the unreliable network"
            )
        self.request_retries += 1
        txn.timeout_ns = self._recovery.next_timeout(txn.timeout_ns)
        self.retry_backoffs_ns.append(txn.timeout_ns)
        if OBS.proto:
            OBS.emit_now(
                "proto",
                "retry",
                self.node_id,
                block,
                {"attempt": txn.retries, "timeout_ns": txn.timeout_ns},
            )
        if SPANS.enabled and txn.trace_id is not None:
            SPANS.retry(txn.trace_id, self.node_id, "timeout", txn.retries)
        self._issue(block, txn)

    def _poison_outstanding(self, block: int) -> None:
        """An invalidation revoked what an in-flight response may grant.

        Any response to the current attempt must now be discarded (the
        directory has already moved on), so the attempt is re-issued
        under a fresh sequence number.  Unlike timeout retries, poison
        re-issues are *not* bounded: each one is triggered by a delivered
        invalidation, i.e. by another node's transaction completing, so
        the system as a whole is making progress (and on a hot block
        under heavy contention they legitimately pile up).
        """
        if self._recovery is None:
            return
        txn = self._outstanding.get(block)
        if txn is not None:
            self.poisoned_reissues += 1
            if OBS.proto:
                OBS.emit_now(
                    "proto",
                    "poison",
                    self.node_id,
                    block,
                    {"stale_seq": txn.seq},
                )
            if SPANS.enabled and txn.trace_id is not None:
                SPANS.retry(
                    txn.trace_id,
                    self.node_id,
                    "poison",
                    self.poisoned_reissues,
                )
            self._issue(block, txn)

    # ------------------------------------------------------------------
    # network side
    # ------------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        """Process a message delivered to this cache module."""
        handler = self._HANDLERS.get(msg.mtype)
        if handler is None:
            raise ProtocolError(
                f"cache at node {self.node_id} received non-cache-bound "
                f"message {msg}"
            )
        handler(self, msg)

    def _stale_response(self, msg: Message) -> bool:
        """Is this data response a duplicate or aimed at an old attempt?"""
        if self._recovery is None:
            return False
        txn = self._outstanding.get(msg.block)
        return txn is None or msg.ack_seq != txn.seq

    def _complete(self, block: int, new_state: CacheState) -> None:
        txn = self._outstanding.pop(block, None)
        if txn is None:
            raise ProtocolError(
                f"node {self.node_id} received a data response for block "
                f"0x{block:x} with no outstanding transaction"
            )
        self._set_state(block, new_state)
        if SPANS.enabled and txn.trace_id is not None:
            SPANS.close(txn.trace_id, self.node_id)
        txn.done_cb()

    def _on_get_ro_response(self, msg: Message) -> None:
        txn = self._outstanding.get(msg.block)
        if txn is None and self.allow_pushed_data and msg.ack_seq is None:
            if self._recovery is not None:
                # A push can race an invalidation: the consumer may ack
                # the invalidation before the (reordered) push arrives,
                # and installing it then would resurrect a revoked copy.
                # The Table 1 vocabulary has no push ack/nack to close
                # that window, so pushes are refused under faults.
                self.pushes_rejected += 1
                return
            # Unsolicited push from a predictive directory: install the
            # copy; the next local read will hit.
            if self.state_of(msg.block) is CacheState.INVALID:
                self._allocate_slot(msg.block)
                self._set_state(msg.block, CacheState.SHARED)
                self.pushed_blocks_accepted += 1
            return
        if txn is not None and txn.is_write and self.allow_pushed_data:
            # A push raced our write miss; read-only data cannot satisfy
            # a store, so drop it and keep waiting for the rw response.
            return
        if self._stale_response(msg):
            self.stale_responses_dropped += 1
            return
        self._complete(msg.block, CacheState.SHARED)

    def _on_rw_response(self, msg: Message) -> None:
        if self._stale_response(msg):
            self.stale_responses_dropped += 1
            return
        self._complete(msg.block, CacheState.EXCLUSIVE)

    def _ack(self, msg: Message, mtype: MessageType) -> None:
        """Acknowledge ``msg`` back to its sender, echoing its seq."""
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=mtype,
                block=msg.block,
                ack_seq=msg.seq,
                txn=msg.txn,
            )
        )

    def _on_inval_ro_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._recovery is not None:
            # Idempotent: duplicates and invalidations of copies we never
            # received (lost response, silent replacement) are acked from
            # any state; invalidating is monotonically safe.
            if state is not CacheState.SHARED:
                self.duplicate_invals_acked += 1
        elif (
            self._options.check_invariants
            and state is not CacheState.SHARED
            # A finite cache may have silently replaced the copy; the
            # directory still expects (and gets) the acknowledgment.
            and not (self._n_sets is not None and state is CacheState.INVALID)
        ):
            raise ProtocolError(
                f"node {self.node_id} got inval_ro_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._set_state(msg.block, CacheState.INVALID)
        self._ack(msg, MessageType.INVAL_RO_RESPONSE)
        self._poison_outstanding(msg.block)

    def _on_inval_rw_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._recovery is not None:
            if state is not CacheState.EXCLUSIVE:
                self.duplicate_invals_acked += 1
        elif (
            self._options.check_invariants
            and state is not CacheState.EXCLUSIVE
        ):
            raise ProtocolError(
                f"node {self.node_id} got inval_rw_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._set_state(msg.block, CacheState.INVALID)
        self._ack(msg, MessageType.INVAL_RW_RESPONSE)
        self._poison_outstanding(msg.block)

    def _on_downgrade_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._recovery is not None:
            if state is not CacheState.EXCLUSIVE:
                # Duplicate (already demoted) or stale (since
                # invalidated): ack without touching state -- promoting
                # an INVALID block to SHARED here could resurrect a copy
                # the directory no longer tracks.
                self.duplicate_invals_acked += 1
                self._ack(msg, MessageType.DOWNGRADE_RESPONSE)
                self._poison_outstanding(msg.block)
                return
        elif (
            self._options.check_invariants
            and state is not CacheState.EXCLUSIVE
        ):
            raise ProtocolError(
                f"node {self.node_id} got downgrade_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._set_state(msg.block, CacheState.SHARED)
        self._ack(msg, MessageType.DOWNGRADE_RESPONSE)
        self._poison_outstanding(msg.block)

    def _respond_forwarded(
        self, msg: Message, reply: MessageType
    ) -> None:
        """Answer the requester of a forwarded miss, then close the
        transaction at the directory with a revision notice."""
        if msg.requester is None:
            raise ProtocolError("forwarded request carries no requester")
        self._send(
            Message(
                src=self.node_id,
                dst=msg.requester,
                mtype=reply,
                block=msg.block,
                ack_seq=msg.requester_seq,
                txn=msg.txn,
            )
        )
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.REVISION,
                block=msg.block,
                ack_seq=msg.seq,
                txn=msg.txn,
            )
        )

    def _on_fwd_get_ro_request(self, msg: Message) -> None:
        # Origin forwarding: answer the requester directly, keep a shared
        # copy, and close the transaction at the directory.
        state = self.state_of(msg.block)
        if self._recovery is not None:
            # A duplicate forward finds the copy already demoted; re-send
            # both the response and the revision (the originals may be the
            # very messages the network lost).
            if state is CacheState.EXCLUSIVE:
                self._set_state(msg.block, CacheState.SHARED)
            else:
                self.duplicate_invals_acked += 1
            self._respond_forwarded(msg, MessageType.GET_RO_RESPONSE)
            self._poison_outstanding(msg.block)
            return
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got fwd_get_ro_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._set_state(msg.block, CacheState.SHARED)
        self._respond_forwarded(msg, MessageType.GET_RO_RESPONSE)

    def _on_fwd_get_rw_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._recovery is not None:
            if state is not CacheState.EXCLUSIVE:
                self.duplicate_invals_acked += 1
            self._set_state(msg.block, CacheState.INVALID)
            self._respond_forwarded(msg, MessageType.GET_RW_RESPONSE)
            self._poison_outstanding(msg.block)
            return
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got fwd_get_rw_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._set_state(msg.block, CacheState.INVALID)
        self._respond_forwarded(msg, MessageType.GET_RW_RESPONSE)

    _HANDLERS = {
        MessageType.GET_RO_RESPONSE: _on_get_ro_response,
        MessageType.GET_RW_RESPONSE: _on_rw_response,
        MessageType.UPGRADE_RESPONSE: _on_rw_response,
        MessageType.INVAL_RO_REQUEST: _on_inval_ro_request,
        MessageType.INVAL_RW_REQUEST: _on_inval_rw_request,
        MessageType.DOWNGRADE_REQUEST: _on_downgrade_request,
        MessageType.FWD_GET_RO_REQUEST: _on_fwd_get_ro_request,
        MessageType.FWD_GET_RW_REQUEST: _on_fwd_get_rw_request,
    }
