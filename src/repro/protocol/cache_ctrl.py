"""Cache-side coherence controller.

One controller per node manages the node's cache of *remote* blocks
(blocks whose home directory is another node).  Accesses to blocks homed
at the node itself never reach this controller; Stache serves them through
the local directory (see :class:`repro.protocol.directory_ctrl.DirectoryController`).

The controller is a finite-state machine over the stable states
``invalid -> shared -> exclusive`` with a single outstanding transaction
per block tracked separately (the processor model issues one access at a
time, so at most one transaction is ever in flight per controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ProtocolError
from .messages import Message, MessageType
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import CacheState

#: Callback invoked when an access completes.
DoneCallback = Callable[[], None]

#: Callback invoked when a block is replaced (victim block address).
ReplacementCallback = Callable[[int], None]


@dataclass
class _Outstanding:
    """A miss transaction in flight from this cache."""

    home: int
    is_write: bool
    done_cb: DoneCallback


class CacheController:
    """Per-node cache FSM for remote blocks."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
    ) -> None:
        self.node_id = node_id
        self._send = send
        self._options = options
        self._states: Dict[int, CacheState] = {}
        self._outstanding: Dict[int, _Outstanding] = {}
        # Finite-capacity mode (off by default: Stache never replaces).
        self._n_sets: Optional[int] = None
        self._block_bytes = 64
        self._resident: Dict[int, int] = {}
        self._on_replacement: Optional[ReplacementCallback] = None
        #: Accept unsolicited read-only data pushed by a predictive
        #: directory (producer-initiated communication, paper Table 2).
        self.allow_pushed_data = False
        self.pushed_blocks_accepted = 0
        # Statistics
        self.hits = 0
        self.misses = 0
        self.replacements = 0
        self.pinned_evictions_skipped = 0

    def configure_finite(
        self,
        n_sets: int,
        block_bytes: int,
        on_replacement: Optional[ReplacementCallback] = None,
    ) -> None:
        """Give the cache a finite direct-mapped capacity.

        Stache itself never replaces remote blocks (Section 5.1); this
        mode models a hardware cache instead.  Clean (shared) victims are
        dropped silently -- the directory keeps believing this node is a
        sharer and may still send it an ``inval_ro_request``, which the
        cache acknowledges from the invalid state.  Dirty (exclusive)
        victims are pinned: the Table 1 vocabulary has no writeback
        message, so they stay resident until coherence recalls them,
        slightly overcommitting the nominal capacity.
        """
        if n_sets < 1:
            raise ProtocolError("a finite cache needs at least one set")
        self._n_sets = n_sets
        self._block_bytes = block_bytes
        self._on_replacement = on_replacement

    def _set_of(self, block: int) -> int:
        assert self._n_sets is not None
        return (block // self._block_bytes) % self._n_sets

    def _allocate_slot(self, block: int) -> None:
        """Make room for ``block``, evicting a clean victim if needed."""
        if self._n_sets is None:
            return
        index = self._set_of(block)
        victim = self._resident.get(index)
        if victim is None or victim == block:
            self._resident[index] = block
            return
        if (
            self.state_of(victim) is CacheState.SHARED
            and victim not in self._outstanding
        ):
            self._states[victim] = CacheState.INVALID
            self.replacements += 1
            self._resident[index] = block
            if self._on_replacement is not None:
                self._on_replacement(victim)
        else:
            # Dirty or in-flight victim: pinned (see configure_finite).
            self.pinned_evictions_skipped += 1

    def state_of(self, block: int) -> CacheState:
        """Current stable state of ``block`` in this cache."""
        return self._states.get(block, CacheState.INVALID)

    def has_outstanding(self, block: int) -> bool:
        return block in self._outstanding

    # ------------------------------------------------------------------
    # processor side
    # ------------------------------------------------------------------

    def access(
        self, block: int, home: int, is_write: bool, done_cb: DoneCallback
    ) -> bool:
        """Issue a processor load or store.

        Returns ``True`` when the access hits in the cache (the caller is
        responsible for invoking ``done_cb`` after its hit latency);
        returns ``False`` when a coherence transaction was started, in
        which case ``done_cb`` fires when the response arrives.
        """
        if home == self.node_id:
            raise ProtocolError(
                f"block 0x{block:x} is homed at node {home}; home accesses "
                "must go through the local directory"
            )
        state = self.state_of(block)
        if state is CacheState.EXCLUSIVE or (
            state is CacheState.SHARED and not is_write
        ):
            self.hits += 1
            return True

        self.misses += 1
        if block in self._outstanding:
            raise ProtocolError(
                f"node {self.node_id} issued an access to block 0x{block:x} "
                "with a transaction already outstanding"
            )
        self._allocate_slot(block)
        self._outstanding[block] = _Outstanding(
            home=home, is_write=is_write, done_cb=done_cb
        )
        if is_write and state is CacheState.SHARED:
            request = MessageType.UPGRADE_REQUEST
        elif is_write:
            request = MessageType.GET_RW_REQUEST
        else:
            request = MessageType.GET_RO_REQUEST
        self._send(
            Message(src=self.node_id, dst=home, mtype=request, block=block)
        )
        return False

    # ------------------------------------------------------------------
    # network side
    # ------------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        """Process a message delivered to this cache module."""
        handler = self._HANDLERS.get(msg.mtype)
        if handler is None:
            raise ProtocolError(
                f"cache at node {self.node_id} received non-cache-bound "
                f"message {msg}"
            )
        handler(self, msg)

    def _complete(self, block: int, new_state: CacheState) -> None:
        txn = self._outstanding.pop(block, None)
        if txn is None:
            raise ProtocolError(
                f"node {self.node_id} received a data response for block "
                f"0x{block:x} with no outstanding transaction"
            )
        self._states[block] = new_state
        txn.done_cb()

    def _on_get_ro_response(self, msg: Message) -> None:
        txn = self._outstanding.get(msg.block)
        if txn is None and self.allow_pushed_data:
            # Unsolicited push from a predictive directory: install the
            # copy; the next local read will hit.
            if self.state_of(msg.block) is CacheState.INVALID:
                self._allocate_slot(msg.block)
                self._states[msg.block] = CacheState.SHARED
                self.pushed_blocks_accepted += 1
            return
        if txn is not None and txn.is_write and self.allow_pushed_data:
            # A push raced our write miss; read-only data cannot satisfy
            # a store, so drop it and keep waiting for the rw response.
            return
        self._complete(msg.block, CacheState.SHARED)

    def _on_rw_response(self, msg: Message) -> None:
        self._complete(msg.block, CacheState.EXCLUSIVE)

    def _on_inval_ro_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if (
            self._options.check_invariants
            and state is not CacheState.SHARED
            # A finite cache may have silently replaced the copy; the
            # directory still expects (and gets) the acknowledgment.
            and not (self._n_sets is not None and state is CacheState.INVALID)
        ):
            raise ProtocolError(
                f"node {self.node_id} got inval_ro_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._states[msg.block] = CacheState.INVALID
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.INVAL_RO_RESPONSE,
                block=msg.block,
            )
        )

    def _on_inval_rw_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got inval_rw_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._states[msg.block] = CacheState.INVALID
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.INVAL_RW_RESPONSE,
                block=msg.block,
            )
        )

    def _on_fwd_get_ro_request(self, msg: Message) -> None:
        # Origin forwarding: answer the requester directly, keep a shared
        # copy, and close the transaction at the directory.
        state = self.state_of(msg.block)
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got fwd_get_ro_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        if msg.requester is None:
            raise ProtocolError("forwarded request carries no requester")
        self._states[msg.block] = CacheState.SHARED
        self._send(
            Message(
                src=self.node_id,
                dst=msg.requester,
                mtype=MessageType.GET_RO_RESPONSE,
                block=msg.block,
            )
        )
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.REVISION,
                block=msg.block,
            )
        )

    def _on_fwd_get_rw_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got fwd_get_rw_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        if msg.requester is None:
            raise ProtocolError("forwarded request carries no requester")
        self._states[msg.block] = CacheState.INVALID
        self._send(
            Message(
                src=self.node_id,
                dst=msg.requester,
                mtype=MessageType.GET_RW_RESPONSE,
                block=msg.block,
            )
        )
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.REVISION,
                block=msg.block,
            )
        )

    def _on_downgrade_request(self, msg: Message) -> None:
        state = self.state_of(msg.block)
        if self._options.check_invariants and state is not CacheState.EXCLUSIVE:
            raise ProtocolError(
                f"node {self.node_id} got downgrade_request for block "
                f"0x{msg.block:x} in state {state}"
            )
        self._states[msg.block] = CacheState.SHARED
        self._send(
            Message(
                src=self.node_id,
                dst=msg.src,
                mtype=MessageType.DOWNGRADE_RESPONSE,
                block=msg.block,
            )
        )

    _HANDLERS = {
        MessageType.GET_RO_RESPONSE: _on_get_ro_response,
        MessageType.GET_RW_RESPONSE: _on_rw_response,
        MessageType.UPGRADE_RESPONSE: _on_rw_response,
        MessageType.INVAL_RO_REQUEST: _on_inval_ro_request,
        MessageType.INVAL_RW_REQUEST: _on_inval_rw_request,
        MessageType.DOWNGRADE_REQUEST: _on_downgrade_request,
        MessageType.FWD_GET_RO_REQUEST: _on_fwd_get_ro_request,
        MessageType.FWD_GET_RW_REQUEST: _on_fwd_get_rw_request,
    }
