"""Stable coherence states for caches and directory entries.

Transient (in-flight) conditions are tracked by the controllers'
transaction bookkeeping rather than encoded as extra enum states; the
stable states below are the quiescent states the paper describes in
Section 2.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from ..errors import ProtocolError


class CacheState(enum.Enum):
    """Quiescent state of a block in a (remote-data) cache."""

    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class DirState(enum.Enum):
    """Quiescent state of a directory entry."""

    IDLE = "idle"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class DirEntry:
    """Full-map directory entry for one memory block.

    The entry tracks every node holding a copy, including the home node
    itself (Stache lets the home cache its own directory pages locally, so
    home membership in ``sharers``/``owner`` models the home's local copy).
    """

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None

    @property
    def state(self) -> DirState:
        """Derive the quiescent directory state from the pointer fields."""
        if self.owner is not None:
            return DirState.EXCLUSIVE
        if self.sharers:
            return DirState.SHARED
        return DirState.IDLE

    def check_invariants(self) -> None:
        """Raise :class:`ProtocolError` if the entry is inconsistent."""
        if self.owner is not None and self.sharers:
            raise ProtocolError(
                f"directory entry has owner P{self.owner} and sharers "
                f"{sorted(self.sharers)} simultaneously"
            )

    def holders(self) -> Set[int]:
        """All nodes currently holding a valid copy of the block."""
        if self.owner is not None:
            return {self.owner}
        return set(self.sharers)
