"""Protocol-level options of the Wisconsin Stache protocol.

Stache (Reinhardt, Larus & Wood) is a software, full-map, write-invalidate
directory protocol.  The paper highlights the properties that matter for
coherence-message prediction (Section 5.1); each is represented here:

* **half-migratory optimization** -- on a read or write miss from another
  cache, the directory asks the current exclusive holder to *invalidate*
  its copy (``inval_rw_request``) rather than demote it to shared
  (``downgrade_request``).  Toggled by :attr:`StacheOptions.half_migratory`
  so the appbt-hurts / dsmc-helps effect can be measured.
* **round-robin page placement with home-node locality** -- implemented by
  :class:`repro.sim.memory_map.MemoryMap`; the home node accesses its own
  directory pages without generating messages.
* **no cache-page replacement** -- caches never evict remote blocks, so
  Cosmos history persists (the controllers simply never replace).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StacheOptions:
    """Tunable protocol behaviours."""

    #: Invalidate (rather than downgrade) an exclusive copy when another
    #: node misses on the block.
    half_migratory: bool = True

    #: Check protocol invariants on every transition (slower; on by default
    #: because the simulator is the substrate for everything else).
    check_invariants: bool = True

    #: Serve remote-owner misses with Origin-style three-hop forwarding
    #: instead of Stache's four-message recall
    #: (see :mod:`repro.protocol.origin`).
    forwarding: bool = False

    #: Give caches a finite direct-mapped capacity with silent clean
    #: replacement (Stache itself never replaces; Section 5.1).  The
    #: directory then tolerates stale sharers re-requesting blocks.
    finite_caches: bool = False


#: Stache as the paper ran it.
DEFAULT_OPTIONS = StacheOptions()
