"""Directory-side coherence controller.

One controller per node serves the directory entries of all pages homed at
that node.  It also plays Stache's "home pages double as local cache pages"
role: loads and stores issued by the home node itself are served through
:meth:`DirectoryController.local_access` with no request/response messages,
though any invalidations they require of *remote* caches are real messages.

Transactions on the same block are serialized: while one transaction is
collecting invalidation acknowledgments, later requests for the block are
queued.  This matches a blocking home directory and keeps every message in
the paper's Table 1 vocabulary.

With a :class:`~repro.protocol.recovery.RecoveryConfig` installed the
directory additionally survives an unreliable network:

* requests arrive at least once, so a request the directory has already
  served (the requester retried because the response was lost) is
  answered again idempotently instead of tripping an invariant check;
* invalidation/downgrade rounds carry sequence numbers, acknowledgments
  echo them, and the round is re-sent to unresponsive nodes on a
  bounded-exponential-backoff timer -- a stale or duplicated ack can
  never satisfy a newer transaction's collection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Optional, Set

from ..errors import ProtocolError
from ..obs.log import OBS
from ..obs.spans import SPANS
from .messages import Message, MessageType
from .recovery import RecoveryConfig, Scheduler
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import DirEntry, DirState

DoneCallback = Callable[[], None]

#: Request types a directory accepts.
_REQUEST_TYPES = frozenset(
    {
        MessageType.GET_RO_REQUEST,
        MessageType.GET_RW_REQUEST,
        MessageType.UPGRADE_REQUEST,
    }
)

#: Acknowledgment types that retire pending invalidations/downgrades.
_ACK_TYPES = frozenset(
    {
        MessageType.INVAL_RO_RESPONSE,
        MessageType.INVAL_RW_RESPONSE,
        MessageType.DOWNGRADE_RESPONSE,
    }
)


@dataclass
class _Request:
    """A directory request waiting to be processed (remote or home-local)."""

    requester: int
    is_write: bool
    was_upgrade: bool
    done_cb: Optional[DoneCallback]  # set only for home-local accesses
    #: Sequence number of the requester's message (recovery mode), echoed
    #: in the response so the requester can match it to its attempt.
    req_seq: Optional[int] = None
    #: Causal span id carried by the request (:mod:`repro.obs.spans`);
    #: every message this transaction sends propagates it.
    txn: Optional[int] = None

    @property
    def is_local(self) -> bool:
        return self.done_cb is not None


@dataclass
class _Txn:
    """An in-flight transaction collecting acknowledgments."""

    request: _Request
    pending_acks: Set[int]
    final_owner: Optional[int]
    final_sharers: Set[int]
    reply_type: Optional[MessageType]
    #: Recovery bookkeeping: per pending node, the seq we expect the ack
    #: to echo, and the message to re-send on timeout.
    pending_seq: Dict[int, int] = field(default_factory=dict)
    pending_msg: Dict[int, Message] = field(default_factory=dict)
    retries: int = 0
    timeout_ns: int = 0
    #: Increments at every timeout arming; stale timer callbacks no-op.
    timer_token: int = 0


class DirectoryController:
    """Full-map directory FSM for blocks homed at one node."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
        *,
        recovery: Optional[RecoveryConfig] = None,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        if recovery is not None and schedule is None:
            raise ProtocolError(
                "recovery mode needs an engine scheduler for timeouts"
            )
        self.node_id = node_id
        self._send = send
        self._options = options
        self._recovery = recovery
        self._schedule = schedule
        self._next_seq = 1
        self._entries: Dict[int, DirEntry] = {}
        self._active: Dict[int, _Txn] = {}
        self._queues: Dict[int, Deque[_Request]] = {}
        # Statistics
        self.transactions = 0
        self.local_hits = 0
        self.invalidations_sent = 0
        #: Recovery-mode statistics (folded into ``proto.*`` metrics by
        #: the machine after a run).
        self.inval_retries = 0
        self.stale_acks_dropped = 0
        self.duplicate_requests_regranted = 0
        self.duplicate_requests_merged = 0
        #: Backoff armed by each collection-round retry (ns); folded into
        #: the ``proto.retry.backoff_ns`` histogram by the machine.
        self.retry_backoffs_ns: list = []

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    #: Plain-data statistics captured verbatim into checkpoints.
    _STAT_FIELDS = (
        "transactions",
        "local_hits",
        "invalidations_sent",
        "inval_retries",
        "stale_acks_dropped",
        "duplicate_requests_regranted",
        "duplicate_requests_merged",
    )

    def snapshot_state(self) -> dict:
        """Capture this directory's quiescent state as plain data.

        Only legal with no active or queued transactions: in-flight
        collections hold live callbacks and armed timers that a
        between-phases checkpoint never sees.
        """
        if self._active or self._queues:
            raise ProtocolError(
                f"cannot snapshot directory at node {self.node_id} with "
                "active or queued transactions"
            )
        return {
            "next_seq": self._next_seq,
            "entries": {
                block: {
                    "owner": entry.owner,
                    "sharers": sorted(entry.sharers),
                }
                for block, entry in self._entries.items()
            },
            "retry_backoffs_ns": list(self.retry_backoffs_ns),
            "stats": {
                name: getattr(self, name) for name in self._STAT_FIELDS
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self._next_seq = state["next_seq"]
        self._entries = {
            block: DirEntry(
                sharers=set(data["sharers"]), owner=data["owner"]
            )
            for block, data in state["entries"].items()
        }
        self._active = {}
        self._queues = {}
        self.retry_backoffs_ns = list(state["retry_backoffs_ns"])
        for name in self._STAT_FIELDS:
            setattr(self, name, state["stats"][name])

    def entry_of(self, block: int) -> DirEntry:
        """The directory entry for ``block`` (created on first use)."""
        entry = self._entries.get(block)
        if entry is None:
            entry = DirEntry()
            self._entries[block] = entry
        return entry

    def is_busy(self, block: int) -> bool:
        return block in self._active

    def active_blocks(self) -> list:
        """Blocks with an in-flight transaction, sorted."""
        return sorted(self._active)

    def queued_blocks(self) -> list:
        """Blocks with requests waiting behind a transaction, sorted."""
        return sorted(self._queues)

    def pending_grant(self, block: int):
        """``(final_owner, final_sharers)`` of the in-flight transaction
        for ``block``, or ``None`` when the block is quiescent.

        Used by the machine-level invariant checker: a forwarding owner
        answers the requester *before* the revision notice updates the
        entry, so a copy can legally exist that only the active
        transaction's final state explains.
        """
        txn = self._active.get(block)
        if txn is None:
            return None
        return txn.final_owner, txn.final_sharers

    # ------------------------------------------------------------------
    # home-node processor side
    # ------------------------------------------------------------------

    def local_hit(self, block: int, is_write: bool) -> bool:
        """Would a home-node access to ``block`` complete without coherence?"""
        if self.is_busy(block):
            return False
        entry = self.entry_of(block)
        if entry.owner == self.node_id:
            return True
        return not is_write and self.node_id in entry.sharers

    def local_access(
        self, block: int, is_write: bool, done_cb: DoneCallback
    ) -> bool:
        """Issue a home-node load or store against a locally-homed block.

        Returns ``True`` for an immediate hit (caller applies its hit
        latency and invokes ``done_cb`` itself); ``False`` when coherence
        work was required, in which case ``done_cb`` fires on completion.
        """
        if self.local_hit(block, is_write):
            self.local_hits += 1
            return True
        request = _Request(
            requester=self.node_id,
            is_write=is_write,
            was_upgrade=False,
            done_cb=done_cb,
        )
        if SPANS.enabled:
            request.txn = SPANS.open(
                self.node_id,
                self.node_id,
                block,
                "write" if is_write else "read",
            )
        self._admit(block, request)
        return False

    # ------------------------------------------------------------------
    # network side
    # ------------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        """Process a message delivered to this directory module."""
        if msg.mtype in _REQUEST_TYPES:
            request = _Request(
                requester=msg.src,
                is_write=msg.mtype is not MessageType.GET_RO_REQUEST,
                was_upgrade=msg.mtype is MessageType.UPGRADE_REQUEST,
                done_cb=None,
                req_seq=msg.seq,
                txn=msg.txn,
            )
            self._admit(msg.block, request)
        elif msg.mtype in _ACK_TYPES:
            self._on_ack(msg)
        else:
            raise ProtocolError(
                f"directory at node {self.node_id} received non-directory "
                f"message {msg}"
            )

    # ------------------------------------------------------------------
    # transaction machinery
    # ------------------------------------------------------------------

    def _admit(self, block: int, request: _Request) -> None:
        if SPANS.enabled and request.txn is not None:
            SPANS.admit(request.txn, self.node_id)
        if self.is_busy(block):
            if self._merge_duplicate(block, request):
                return
            self._queues.setdefault(block, deque()).append(request)
            return
        self._start(block, request)

    def _merge_duplicate(self, block: int, request: _Request) -> bool:
        """Fold an at-least-once duplicate into its earlier admission.

        A remote node has at most one access in flight per block, so a
        second request from the same node is always a retry of the one
        already queued (or being served): refresh that entry's sequence
        number so the eventual response answers the *newest* attempt,
        instead of appending.  Appending would let a contended block
        build a backlog of stale requests -- each served backlog entry
        draws an invalidation race that re-poisons the requester and
        enqueues yet another retry, a self-sustaining message storm that
        never drains (the original livelock this layer exists to kill).
        """
        if self._recovery is None or request.is_local:
            return False
        active = self._active.get(block)
        if (
            active is not None
            and not active.request.is_local
            and active.request.requester == request.requester
        ):
            active.request.req_seq = request.req_seq
            active.request.was_upgrade = request.was_upgrade
            self.duplicate_requests_merged += 1
            return True
        for queued in self._queues.get(block, ()):
            if not queued.is_local and queued.requester == request.requester:
                queued.req_seq = request.req_seq
                queued.was_upgrade = request.was_upgrade
                self.duplicate_requests_merged += 1
                return True
        return False

    def _start(self, block: int, request: _Request) -> None:
        if SPANS.enabled and request.txn is not None:
            SPANS.start(request.txn, self.node_id)
        self.transactions += 1
        entry = self.entry_of(block)
        if self._options.check_invariants:
            entry.check_invariants()

        if self._recovery is not None:
            txn = self._regrant(block, entry, request)
            if txn is None:
                if request.is_write:
                    txn = self._start_write(block, entry, request)
                else:
                    txn = self._start_read(block, entry, request)
        elif request.is_write:
            txn = self._start_write(block, entry, request)
        else:
            txn = self._start_read(block, entry, request)

        if txn.pending_acks:
            self._active[block] = txn
            self._arm_timeout(block, txn)
        else:
            self._finish(block, txn)

    def _regrant(
        self, block: int, entry: DirEntry, request: _Request
    ) -> Optional[_Txn]:
        """Serve a request the directory has (as far as it knows) already
        served: the requester retried because a response or its own
        request got lost, or the network duplicated the request.  The
        entry is left untouched and the response re-sent.
        """
        requester = request.requester
        if request.is_local:
            return None
        if entry.owner == requester:
            # Already granted exclusive (a lost/raced rw or upgrade
            # response); any request kind collapses to "send it again".
            reply = MessageType.GET_RW_RESPONSE
        elif not request.is_write and requester in entry.sharers:
            reply = MessageType.GET_RO_RESPONSE
        else:
            return None
        self.duplicate_requests_regranted += 1
        return _Txn(
            request=request,
            pending_acks=set(),
            final_owner=entry.owner,
            final_sharers=set(entry.sharers),
            reply_type=reply,
        )

    def _send_round(
        self, txn: _Txn, dst: int, mtype: MessageType, block: int
    ) -> None:
        """Send one invalidation/downgrade of a collection round, with
        recovery bookkeeping when enabled."""
        seq: Optional[int] = None
        if self._recovery is not None:
            seq = self._take_seq()
        msg = Message(
            src=self.node_id,
            dst=dst,
            mtype=mtype,
            block=block,
            seq=seq,
            txn=txn.request.txn,
        )
        self._send(msg)
        self.invalidations_sent += 1
        txn.pending_acks.add(dst)
        if self._recovery is not None:
            assert seq is not None
            txn.pending_seq[dst] = seq
            txn.pending_msg[dst] = msg

    def _start_read(
        self, block: int, entry: DirEntry, request: _Request
    ) -> _Txn:
        requester = request.requester
        if self._options.check_invariants and entry.owner == requester:
            raise ProtocolError(
                f"read request for block 0x{block:x} from P{requester}, "
                "which already owns it"
            )
        if (
            requester in entry.sharers
            and not self._options.finite_caches
            and self._recovery is None
        ):
            if self._options.check_invariants:
                raise ProtocolError(
                    f"read request for block 0x{block:x} from P{requester}, "
                    "which already holds a copy"
                )
        # With finite caches, a listed sharer may have silently replaced
        # its copy; re-granting it is harmless.
        txn = _Txn(
            request=request,
            pending_acks=set(),
            final_owner=None,
            final_sharers=set(),
            reply_type=None if request.is_local else MessageType.GET_RO_RESPONSE,
        )
        if entry.owner is not None:
            owner = entry.owner
            if self._options.half_migratory:
                # Ask the owner to give up its copy entirely.
                txn.final_sharers = {requester}
                request_type = MessageType.INVAL_RW_REQUEST
            else:
                # DASH-style: demote the owner to shared.
                txn.final_sharers = {owner, requester}
                request_type = MessageType.DOWNGRADE_REQUEST
            if owner == self.node_id:
                # Home's own copy: adjusted silently, no message.
                pass
            else:
                self._send_round(txn, owner, request_type, block)
        else:
            txn.final_sharers = set(entry.sharers)
            txn.final_sharers.add(requester)
        return txn

    def _start_write(
        self, block: int, entry: DirEntry, request: _Request
    ) -> _Txn:
        requester = request.requester
        if self._options.check_invariants and entry.owner == requester:
            raise ProtocolError(
                f"write request for block 0x{block:x} from P{requester}, "
                "which already owns it"
            )
        requester_was_sharer = requester in entry.sharers
        if request.is_local:
            reply = None
        elif request.was_upgrade and requester_was_sharer:
            reply = MessageType.UPGRADE_RESPONSE
        else:
            # An upgrade whose requester lost its copy in the meantime is
            # served as a full read-write miss.
            reply = MessageType.GET_RW_RESPONSE
        txn = _Txn(
            request=request,
            pending_acks=set(),
            final_owner=requester,
            final_sharers=set(),
            reply_type=reply,
        )
        for sharer in entry.sharers:
            if sharer == requester:
                continue
            if sharer == self.node_id:
                continue  # home's copy adjusted silently
            self._send_round(txn, sharer, MessageType.INVAL_RO_REQUEST, block)
        if entry.owner is not None and entry.owner != self.node_id:
            self._send_round(
                txn, entry.owner, MessageType.INVAL_RW_REQUEST, block
            )
        return txn

    # ------------------------------------------------------------------
    # timeout / retry (recovery machinery)
    # ------------------------------------------------------------------

    def _arm_timeout(self, block: int, txn: _Txn) -> None:
        if self._recovery is None:
            return
        assert self._schedule is not None
        if txn.timeout_ns == 0:
            txn.timeout_ns = self._recovery.timeout_ns
        txn.timer_token += 1
        self._schedule(
            txn.timeout_ns, self._on_txn_timeout, block, txn.timer_token
        )

    def _on_txn_timeout(self, block: int, token: int) -> None:
        txn = self._active.get(block)
        if txn is None or txn.timer_token != token or not txn.pending_acks:
            return  # finished, or re-armed by a later retry
        assert self._recovery is not None
        txn.retries += 1
        if txn.retries > self._recovery.max_retries:
            raise ProtocolError(
                f"directory at node {self.node_id} exhausted "
                f"{self._recovery.max_retries} invalidation retries for "
                f"block 0x{block:x}: livelock on the unreliable network"
            )
        if SPANS.enabled and txn.request.txn is not None:
            SPANS.retry(txn.request.txn, self.node_id, "inval", txn.retries)
        for dst in sorted(txn.pending_acks):
            seq = self._take_seq()
            msg = replace(txn.pending_msg[dst], seq=seq)
            txn.pending_seq[dst] = seq
            txn.pending_msg[dst] = msg
            self._send(msg)
            self.inval_retries += 1
            if OBS.proto:
                OBS.emit_now(
                    "proto",
                    "inval-retry",
                    self.node_id,
                    block,
                    {"dst": dst, "attempt": txn.retries},
                )
        txn.timeout_ns = self._recovery.next_timeout(txn.timeout_ns)
        self.retry_backoffs_ns.append(txn.timeout_ns)
        self._arm_timeout(block, txn)

    # ------------------------------------------------------------------
    # acknowledgment collection
    # ------------------------------------------------------------------

    def _on_ack(self, msg: Message) -> None:
        txn = self._active.get(msg.block)
        if self._recovery is not None:
            # At-least-once delivery makes duplicate and stale acks
            # ordinary events; only an ack echoing the seq of the latest
            # round sent to that node retires its pending entry.
            if (
                txn is None
                or msg.src not in txn.pending_acks
                or msg.ack_seq != txn.pending_seq.get(msg.src)
            ):
                self.stale_acks_dropped += 1
                return
        else:
            if txn is None:
                raise ProtocolError(
                    f"directory at node {self.node_id} received unexpected "
                    f"ack {msg}"
                )
            if msg.src not in txn.pending_acks:
                raise ProtocolError(
                    f"directory at node {self.node_id} received duplicate "
                    f"or stray ack {msg}"
                )
        txn.pending_acks.discard(msg.src)
        txn.pending_seq.pop(msg.src, None)
        txn.pending_msg.pop(msg.src, None)
        if not txn.pending_acks:
            del self._active[msg.block]
            self._finish(msg.block, txn)

    def _finish(self, block: int, txn: _Txn) -> None:
        entry = self.entry_of(block)
        if OBS.proto:
            old_state = entry.state
            new_state = (
                DirState.EXCLUSIVE
                if txn.final_owner is not None
                else DirState.SHARED if txn.final_sharers else DirState.IDLE
            )
            if old_state is not new_state:
                OBS.emit_now(
                    "proto",
                    "dir-state",
                    self.node_id,
                    block,
                    {"from": old_state.value, "to": new_state.value},
                )
        entry.owner = txn.final_owner
        entry.sharers = txn.final_sharers
        if self._options.check_invariants:
            entry.check_invariants()
        if SPANS.enabled and txn.request.txn is not None:
            SPANS.finish(txn.request.txn, self.node_id)
        if txn.request.is_local:
            if SPANS.enabled and txn.request.txn is not None:
                SPANS.close(txn.request.txn, self.node_id)
            assert txn.request.done_cb is not None
            txn.request.done_cb()
        elif txn.reply_type is not None:
            self._send(
                Message(
                    src=self.node_id,
                    dst=txn.request.requester,
                    mtype=txn.reply_type,
                    block=block,
                    ack_seq=txn.request.req_seq,
                    txn=txn.request.txn,
                )
            )
        # reply_type None on a remote request means another module (a
        # forwarding owner) already answered the requester directly.
        queue = self._queues.get(block)
        if queue:
            next_request = queue.popleft()
            if not queue:
                del self._queues[block]
            self._start(block, next_request)
