"""Directory-side coherence controller.

One controller per node serves the directory entries of all pages homed at
that node.  It also plays Stache's "home pages double as local cache pages"
role: loads and stores issued by the home node itself are served through
:meth:`DirectoryController.local_access` with no request/response messages,
though any invalidations they require of *remote* caches are real messages.

Transactions on the same block are serialized: while one transaction is
collecting invalidation acknowledgments, later requests for the block are
queued.  This matches a blocking home directory and keeps every message in
the paper's Table 1 vocabulary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Set

from ..errors import ProtocolError
from .messages import Message, MessageType
from .stache import DEFAULT_OPTIONS, StacheOptions
from .state import DirEntry, DirState

DoneCallback = Callable[[], None]

#: Request types a directory accepts.
_REQUEST_TYPES = frozenset(
    {
        MessageType.GET_RO_REQUEST,
        MessageType.GET_RW_REQUEST,
        MessageType.UPGRADE_REQUEST,
    }
)

#: Acknowledgment types that retire pending invalidations/downgrades.
_ACK_TYPES = frozenset(
    {
        MessageType.INVAL_RO_RESPONSE,
        MessageType.INVAL_RW_RESPONSE,
        MessageType.DOWNGRADE_RESPONSE,
    }
)


@dataclass
class _Request:
    """A directory request waiting to be processed (remote or home-local)."""

    requester: int
    is_write: bool
    was_upgrade: bool
    done_cb: Optional[DoneCallback]  # set only for home-local accesses

    @property
    def is_local(self) -> bool:
        return self.done_cb is not None


@dataclass
class _Txn:
    """An in-flight transaction collecting acknowledgments."""

    request: _Request
    pending_acks: Set[int]
    final_owner: Optional[int]
    final_sharers: Set[int]
    reply_type: Optional[MessageType]


class DirectoryController:
    """Full-map directory FSM for blocks homed at one node."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions = DEFAULT_OPTIONS,
    ) -> None:
        self.node_id = node_id
        self._send = send
        self._options = options
        self._entries: Dict[int, DirEntry] = {}
        self._active: Dict[int, _Txn] = {}
        self._queues: Dict[int, Deque[_Request]] = {}
        # Statistics
        self.transactions = 0
        self.local_hits = 0
        self.invalidations_sent = 0

    def entry_of(self, block: int) -> DirEntry:
        """The directory entry for ``block`` (created on first use)."""
        entry = self._entries.get(block)
        if entry is None:
            entry = DirEntry()
            self._entries[block] = entry
        return entry

    def is_busy(self, block: int) -> bool:
        return block in self._active

    # ------------------------------------------------------------------
    # home-node processor side
    # ------------------------------------------------------------------

    def local_hit(self, block: int, is_write: bool) -> bool:
        """Would a home-node access to ``block`` complete without coherence?"""
        if self.is_busy(block):
            return False
        entry = self.entry_of(block)
        if entry.owner == self.node_id:
            return True
        return not is_write and self.node_id in entry.sharers

    def local_access(
        self, block: int, is_write: bool, done_cb: DoneCallback
    ) -> bool:
        """Issue a home-node load or store against a locally-homed block.

        Returns ``True`` for an immediate hit (caller applies its hit
        latency and invokes ``done_cb`` itself); ``False`` when coherence
        work was required, in which case ``done_cb`` fires on completion.
        """
        if self.local_hit(block, is_write):
            self.local_hits += 1
            return True
        request = _Request(
            requester=self.node_id,
            is_write=is_write,
            was_upgrade=False,
            done_cb=done_cb,
        )
        self._admit(block, request)
        return False

    # ------------------------------------------------------------------
    # network side
    # ------------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        """Process a message delivered to this directory module."""
        if msg.mtype in _REQUEST_TYPES:
            request = _Request(
                requester=msg.src,
                is_write=msg.mtype is not MessageType.GET_RO_REQUEST,
                was_upgrade=msg.mtype is MessageType.UPGRADE_REQUEST,
                done_cb=None,
            )
            self._admit(msg.block, request)
        elif msg.mtype in _ACK_TYPES:
            self._on_ack(msg)
        else:
            raise ProtocolError(
                f"directory at node {self.node_id} received non-directory "
                f"message {msg}"
            )

    # ------------------------------------------------------------------
    # transaction machinery
    # ------------------------------------------------------------------

    def _admit(self, block: int, request: _Request) -> None:
        if self.is_busy(block):
            self._queues.setdefault(block, deque()).append(request)
            return
        self._start(block, request)

    def _start(self, block: int, request: _Request) -> None:
        self.transactions += 1
        entry = self.entry_of(block)
        if self._options.check_invariants:
            entry.check_invariants()

        if request.is_write:
            txn = self._start_write(block, entry, request)
        else:
            txn = self._start_read(block, entry, request)

        if txn.pending_acks:
            self._active[block] = txn
        else:
            self._finish(block, txn)

    def _start_read(
        self, block: int, entry: DirEntry, request: _Request
    ) -> _Txn:
        requester = request.requester
        if self._options.check_invariants and entry.owner == requester:
            raise ProtocolError(
                f"read request for block 0x{block:x} from P{requester}, "
                "which already owns it"
            )
        if requester in entry.sharers and not self._options.finite_caches:
            if self._options.check_invariants:
                raise ProtocolError(
                    f"read request for block 0x{block:x} from P{requester}, "
                    "which already holds a copy"
                )
        # With finite caches, a listed sharer may have silently replaced
        # its copy; re-granting it is harmless.
        pending: Set[int] = set()
        if entry.owner is not None:
            owner = entry.owner
            if self._options.half_migratory:
                # Ask the owner to give up its copy entirely.
                final_sharers = {requester}
                request_type = MessageType.INVAL_RW_REQUEST
            else:
                # DASH-style: demote the owner to shared.
                final_sharers = {owner, requester}
                request_type = MessageType.DOWNGRADE_REQUEST
            if owner == self.node_id:
                # Home's own copy: adjusted silently, no message.
                pass
            else:
                self._send(
                    Message(
                        src=self.node_id,
                        dst=owner,
                        mtype=request_type,
                        block=block,
                    )
                )
                self.invalidations_sent += 1
                pending.add(owner)
        else:
            final_sharers = set(entry.sharers)
            final_sharers.add(requester)
        reply = None if request.is_local else MessageType.GET_RO_RESPONSE
        return _Txn(
            request=request,
            pending_acks=pending,
            final_owner=None,
            final_sharers=final_sharers,
            reply_type=reply,
        )

    def _start_write(
        self, block: int, entry: DirEntry, request: _Request
    ) -> _Txn:
        requester = request.requester
        if self._options.check_invariants and entry.owner == requester:
            raise ProtocolError(
                f"write request for block 0x{block:x} from P{requester}, "
                "which already owns it"
            )
        pending: Set[int] = set()
        requester_was_sharer = requester in entry.sharers
        for sharer in entry.sharers:
            if sharer == requester:
                continue
            if sharer == self.node_id:
                continue  # home's copy adjusted silently
            self._send(
                Message(
                    src=self.node_id,
                    dst=sharer,
                    mtype=MessageType.INVAL_RO_REQUEST,
                    block=block,
                )
            )
            self.invalidations_sent += 1
            pending.add(sharer)
        if entry.owner is not None and entry.owner != self.node_id:
            self._send(
                Message(
                    src=self.node_id,
                    dst=entry.owner,
                    mtype=MessageType.INVAL_RW_REQUEST,
                    block=block,
                )
            )
            self.invalidations_sent += 1
            pending.add(entry.owner)
        if request.is_local:
            reply = None
        elif request.was_upgrade and requester_was_sharer:
            reply = MessageType.UPGRADE_RESPONSE
        else:
            # An upgrade whose requester lost its copy in the meantime is
            # served as a full read-write miss.
            reply = MessageType.GET_RW_RESPONSE
        return _Txn(
            request=request,
            pending_acks=pending,
            final_owner=requester,
            final_sharers=set(),
            reply_type=reply,
        )

    def _on_ack(self, msg: Message) -> None:
        txn = self._active.get(msg.block)
        if txn is None:
            raise ProtocolError(
                f"directory at node {self.node_id} received unexpected ack "
                f"{msg}"
            )
        if msg.src not in txn.pending_acks:
            raise ProtocolError(
                f"directory at node {self.node_id} received duplicate or "
                f"stray ack {msg}"
            )
        txn.pending_acks.discard(msg.src)
        if not txn.pending_acks:
            del self._active[msg.block]
            self._finish(msg.block, txn)

    def _finish(self, block: int, txn: _Txn) -> None:
        entry = self.entry_of(block)
        entry.owner = txn.final_owner
        entry.sharers = txn.final_sharers
        if self._options.check_invariants:
            entry.check_invariants()
        if txn.request.is_local:
            assert txn.request.done_cb is not None
            txn.request.done_cb()
        elif txn.reply_type is not None:
            self._send(
                Message(
                    src=self.node_id,
                    dst=txn.request.requester,
                    mtype=txn.reply_type,
                    block=block,
                )
            )
        # reply_type None on a remote request means another module (a
        # forwarding owner) already answered the requester directly.
        queue = self._queues.get(block)
        if queue:
            next_request = queue.popleft()
            if not queue:
                del self._queues[block]
            self._start(block, next_request)
