"""Discrete-event machine simulator substrate."""

from .engine import Engine
from .machine import Machine, simulate
from .memory_map import Allocator, MemoryMap
from .metrics import METRICS, Metrics, dump_metrics_json
from .network import Network
from .node import Node
from .params import PAPER_PARAMS, SystemParams
from .stats import LatencySummary, summarize_latencies

__all__ = [
    "Allocator",
    "Engine",
    "LatencySummary",
    "METRICS",
    "Machine",
    "Metrics",
    "dump_metrics_json",
    "summarize_latencies",
    "MemoryMap",
    "Network",
    "Node",
    "PAPER_PARAMS",
    "SystemParams",
    "simulate",
]
