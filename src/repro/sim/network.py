"""Point-to-point interconnect model.

Every message pays a constant end-to-end latency (source network
interface + wire + destination network interface, per Table 3).  Constant
latency plus the engine's stable tie-breaking yields FIFO delivery per
source-destination channel, which the serialized directory protocol
relies on.  Arrival-order variation between *different* senders -- the
phenomenon Cosmos must adapt to (Section 3.5 of the paper) -- comes from
processor-side timing jitter, not from network reordering.
"""

from __future__ import annotations

from typing import Callable

from ..obs.log import OBS
from ..obs.spans import SPANS
from ..protocol.messages import Message
from .engine import Engine
from .metrics import METRICS
from .params import SystemParams


class Network:
    """Constant-latency, per-channel-FIFO interconnect."""

    #: Whether this interconnect may deliver messages out of the order
    #: the constant-latency model would (schedule exploration does; see
    #: :mod:`repro.explore`).  The machine arms protocol recovery when a
    #: network declares itself adversarial, exactly as it does for an
    #: active fault profile.
    adversarial = False

    def __init__(
        self,
        engine: Engine,
        params: SystemParams,
        deliver: Callable[[Message], None],
    ) -> None:
        self._engine = engine
        self._latency = params.one_way_message_ns
        self._deliver = deliver
        self.messages_sent = 0
        #: Sends already folded into the ``net.msg.latency_ns`` histogram
        #: by :meth:`flush_metrics`.
        self._folded_sends = 0

    @property
    def latency_ns(self) -> int:
        return self._latency

    @property
    def max_skew_ns(self) -> int:
        """Worst-case extra delay beyond the base latency (none here)."""
        return 0

    def snapshot_state(self) -> dict:
        """Plain-data network state for checkpoints."""
        return {"messages_sent": self.messages_sent}

    def restore_state(self, state: dict) -> None:
        self.messages_sent = state["messages_sent"]
        # End-of-run folds cover the *whole* run, pre-checkpoint segment
        # included (same convention as the machine's access-latency
        # fold), so a resumed run's metrics match the uninterrupted one.
        self._folded_sends = 0

    def send(self, msg: Message) -> None:
        """Inject ``msg``; it is delivered ``latency_ns`` later.

        Metric recording is *not* tied to ``OBS.msg`` here: the latency
        histogram is a ``--metrics-json`` quantity and must be populated
        with observability off.  Every delay is the same constant, so the
        per-send ``METRICS.observe`` is deferred and folded in bulk by
        :meth:`flush_metrics` -- the hot path does one counter bump, one
        (usually O(1)) schedule, and nothing else when tracing is off.
        """
        self.messages_sent += 1
        if OBS.msg:
            OBS.emit(
                self._engine.now,
                "net",
                "send",
                msg.src,
                msg.block,
                {
                    "dst": msg.dst,
                    "mtype": msg.mtype.name,
                    "delay_ns": self._latency,
                },
            )
        if SPANS.enabled and msg.txn is not None:
            SPANS.xfer(
                msg.txn, msg.src, msg.dst, msg.mtype.value, self._latency
            )
        self._engine.schedule_fifo(self._latency, self._deliver, msg)

    def flush_metrics(self) -> None:
        """Fold deferred per-send latency samples into ``METRICS``.

        Equivalent to one ``METRICS.observe("net.msg.latency_ns", L)``
        per send since the last flush (the histogram is sample-order
        independent).  Called by ``Machine.finish_workload``; safe to
        call repeatedly.
        """
        unfolded = self.messages_sent - self._folded_sends
        if unfolded:
            METRICS.observe_many(
                "net.msg.latency_ns", self._latency, unfolded
            )
            self._folded_sends = self.messages_sent
