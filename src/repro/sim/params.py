"""Simulated system parameters (paper Table 3).

The paper's target is a 16-node machine with single-processor nodes; the
parameters below default to the values of Table 3.  Cosmos' prediction
accuracy is insensitive to most of them (Section 5 notes that stretching
the network latency from 40 ns to 1 us barely moves the prediction rates;
``benchmarks/bench_sensitivity.py`` reproduces that claim), but they shape
message timing and therefore interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class SystemParams:
    """Machine parameters, defaulting to the paper's Table 3."""

    n_nodes: int = 16
    processor_ghz: float = 1.0
    cache_block_bytes: int = 64
    cache_bytes: int = 1 << 20  # one megabyte
    cache_associativity: int = 1  # direct-mapped
    memory_access_ns: int = 120
    bus_protocol: str = "MOESI"
    bus_width_bits: int = 256
    bus_clock_mhz: int = 250
    network_message_bytes: int = 256
    network_latency_ns: int = 40
    network_interface_ns: int = 60
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError("need at least two nodes for coherence traffic")
        if self.cache_block_bytes & (self.cache_block_bytes - 1):
            raise ConfigError("cache block size must be a power of two")
        if self.page_bytes % self.cache_block_bytes:
            raise ConfigError("page size must be a multiple of the block size")

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.cache_block_bytes

    @property
    def one_way_message_ns(self) -> int:
        """End-to-end latency of one coherence message.

        Source network interface + wire + destination network interface.
        """
        return 2 * self.network_interface_ns + self.network_latency_ns

    def describe(self) -> str:
        """Render the parameters as an aligned table (paper Table 3)."""
        rows = [
            ("Number of parallel machine nodes", str(self.n_nodes)),
            ("Processor speed", f"{self.processor_ghz:g} GHz"),
            ("Cache block size", f"{self.cache_block_bytes} bytes"),
            ("Cache size", f"{self.cache_bytes // (1 << 20)} megabyte"),
            (
                "Cache associativity",
                "direct-mapped"
                if self.cache_associativity == 1
                else f"{self.cache_associativity}-way",
            ),
            ("Main memory access time", f"{self.memory_access_ns} ns"),
            ("Memory bus coherence protocol", self.bus_protocol),
            ("Memory bus width", f"{self.bus_width_bits} bits"),
            ("Memory bus clock time", f"{self.bus_clock_mhz} MHz"),
            ("Network message size", f"{self.network_message_bytes} bytes"),
            ("Network latency", f"{self.network_latency_ns} ns"),
            ("Network Interface access time", f"{self.network_interface_ns} ns"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


#: The exact configuration of the paper's Table 3.
PAPER_PARAMS = SystemParams()
