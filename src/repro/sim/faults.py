"""Seeded fault injection for the interconnect.

The base :class:`~repro.sim.network.Network` is an idealized wire:
constant latency, no loss, per-channel FIFO.  Real interconnects give
none of those guarantees, and a protocol that silently depends on them
is fragile.  :class:`FaultyNetwork` wraps the same ``send()`` interface
with a :class:`FaultProfile` -- drop probability, duplication
probability, per-message latency jitter, and a bounded reorder window --
all driven by one ``random.Random(fault_seed)`` stream so any
``(workload seed, fault profile, fault seed)`` combination replays
bit-for-bit.

The protocol side of the story lives in
:mod:`repro.protocol.recovery` and the controllers: sequence-numbered
requests, timeout/retry, and idempotent re-grants turn at-most-once
delivery into eventual completion.  The :class:`~repro.sim.machine.Machine`
couples the two -- a machine built with an active fault profile enables
recovery automatically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Callable, Dict

from ..errors import ConfigError
from ..obs.log import OBS
from ..obs.spans import SPANS
from ..protocol.messages import Message
from .engine import Engine
from .metrics import METRICS
from .params import SystemParams


@dataclass(frozen=True)
class FaultProfile:
    """How an unreliable interconnect misbehaves.

    All probabilities are per message send (a duplicated message's extra
    copy is itself subject to jitter and reordering but is never dropped
    or re-duplicated, keeping the fault algebra simple and bounded).
    """

    #: Probability a message is silently dropped.
    drop: float = 0.0
    #: Probability a message is delivered twice.
    dup: float = 0.0
    #: Probability a message draws an extra reorder delay.
    reorder: float = 0.0
    #: Upper bound (ns) of the extra reorder delay; the delay is drawn
    #: uniformly from [1, window], so reordering is bounded.
    window: int = 400
    #: Upper bound (ns) of always-on per-message latency jitter
    #: (drawn uniformly from [0, jitter]; 0 disables jitter).
    jitter: int = 0
    #: Probability a message suffers a rare long-tail latency spike --
    #: the occasional multi-round-trip stall a congested or flapping
    #: link produces, far beyond ordinary jitter.  Spiked messages are
    #: still delivered (never dropped); the serve chaos suite and
    #: ``repro-trace simulate --fault-profile spike`` both lean on this.
    spike: float = 0.0
    #: Magnitude ceiling (ns) of a latency spike; a spiked message draws
    #: its extra delay uniformly from [spike_ns // 2 + 1, spike_ns], so
    #: every spike is genuinely long-tail rather than jitter-sized.
    spike_ns: int = 4_000
    #: Probability, per predictor observation, that a random bit flips
    #: in a stored MHT/PHT entry (soft-error model for the predictor
    #: SRAM; see :mod:`repro.core.corruption`).
    flip: float = 0.0
    #: Probability, per predictor observation, that a whole MHT entry
    #: (the block's history and patterns) is lost outright.
    loss: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "reorder", "spike", "flip", "loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"fault profile field {name!r}: probability {value} "
                    f"is outside [0, 1]"
                )
        if self.window < 1:
            raise ConfigError(
                f"fault profile field 'window': reorder window "
                f"{self.window} ns must be >= 1"
            )
        if self.jitter < 0:
            raise ConfigError(
                f"fault profile field 'jitter': {self.jitter} ns is "
                f"negative; jitter must be >= 0"
            )
        if self.spike_ns < 2:
            raise ConfigError(
                f"fault profile field 'spike_ns': spike ceiling "
                f"{self.spike_ns} ns must be >= 2 so a spike always "
                f"exceeds half its own ceiling"
            )

    @property
    def is_active(self) -> bool:
        """Whether this profile perturbs the network's delivery at all.

        Predictor corruption (``flip``/``loss``) deliberately does not
        count: it perturbs predictor state, not message delivery, so a
        corruption-only profile keeps the timing-exact reliable
        interconnect (and its golden traces) untouched.
        """
        return bool(
            self.drop or self.dup or self.reorder or self.jitter or self.spike
        )

    @property
    def corrupts_predictor(self) -> bool:
        """Whether this profile injects predictor-state corruption."""
        return bool(self.flip or self.loss)

    @property
    def max_skew_ns(self) -> int:
        """Worst-case extra delay any single message can suffer."""
        return (
            self.jitter
            + (self.window if self.reorder else 0)
            + (self.spike_ns if self.spike else 0)
        )

    def spec(self) -> str:
        """Canonical ``key=value,...`` string; ``parse`` round-trips it."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value:g}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """Parse a preset name or a ``key=value,...`` profile string.

        Presets: ``none``, ``light``, ``moderate``, ``heavy``.  Explicit
        fields override nothing -- a spec is either a preset or a field
        list, e.g. ``drop=0.05,dup=0.02,reorder=0.2,window=300``.
        """
        text = spec.strip().lower()
        preset = PRESETS.get(text)
        if preset is not None:
            return preset
        kwargs: Dict[str, object] = {}
        valid = {f.name for f in fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    f"bad fault profile component {part!r}; expected "
                    f"key=value with keys {sorted(valid)} or a preset "
                    f"({', '.join(sorted(PRESETS))})"
                )
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in valid:
                raise ConfigError(
                    f"unknown fault profile field {name!r}; "
                    f"expected one of {sorted(valid)}"
                )
            try:
                value: object = (
                    int(raw)
                    if name in ("window", "jitter", "spike_ns")
                    else float(raw)
                )
            except ValueError:
                raise ConfigError(
                    f"bad value for fault profile field {name}: {raw!r}"
                ) from None
            kwargs[name] = value
        return cls(**kwargs)


#: Named profiles for CLIs and tests.
PRESETS: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "light": FaultProfile(drop=0.01, dup=0.005, reorder=0.05, jitter=10),
    "moderate": FaultProfile(drop=0.05, dup=0.02, reorder=0.15, jitter=20),
    "heavy": FaultProfile(drop=0.15, dup=0.05, reorder=0.30, jitter=40),
    # Rare long-tail latency spikes on an otherwise healthy link: no
    # loss, mild jitter, and a 2% chance of a multi-microsecond stall.
    "spike": FaultProfile(spike=0.02, spike_ns=4_000, jitter=10),
}


class FaultyNetwork:
    """An interconnect that drops, duplicates, delays, and reorders.

    Drop-in replacement for :class:`~repro.sim.network.Network`: same
    constructor head, same ``send()`` entry point, same ``latency_ns``
    and ``messages_sent`` attributes.  Fault decisions are drawn from a
    private ``random.Random(fault_seed)``, so the engine's determinism
    guarantee extends to faulty runs: the same (workload, seed, profile,
    fault seed) tuple replays identically, anywhere.
    """

    #: A faulty interconnect jitters and reorders, but the *protocol*
    #: seam that arms recovery keys off the fault profile itself (see
    #: :class:`~repro.sim.machine.Machine`); ``adversarial`` marks
    #: networks that reorder by *choice* rather than by chance.
    adversarial = False

    def __init__(
        self,
        engine: Engine,
        params: SystemParams,
        deliver: Callable[[Message], None],
        profile: FaultProfile,
        fault_seed: int = 0,
    ) -> None:
        self._engine = engine
        self._latency = params.one_way_message_ns
        self._deliver = deliver
        self.profile = profile
        self.fault_seed = fault_seed
        self._rng = random.Random(fault_seed)
        self.messages_sent = 0
        #: Instance-level fault accounting (also mirrored into METRICS
        #: under ``net.fault.*`` so ``--metrics-json`` reports totals).
        self.fault_counts: Dict[str, int] = {
            "sent": 0,
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "spiked": 0,
        }

    @property
    def latency_ns(self) -> int:
        return self._latency

    @property
    def max_skew_ns(self) -> int:
        """Worst-case extra delay any single message can suffer."""
        return self.profile.max_skew_ns

    def _count(self, name: str) -> None:
        self.fault_counts[name] += 1
        METRICS.inc(f"net.fault.{name}")

    def _delay_for(self, msg: Message) -> int:
        """One delivery delay: base latency, jitter, maybe a reorder bump."""
        delay = self._latency
        if self.profile.jitter:
            delay += self._rng.randrange(0, self.profile.jitter + 1)
        if self.profile.reorder and self._rng.random() < self.profile.reorder:
            bump = self._rng.randrange(1, self.profile.window + 1)
            delay += bump
            self._count("reordered")
            if OBS.proto:
                OBS.emit(
                    self._engine.now,
                    "net",
                    "reorder",
                    msg.src,
                    msg.block,
                    {"dst": msg.dst, "extra_ns": bump},
                )
        # Spike last, and only when the profile enables it: profiles
        # without spikes consume exactly the RNG stream they always did,
        # so every pre-spike golden trace stays byte-identical.
        if self.profile.spike and self._rng.random() < self.profile.spike:
            bump = self._rng.randrange(
                self.profile.spike_ns // 2 + 1, self.profile.spike_ns + 1
            )
            delay += bump
            self._count("spiked")
            if OBS.proto:
                OBS.emit(
                    self._engine.now,
                    "net",
                    "spike",
                    msg.src,
                    msg.block,
                    {"dst": msg.dst, "extra_ns": bump},
                )
        return delay

    def send(self, msg: Message) -> None:
        """Inject ``msg``, subject to the fault profile."""
        self.messages_sent += 1
        self._count("sent")
        if self.profile.drop and self._rng.random() < self.profile.drop:
            self._count("dropped")
            if OBS.proto:
                OBS.emit(
                    self._engine.now,
                    "net",
                    "drop",
                    msg.src,
                    msg.block,
                    {"dst": msg.dst, "mtype": msg.mtype.name},
                )
            if SPANS.enabled and msg.txn is not None:
                SPANS.drop(msg.txn, msg.src, msg.dst, msg.mtype.value)
            return
        delay = self._delay_for(msg)
        # Metrics are not an observability feature: the latency histogram
        # (here with real per-message jitter, so no constant-fold like
        # Network's) must be populated with OBS off.
        METRICS.observe("net.msg.latency_ns", delay)
        if OBS.msg:
            OBS.emit(
                self._engine.now,
                "net",
                "send",
                msg.src,
                msg.block,
                {
                    "dst": msg.dst,
                    "mtype": msg.mtype.name,
                    "delay_ns": delay,
                },
            )
        if SPANS.enabled and msg.txn is not None:
            SPANS.xfer(msg.txn, msg.src, msg.dst, msg.mtype.value, delay)
        self._engine.schedule(delay, self._deliver_one, msg)
        if self.profile.dup and self._rng.random() < self.profile.dup:
            self._count("duplicated")
            dup_delay = self._delay_for(msg)
            if OBS.proto:
                OBS.emit(
                    self._engine.now,
                    "net",
                    "dup",
                    msg.src,
                    msg.block,
                    {"dst": msg.dst, "extra_delay_ns": dup_delay},
                )
            if SPANS.enabled and msg.txn is not None:
                SPANS.xfer(
                    msg.txn,
                    msg.src,
                    msg.dst,
                    msg.mtype.value,
                    dup_delay,
                    dup=True,
                )
            self._engine.schedule(dup_delay, self._deliver_one, msg)

    def _deliver_one(self, msg: Message) -> None:
        self._count("delivered")
        self._deliver(msg)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data fault-network state, including the RNG stream.

        Capturing ``random.Random.getstate()`` is what makes a restored
        faulty run replay bit-for-bit: the same drop/dup/jitter draws
        happen after resume as would have happened uninterrupted.
        """
        return {
            "messages_sent": self.messages_sent,
            "fault_counts": dict(self.fault_counts),
            "rng": self._rng.getstate(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self.messages_sent = state["messages_sent"]
        self.fault_counts.update(state["fault_counts"])
        self._rng.setstate(state["rng"])
