"""A machine node: one processor, one cache module, one directory module."""

from __future__ import annotations

from typing import Callable, Optional

from ..protocol.cache_ctrl import CacheController
from ..protocol.directory_ctrl import DirectoryController
from ..protocol.messages import Message, Role
from ..protocol.origin import OriginDirectoryController
from ..protocol.recovery import RecoveryConfig, Scheduler
from ..protocol.stache import StacheOptions


class Node:
    """One single-processor node of the simulated machine."""

    def __init__(
        self,
        node_id: int,
        send: Callable[[Message], None],
        options: StacheOptions,
        *,
        recovery: Optional[RecoveryConfig] = None,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        self.node_id = node_id
        self.cache = CacheController(
            node_id, send, options, recovery=recovery, schedule=schedule
        )
        directory_cls = (
            OriginDirectoryController if options.forwarding
            else DirectoryController
        )
        self.directory = directory_cls(
            node_id, send, options, recovery=recovery, schedule=schedule
        )

    def receive(self, msg: Message) -> None:
        """Dispatch a delivered message to the cache or directory module."""
        if msg.role_at_receiver is Role.DIRECTORY:
            self.directory.handle_message(msg)
        else:
            self.cache.handle_message(msg)
