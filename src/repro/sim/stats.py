"""Access-latency statistics from machine runs.

The machine records ``(latency_ns, was_coherence_miss)`` for every shared
access it issues.  These summaries quantify what prediction actually buys
at the memory-system level: the Section 4.4 model's ``f`` (fraction of a
predicted message's delay still paid) has its empirical counterpart in
the miss-latency reduction of a predictive machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: One sample: (latency in ns, True when the access missed).
LatencySample = Tuple[int, bool]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of a set of access latencies."""

    count: int
    mean_ns: float
    p50_ns: int
    p95_ns: int
    max_ns: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean_ns:.0f}ns "
            f"p50={self.p50_ns} p95={self.p95_ns} max={self.max_ns}"
        )


_EMPTY = LatencySummary(count=0, mean_ns=0.0, p50_ns=0, p95_ns=0, max_ns=0)


def _percentile(sorted_values: Sequence[int], fraction: float) -> int:
    """Nearest-rank percentile (rank rounded half up).

    Flooring the rank systematically under-reports upper percentiles:
    with 20 samples, p95 must pick the 19th index (the 20th value), not
    the 18th, and p50 of [10, 20] is 20 under nearest-rank, not 10.
    """
    n = len(sorted_values)
    index = min(n - 1, int(fraction * n + 0.5))
    return sorted_values[index]


def summarize_latencies(
    samples: Iterable[LatencySample],
    misses_only: bool = False,
) -> LatencySummary:
    """Summarize access latencies (optionally only coherence misses)."""
    values: List[int] = [
        latency
        for latency, was_miss in samples
        if was_miss or not misses_only
    ]
    if not values:
        return _EMPTY
    values.sort()
    return LatencySummary(
        count=len(values),
        mean_ns=sum(values) / len(values),
        p50_ns=_percentile(values, 0.50),
        p95_ns=_percentile(values, 0.95),
        max_ns=values[-1],
    )
