"""Lightweight run-time metrics: counters and wall-time timers.

The parallel experiment runner and the on-disk trace cache both need to
answer "where did the time go?" without dragging in a profiler.  This
module keeps one process-global :class:`Metrics` registry (``METRICS``)
of named counters and accumulating timers.  Worker processes each have
their own registry (they are separate interpreters); the pool ships each
worker's :meth:`Metrics.snapshot` back with its result and the parent
folds them together with :meth:`Metrics.merge`, so ``--metrics-json``
reports totals across every shard.

Conventions for names: dotted lowercase, ``<layer>.<event>`` --
``trace.cache.hit``, ``trace.simulate``, ``shard.experiment``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union


class Metrics:
    """A registry of named counters and accumulating wall-time timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        #: name -> [total_seconds, invocation_count]
        self._timers: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; return the new value."""
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold ``seconds`` of wall time into timer ``name``."""
        entry = self._timers.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += count

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        return self._timers.get(name, [0.0, 0])[0]

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able copy: counters plus per-timer seconds and count."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "timers": {
                name: {"seconds": entry[0], "count": entry[1]}
                for name, entry in sorted(self._timers.items())
            },
        }

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            self.add_time(name, entry["seconds"], entry.get("count", 1))

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()


def dump_metrics_json(
    snapshot: Dict[str, dict], path: Union[str, Path], **extra: object
) -> None:
    """Write a metrics snapshot (plus ``extra`` top-level keys) as JSON."""
    payload = dict(snapshot)
    payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: The process-global registry.  Library code records here; entry points
#: (the experiment runner, benchmarks) reset/snapshot it around a run.
METRICS = Metrics()
