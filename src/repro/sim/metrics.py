"""Lightweight run-time metrics: counters, wall-time timers, histograms.

The parallel experiment runner and the on-disk trace cache both need to
answer "where did the time go?" without dragging in a profiler.  This
module keeps one process-global :class:`Metrics` registry (``METRICS``)
of named counters, accumulating timers, and log-bucketed histograms.
Worker processes each have their own registry (they are separate
interpreters); the pool ships each worker's :meth:`Metrics.snapshot`
back with its result and the parent folds them together with
:meth:`Metrics.merge`, so ``--metrics-json`` reports totals across every
shard.  All three kinds merge commutatively and associatively -- fold
order never changes the result (property-tested in
``tests/sim/test_metrics.py``).

Histograms bucket values by powers of two (bucket ``k`` counts values in
``(2^(k-1), 2^k]``, with a dedicated bucket for values <= 0), which keeps
them tiny, mergeable by bucket-wise addition, and honest over the 4+
decades a latency distribution spans.  Distribution-shaped quantities --
message latency, queue depth, retry backoff, per-block PHT size -- go
here; see ``docs/observability.md`` for which sites record what.

Conventions for names: dotted lowercase, ``<layer>.<event>`` --
``trace.cache.hit``, ``trace.simulate``, ``sim.access.latency_ns``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Top-level snapshot sections; ``dump_metrics_json`` refuses ``extra``
#: keys that would clobber them.
RESERVED_KEYS = frozenset({"counters", "timers", "histograms"})


def _bucket_of(value: Union[int, float]) -> int:
    """The histogram bucket index for ``value``.

    Bucket ``k`` (k >= 1) holds values in ``(2^(k-1), 2^k]``; bucket 0
    holds everything <= 1 (including zero and negatives, which real
    latency/depth streams produce at the edges).
    """
    if value <= 1:
        return 0
    return int(value - 1).bit_length()


class Histogram:
    """A log-bucketed (power-of-two) distribution summary."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket index -> count; sparse.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def observe_many(self, value: Union[int, float], count: int) -> None:
        """Record ``count`` identical samples in one bucket update.

        Exactly equivalent to ``count`` calls to :meth:`observe` (the
        histogram is sample-order independent); lets hot paths with a
        constant-valued stream defer recording to one end-of-run fold.
        """
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the upper edge of the bucket the
        rank falls in (exact to within the bucket's factor of two)."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return float(2**bucket) if bucket else 1.0
        return float(self.max if self.max is not None else 0.0)

    def snapshot(self) -> dict:
        """JSON-able summary; bucket keys become strings (JSON objects)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(bucket): count
                for bucket, count in sorted(self.buckets.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Tolerates partial snapshots the way timer merge tolerates a
        missing ``count``: absent fields contribute nothing.
        """
        self.count += snapshot.get("count", 0)
        self.total += snapshot.get("sum", 0.0)
        for edge in ("min", "max"):
            theirs = snapshot.get(edge)
            if theirs is None:
                continue
            ours = getattr(self, edge)
            if ours is None:
                setattr(self, edge, theirs)
            elif edge == "min":
                self.min = min(ours, theirs)
            else:
                self.max = max(ours, theirs)
        for bucket, count in snapshot.get("buckets", {}).items():
            index = int(bucket)
            self.buckets[index] = self.buckets.get(index, 0) + count


class Metrics:
    """A registry of named counters, timers, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        #: name -> [total_seconds, invocation_count]
        self._timers: Dict[str, List[float]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name``; return the new value."""
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold ``seconds`` of wall time into timer ``name``."""
        entry = self._timers.setdefault(name, [0.0, 0])
        entry[0] += seconds
        entry[1] += count

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name``.

        A body that raises still records its elapsed time (failed work
        is not free), but additionally bumps an ``<name>.error`` counter
        so failed and successful invocations are distinguishable in the
        snapshot.
        """
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            self.inc(f"{name}.error")
            raise
        finally:
            self.add_time(name, time.perf_counter() - start)

    def observe(self, name: str, value: Union[int, float]) -> None:
        """Record one sample into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self._histograms[name] = histogram
        histogram.observe(value)

    def observe_many(
        self, name: str, value: Union[int, float], count: int
    ) -> None:
        """Record ``count`` identical samples into histogram ``name``."""
        if count <= 0:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self._histograms[name] = histogram
        histogram.observe_many(value, count)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        return self._timers.get(name, [0.0, 0])[0]

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able copy: counters, timers, and histograms.

        The ``histograms`` key is present only when at least one
        histogram was recorded, keeping pre-histogram consumers (and
        old snapshots fed to :meth:`merge`) working unchanged.
        """
        snapshot: Dict[str, dict] = {
            "counters": dict(sorted(self._counters.items())),
            "timers": {
                name: {"seconds": entry[0], "count": entry[1]}
                for name, entry in sorted(self._timers.items())
            },
        }
        if self._histograms:
            snapshot["histograms"] = {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            }
        return snapshot

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, entry in snapshot.get("timers", {}).items():
            self.add_time(name, entry["seconds"], entry.get("count", 1))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram()
                self._histograms[name] = histogram
            histogram.merge(data)

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()


def dump_metrics_json(
    snapshot: Dict[str, dict], path: Union[str, Path], **extra: object
) -> None:
    """Write a metrics snapshot (plus ``extra`` top-level keys) as JSON.

    ``extra`` keys that would clobber the snapshot's own sections
    (:data:`RESERVED_KEYS`) are rejected -- a silent collision would
    overwrite the very data being dumped.  The output path's parent
    directories are created as needed.
    """
    collisions = RESERVED_KEYS.intersection(extra)
    if collisions:
        raise ValueError(
            f"extra key(s) {sorted(collisions)} collide with metric "
            "snapshot sections; pick different top-level names"
        )
    payload = dict(snapshot)
    payload.update(extra)
    from ..ioutil import atomic_write

    with atomic_write(path) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


#: The process-global registry.  Library code records here; entry points
#: (the experiment runner, benchmarks) reset/snapshot it around a run.
METRICS = Metrics()
