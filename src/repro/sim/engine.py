"""A minimal discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` events.
Ties in time are broken by insertion order (the monotonically increasing
sequence number), which gives the simulator two properties the protocol
relies on:

* determinism -- a run with the same inputs replays identically, and
* per-channel FIFO -- two messages sent over a constant-latency network in
  some order are delivered in the same order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError


class Engine:
    """Discrete-event scheduler with nanosecond-granularity integer time."""

    def __init__(self) -> None:
        self._queue: list = []
        self._seq = itertools.count()
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the engine has dispatched."""
        return self._events_processed

    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), callback, args)
        )

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), callback, args))

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            time, _seq, callback, args = heapq.heappop(self._queue)
            self._now = time
            callback(*args)
            dispatched += 1
            self._events_processed += 1
        return dispatched

    def pending(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)
