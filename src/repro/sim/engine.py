"""A minimal discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` events.
Ties in time are broken by insertion order (the monotonically increasing
sequence number), which gives the simulator two properties the protocol
relies on:

* determinism -- a run with the same inputs replays identically, and
* per-channel FIFO -- two messages sent over a constant-latency network in
  some order are delivered in the same order.

Alongside the heap there is a second, cheaper lane: :meth:`schedule_fifo`
appends to a plain deque when the new event's time is >= the deque's
tail (the constant-latency network always qualifies -- its delivery
times are ``now + L`` with ``now`` nondecreasing).  The dispatch loop
merges the two lanes by ``(time, seq)``, so ordering is *identical* to
pushing everything through the heap; the bulk of simulator events (one
delivery per message) just skip the ``heappush``/``heappop`` log-factor.

Simulated time is an integer nanosecond count, enforced at the
scheduling boundary: a float delay would silently drift event ordering
(and break replay determinism) long before anything crashed, so
:meth:`schedule` / :meth:`schedule_at` reject non-``int`` times with an
error naming the offending callback.

The scheduler state (clock, sequence counter, dispatch count) is plain
data so a quiescent engine -- empty queue -- can be captured into a
checkpoint and restored exactly (see :mod:`repro.sim.checkpoint`).
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import chain
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ReproError, SimulationError


def _callback_name(callback: Callable[..., None]) -> str:
    """A human-readable name for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = getattr(callback, "__name__", None)
    return name if name is not None else repr(callback)


class Engine:
    """Discrete-event scheduler with nanosecond-granularity integer time."""

    def __init__(self) -> None:
        self._queue: list = []
        #: The append-only fast lane (see module docstring); entries have
        #: the same ``(time, seq, callback, args)`` shape as the heap and
        #: are kept sorted by construction.
        self._fifo: deque = deque()
        self._next_seq = 0
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the engine has dispatched."""
        return self._events_processed

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an integer nanosecond count, got "
                f"{type(delay).__name__} {delay!r} scheduling "
                f"{_callback_name(callback)}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, self._take_seq(), callback, args)
        )

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if type(time) is not int:
            raise SimulationError(
                f"time must be an integer nanosecond count, got "
                f"{type(time).__name__} {time!r} scheduling "
                f"{_callback_name(callback)}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time, self._take_seq(), callback, args))

    def schedule_fifo(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule`, routed through the append-only lane.

        Correct for any delay (an event earlier than the lane's tail
        falls back to the heap), but the O(1) fast path only pays off
        when the caller's delivery times are nondecreasing -- which a
        constant-latency network guarantees.
        """
        if type(delay) is not int:
            raise SimulationError(
                f"delay must be an integer nanosecond count, got "
                f"{type(delay).__name__} {delay!r} scheduling "
                f"{_callback_name(callback)}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        fifo = self._fifo
        time = self._now + delay
        if not fifo or time >= fifo[-1][0]:
            fifo.append((time, self._take_seq(), callback, args))
        else:
            heapq.heappush(
                self._queue, (time, self._take_seq(), callback, args)
            )

    def run(
        self,
        max_events: Optional[int] = None,
        raise_if_pending: bool = False,
    ) -> int:
        """Run until the event queue drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.  With
        ``raise_if_pending=True``, exhausting ``max_events`` while events
        still wait raises :class:`SimulationError` describing the head of
        the queue (time and callback of the next few events), so a
        budget-capped run dies with a diagnosis instead of a bare count.
        """
        if max_events is None:
            return self._run_to_exhaustion()
        dispatched = 0
        while self._queue or self._fifo:
            if dispatched >= max_events:
                if raise_if_pending:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted with "
                        f"{self.pending()} events pending at t={self._now}; "
                        f"next up: {self.describe_pending()}"
                    )
                break
            time, seq, callback, args = self._pop_next()
            self._now = time
            try:
                callback(*args)
            except ReproError as exc:
                # Preserve the concrete type (a ProtocolError stays a
                # ProtocolError for callers that classify failures) but
                # stamp the dispatch context onto the exception so a
                # failing callback names the exact event that raised.
                self._attach_event_context(exc, time, seq, callback)
                raise
            except Exception as exc:
                raise SimulationError(
                    f"callback {_callback_name(callback)} raised "
                    f"{type(exc).__name__} at t={time} (event seq {seq}): "
                    f"{exc}"
                ) from exc
            dispatched += 1
            self._events_processed += 1
        return dispatched

    def _pop_next(self) -> tuple:
        """Pop the globally next event across both lanes.

        Sequence numbers are unique, so the ``(time, seq, ...)`` tuple
        comparison decides on ``(time, seq)`` alone and never compares
        callbacks.
        """
        queue = self._queue
        fifo = self._fifo
        if fifo:
            if queue and queue[0] < fifo[0]:
                return heapq.heappop(queue)
            return fifo.popleft()
        return heapq.heappop(queue)

    def _run_to_exhaustion(self) -> int:
        """The unbudgeted dispatch loop, monomorphic over both lanes.

        Same ordering and error handling as the budgeted loop above, with
        the per-event budget guard and ``pending`` bookkeeping hoisted
        out; ``try`` is zero-cost on the no-raise path (Python >= 3.11).
        """
        queue = self._queue
        fifo = self._fifo
        heappop = heapq.heappop
        popleft = fifo.popleft
        dispatched = 0
        try:
            while True:
                if fifo:
                    if queue and queue[0] < fifo[0]:
                        event = heappop(queue)
                    else:
                        event = popleft()
                elif queue:
                    event = heappop(queue)
                else:
                    break
                self._now = event[0]
                try:
                    event[2](*event[3])
                except ReproError as exc:
                    self._attach_event_context(
                        exc, event[0], event[1], event[2]
                    )
                    raise
                except Exception as exc:
                    raise SimulationError(
                        f"callback {_callback_name(event[2])} raised "
                        f"{type(exc).__name__} at t={event[0]} "
                        f"(event seq {event[1]}): {exc}"
                    ) from exc
                dispatched += 1
        finally:
            # A raising callback's own event is not counted (it never
            # completed), matching the budgeted loop; everything
            # dispatched before it is folded in exactly once.
            self._events_processed += dispatched
        return dispatched

    def _attach_event_context(
        self, exc: BaseException, time: int, seq: int,
        callback: Callable[..., None],
    ) -> None:
        """Record the dispatching event on an in-flight exception."""
        context = {
            "time_ns": time,
            "seq": seq,
            "callback": _callback_name(callback),
        }
        # First raiser wins: a nested engine (none today) or a re-raise
        # through several drains must keep the innermost event.
        if getattr(exc, "event_context", None) is None:
            exc.event_context = context  # type: ignore[attr-defined]
            add_note = getattr(exc, "add_note", None)
            if add_note is not None:  # PEP 678, Python >= 3.11
                add_note(
                    f"while dispatching {context['callback']} at "
                    f"t={time} (event seq {seq})"
                )

    def pending(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue) + len(self._fifo)

    def iter_pending(self):
        """Iterate pending events as ``(time, seq, callback, args)``.

        Non-destructive and in storage (not dispatch) order.  Used by the
        model checker's abstraction function, which must see messages
        whose delivery is scheduled but has not run yet.
        """
        return chain(self._queue, self._fifo)

    def peek_events(self, limit: int = 5) -> List[Tuple[int, str]]:
        """The next ``limit`` pending events as ``(time, callback name)``.

        Non-destructive: used by error messages, the watchdog's forensic
        bundle, and quiescence diagnostics to show *what* a stuck run is
        still waiting on.
        """
        head = heapq.nsmallest(limit, chain(self._queue, self._fifo))
        return [(time, _callback_name(cb)) for time, _seq, cb, _args in head]

    def describe_pending(self, limit: int = 5) -> str:
        """One-line summary of the head of the event queue."""
        count = self.pending()
        if not count:
            return "(queue empty)"
        parts = [
            f"t={time} {name}" for time, name in self.peek_events(limit)
        ]
        suffix = f" ... +{count - limit} more" if count > limit else ""
        return "; ".join(parts) + suffix

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture scheduler state; only legal when the queue is empty.

        Callbacks are live object references and deliberately never
        serialized -- checkpoints are taken at quiescent points where no
        events are in flight, which the simulator guarantees between
        workload phases.
        """
        if self._queue or self._fifo:
            raise SimulationError(
                f"cannot snapshot a non-quiescent engine: "
                f"{self.pending()} events pending "
                f"({self.describe_pending()})"
            )
        return {
            "now": self._now,
            "next_seq": self._next_seq,
            "events_processed": self._events_processed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore scheduler state captured by :meth:`snapshot_state`."""
        if self._queue or self._fifo:
            raise SimulationError(
                "cannot restore into an engine with pending events"
            )
        self._now = state["now"]
        self._next_seq = state["next_seq"]
        self._events_processed = state["events_processed"]
