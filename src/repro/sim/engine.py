"""A minimal discrete-event simulation engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` events.
Ties in time are broken by insertion order (the monotonically increasing
sequence number), which gives the simulator two properties the protocol
relies on:

* determinism -- a run with the same inputs replays identically, and
* per-channel FIFO -- two messages sent over a constant-latency network in
  some order are delivered in the same order.

The scheduler state (clock, sequence counter, dispatch count) is plain
data so a quiescent engine -- empty queue -- can be captured into a
checkpoint and restored exactly (see :mod:`repro.sim.checkpoint`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import ReproError, SimulationError


def _callback_name(callback: Callable[..., None]) -> str:
    """A human-readable name for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = getattr(callback, "__name__", None)
    return name if name is not None else repr(callback)


class Engine:
    """Discrete-event scheduler with nanosecond-granularity integer time."""

    def __init__(self) -> None:
        self._queue: list = []
        self._next_seq = 0
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the engine has dispatched."""
        return self._events_processed

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, self._take_seq(), callback, args)
        )

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time, self._take_seq(), callback, args))

    def run(
        self,
        max_events: Optional[int] = None,
        raise_if_pending: bool = False,
    ) -> int:
        """Run until the event queue drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.  With
        ``raise_if_pending=True``, exhausting ``max_events`` while events
        still wait raises :class:`SimulationError` describing the head of
        the queue (time and callback of the next few events), so a
        budget-capped run dies with a diagnosis instead of a bare count.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                if raise_if_pending:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted with "
                        f"{len(self._queue)} events pending at t={self._now}; "
                        f"next up: {self.describe_pending()}"
                    )
                break
            time, seq, callback, args = heapq.heappop(self._queue)
            self._now = time
            try:
                callback(*args)
            except ReproError as exc:
                # Preserve the concrete type (a ProtocolError stays a
                # ProtocolError for callers that classify failures) but
                # stamp the dispatch context onto the exception so a
                # failing callback names the exact event that raised.
                self._attach_event_context(exc, time, seq, callback)
                raise
            except Exception as exc:
                raise SimulationError(
                    f"callback {_callback_name(callback)} raised "
                    f"{type(exc).__name__} at t={time} (event seq {seq}): "
                    f"{exc}"
                ) from exc
            dispatched += 1
            self._events_processed += 1
        return dispatched

    def _attach_event_context(
        self, exc: BaseException, time: int, seq: int,
        callback: Callable[..., None],
    ) -> None:
        """Record the dispatching event on an in-flight exception."""
        context = {
            "time_ns": time,
            "seq": seq,
            "callback": _callback_name(callback),
        }
        # First raiser wins: a nested engine (none today) or a re-raise
        # through several drains must keep the innermost event.
        if getattr(exc, "event_context", None) is None:
            exc.event_context = context  # type: ignore[attr-defined]
            add_note = getattr(exc, "add_note", None)
            if add_note is not None:  # PEP 678, Python >= 3.11
                add_note(
                    f"while dispatching {context['callback']} at "
                    f"t={time} (event seq {seq})"
                )

    def pending(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    def iter_pending(self):
        """Iterate pending events as ``(time, seq, callback, args)``.

        Non-destructive and in heap (not dispatch) order.  Used by the
        model checker's abstraction function, which must see messages
        whose delivery is scheduled but has not run yet.
        """
        return iter(self._queue)

    def peek_events(self, limit: int = 5) -> List[Tuple[int, str]]:
        """The next ``limit`` pending events as ``(time, callback name)``.

        Non-destructive: used by error messages, the watchdog's forensic
        bundle, and quiescence diagnostics to show *what* a stuck run is
        still waiting on.
        """
        head = heapq.nsmallest(limit, self._queue)
        return [(time, _callback_name(cb)) for time, _seq, cb, _args in head]

    def describe_pending(self, limit: int = 5) -> str:
        """One-line summary of the head of the event queue."""
        if not self._queue:
            return "(queue empty)"
        parts = [
            f"t={time} {name}" for time, name in self.peek_events(limit)
        ]
        suffix = (
            f" ... +{len(self._queue) - limit} more"
            if len(self._queue) > limit
            else ""
        )
        return "; ".join(parts) + suffix

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture scheduler state; only legal when the queue is empty.

        Callbacks are live object references and deliberately never
        serialized -- checkpoints are taken at quiescent points where no
        events are in flight, which the simulator guarantees between
        workload phases.
        """
        if self._queue:
            raise SimulationError(
                f"cannot snapshot a non-quiescent engine: "
                f"{len(self._queue)} events pending "
                f"({self.describe_pending()})"
            )
        return {
            "now": self._now,
            "next_seq": self._next_seq,
            "events_processed": self._events_processed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore scheduler state captured by :meth:`snapshot_state`."""
        if self._queue:
            raise SimulationError(
                "cannot restore into an engine with pending events"
            )
        self._now = state["now"]
        self._next_seq = state["next_seq"]
        self._events_processed = state["events_processed"]
