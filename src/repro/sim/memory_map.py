"""Shared-memory layout: pages, blocks, and round-robin home assignment.

Stache allocates pages round-robin across nodes; the owner of a page acts
as the directory for every block on it (Section 5.1 of the paper).  The
:class:`MemoryMap` implements the address arithmetic and the
:class:`Allocator` hands out fresh blocks to workload models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import WorkloadError
from .params import SystemParams


class MemoryMap:
    """Address arithmetic for a round-robin paged shared memory."""

    def __init__(self, params: SystemParams) -> None:
        self._params = params
        self._block_bytes = params.cache_block_bytes
        self._page_bytes = params.page_bytes
        self._n_nodes = params.n_nodes

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    def block_of(self, addr: int) -> int:
        """Block-aligned address containing byte address ``addr``."""
        return addr - (addr % self._block_bytes)

    def page_of(self, addr: int) -> int:
        """Page number containing byte address ``addr``."""
        return addr // self._page_bytes

    def home_of(self, addr: int) -> int:
        """Home (directory) node for ``addr``: round-robin by page number."""
        return self.page_of(addr) % self._n_nodes

    def page_base(self, page: int) -> int:
        """Byte address of the first block on ``page``."""
        return page * self._page_bytes

    def blocks_on_page(self, page: int) -> List[int]:
        """All block addresses on ``page``."""
        base = self.page_base(page)
        return list(range(base, base + self._page_bytes, self._block_bytes))


class Allocator:
    """Sequential page allocator used by workload models.

    Pages come out in increasing page-number order, which is exactly
    Stache's round-robin placement: page X lives on node ``X % n``,
    page X+1 on node ``(X + 1) % n``.
    """

    def __init__(self, memory_map: MemoryMap) -> None:
        self._map = memory_map
        self._next_page = 0

    @property
    def memory_map(self) -> MemoryMap:
        return self._map

    @property
    def pages_allocated(self) -> int:
        return self._next_page

    def alloc_page(self, home: Optional[int] = None) -> int:
        """Allocate one page; return its page number.

        If ``home`` is given, skip forward to the next page whose
        round-robin home is that node (models a workload touching pages
        first from that node, e.g. per-processor private data).
        """
        n = self._map._n_nodes
        if home is not None:
            if not 0 <= home < n:
                raise WorkloadError(f"home node {home} out of range 0..{n - 1}")
            offset = (home - self._next_page) % n
            self._next_page += offset
        page = self._next_page
        self._next_page += 1
        return page

    def alloc_blocks(self, count: int, home: Optional[int] = None) -> List[int]:
        """Allocate ``count`` block addresses, page by page."""
        if count <= 0:
            raise WorkloadError(f"cannot allocate {count} blocks")
        blocks: List[int] = []
        while len(blocks) < count:
            page = self.alloc_page(home=home)
            blocks.extend(self._map.blocks_on_page(page))
        return blocks[:count]

    def alloc_block(self, home: Optional[int] = None) -> int:
        """Allocate a single block (wasting the rest of its page)."""
        return self.alloc_blocks(1, home=home)[0]
