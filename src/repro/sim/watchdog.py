"""Livelock/deadlock detection for simulation runs.

A protocol bug (or an unlucky fault schedule) can leave the simulator
making "progress" forever: retries rescheduling retries, a request
ping-ponging between a cache and its home directory, a phase that never
drains.  Under CI that reads as a hung job killed by the outer timeout
with no forensics.  The :class:`Watchdog` turns it into a prompt,
diagnosable failure: it drives the engine in bounded chunks and checks
four budgets between chunks --

* **wall clock** -- hard cap on real seconds per engine drain;
* **events** -- hard cap on dispatched events per engine drain;
* **progress window** -- messages delivered since the last shared access
  completed anywhere (a livelocked protocol delivers plenty of messages
  while completing nothing);
* **retry storm** -- protocol retries accumulated since the last
  completion (the classic signature of a timeout loop).

On any violation it raises :class:`~repro.errors.WatchdogError` carrying
a forensic bundle: the head of the event queue (what the run is waiting
on), the hottest blocks in the stalled window (what it is fighting
over), per-node protocol residue (who is stuck), retry totals, and the
tail of the observability ring when capture is on.  The bundle is a
JSON-able dict; :func:`save_bundle` writes it atomically for CI
artifacts.

The hot-path cost is two counter increments per delivery and one per
completion; budget checks run once per chunk (default every 4096
events), so an unguarded run's timing is unchanged and a guarded run's
overhead is unmeasurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import ConfigError, WatchdogError
from ..obs.bundle import build_failure_bundle, save_bundle
from .engine import Engine
from .metrics import METRICS

__all__ = [
    "DEFAULT_WATCHDOG",
    "Watchdog",
    "WatchdogConfig",
    "save_bundle",
]


@dataclass(frozen=True)
class WatchdogConfig:
    """Budgets for one engine drain (one workload phase).

    Defaults are sized for the quick-scale CI workloads: a healthy phase
    finishes in well under a second and a few hundred thousand events,
    so 60 s / 50 M events only ever fire on a genuinely stuck run, and
    the progress budgets trip long before the hard caps do.  ``None``
    disables an individual budget.
    """

    #: Real seconds allowed per engine drain.
    wall_clock_s: Optional[float] = 60.0
    #: Dispatched events allowed per engine drain.
    max_events: Optional[int] = 50_000_000
    #: Deliveries allowed since the last access completion.
    progress_window: Optional[int] = 100_000
    #: Protocol retries allowed since the last access completion.
    retry_storm: Optional[int] = 10_000
    #: Real seconds allowed for the whole run *segment* -- measured from
    #: the watchdog's last :meth:`Watchdog.arm` (construction, or the
    #: moment a checkpoint restore hands it a resumed machine), never
    #: from the original run's start.  ``None`` disables it.
    run_wall_clock_s: Optional[float] = None
    #: Events per chunk between budget checks.
    check_every: int = 4096

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigError("watchdog check_every must be >= 1")
        for name in ("wall_clock_s", "max_events", "progress_window",
                     "retry_storm", "run_wall_clock_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"watchdog {name} must be positive or None")


#: CI-friendly defaults (same as the dataclass defaults, named for use
#: in configuration code and docs).
DEFAULT_WATCHDOG = WatchdogConfig()


class Watchdog:
    """Guards one machine's engine drains against livelock and hangs.

    Attach by passing ``watchdog=Watchdog(...)`` to
    :class:`~repro.sim.machine.Machine` (or
    :func:`~repro.sim.machine.simulate`); the machine routes every phase
    drain through :meth:`run_engine` and feeds :meth:`note_delivery` /
    :meth:`note_completion` from its hot paths.
    """

    def __init__(
        self,
        config: WatchdogConfig = DEFAULT_WATCHDOG,
        bundle_path: Union[str, Path, None] = None,
    ) -> None:
        self.config = config
        #: When set, a tripped watchdog also writes its forensic bundle
        #: here (atomically) before raising -- CI jobs collect the file.
        self.bundle_path = Path(bundle_path) if bundle_path else None
        self._machine = None
        self._since_progress = 0
        self._block_deliveries: Dict[int, int] = {}
        self._retry_baseline = 0
        self._run_epoch = time.monotonic()
        self.trips = 0

    def attach(self, machine) -> None:
        self._machine = machine

    def arm(self) -> None:
        """Restart every budget clock from *now*.

        Called when a run segment begins at a point other than watchdog
        construction -- most importantly after a checkpoint restore
        (``repro-trace resume``), where wall-clock and progress budgets
        must measure the resumed segment, not the original run.  Without
        this, a watchdog built minutes before the resume would trip its
        run budget immediately, and stale delivery counters from a
        previous machine would poison the progress window.
        """
        self._run_epoch = time.monotonic()
        self._since_progress = 0
        self._block_deliveries.clear()
        self._retry_baseline = self._total_retries()

    # ------------------------------------------------------------------
    # hot-path hooks (kept to plain increments)
    # ------------------------------------------------------------------

    def note_delivery(self, block: int) -> None:
        self._since_progress += 1
        self._block_deliveries[block] = (
            self._block_deliveries.get(block, 0) + 1
        )

    def note_completion(self) -> None:
        self._since_progress = 0
        self._block_deliveries.clear()
        self._retry_baseline = self._total_retries()

    # ------------------------------------------------------------------
    # engine driving
    # ------------------------------------------------------------------

    def run_engine(self, engine: Engine) -> int:
        """Drain ``engine`` in chunks, enforcing every budget.

        Drop-in replacement for ``engine.run()``: returns the number of
        dispatched events, or raises :class:`WatchdogError`.
        """
        config = self.config
        start = time.monotonic()
        dispatched = 0
        # A fresh drain is progress by definition: the previous phase
        # completed, so stall counters restart from zero.
        self.note_completion()
        while engine.pending():
            dispatched += engine.run(max_events=config.check_every)
            if (
                config.wall_clock_s is not None
                and time.monotonic() - start > config.wall_clock_s
            ):
                self._trip(
                    engine,
                    f"wall-clock budget exceeded: phase still running after "
                    f"{config.wall_clock_s:g}s "
                    f"({dispatched} events dispatched)",
                )
            if (
                config.run_wall_clock_s is not None
                and time.monotonic() - self._run_epoch
                > config.run_wall_clock_s
            ):
                self._trip(
                    engine,
                    f"run wall-clock budget exceeded: "
                    f"{config.run_wall_clock_s:g}s since the watchdog was "
                    f"last armed",
                )
            if (
                config.max_events is not None
                and dispatched >= config.max_events
            ):
                self._trip(
                    engine,
                    f"event budget exceeded: {dispatched} events dispatched "
                    f"in one phase (budget {config.max_events})",
                )
            if (
                config.progress_window is not None
                and self._since_progress > config.progress_window
            ):
                self._trip(
                    engine,
                    f"no forward progress: {self._since_progress} messages "
                    f"delivered since the last access completed "
                    f"(window {config.progress_window})",
                )
            if config.retry_storm is not None:
                retries = self._total_retries() - self._retry_baseline
                if retries > config.retry_storm:
                    self._trip(
                        engine,
                        f"retry storm: {retries} protocol retries since the "
                        f"last access completed (budget {config.retry_storm})",
                    )
        return dispatched

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _total_retries(self) -> int:
        machine = self._machine
        if machine is None:
            return 0
        total = 0
        for node in machine.nodes:
            total += node.cache.request_retries
            total += node.cache.poisoned_reissues
            total += node.directory.inval_retries
        return total

    def _trip(self, engine: Engine, reason: str) -> None:
        self.trips += 1
        METRICS.inc("watchdog.trips")
        bundle = self.forensic_bundle(engine, reason)
        if self.bundle_path is not None:
            save_bundle(bundle, self.bundle_path)
            hint = f"; forensic bundle written to {self.bundle_path}"
        else:
            hint = ""
        raise WatchdogError(
            f"watchdog tripped at t={engine.now}: {reason}{hint}",
            bundle=bundle,
        )

    def forensic_bundle(self, engine: Engine, reason: str) -> dict:
        """Everything a human needs to diagnose the stall, as JSON-able
        plain data (delegates to :func:`repro.obs.bundle.build_failure_bundle`)."""
        return build_failure_bundle(
            engine,
            reason,
            machine=self._machine,
            since_progress=self._since_progress,
            block_deliveries=self._block_deliveries,
            retries_since_progress=(
                self._total_retries() - self._retry_baseline
                if self._machine is not None
                else None
            ),
        )
