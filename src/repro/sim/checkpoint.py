"""Checkpoint/restore of quiescent simulations.

A :class:`~repro.sim.machine.Machine` is checkpointable exactly at
iteration boundaries: the event queue is empty, no cache has an
outstanding miss, and no directory holds an active transaction, so the
whole machine reduces to plain data -- scheduler clock and sequence
counter, per-node protocol state, the trace collected so far, and the
think-time/fault RNG streams.  :func:`capture` gathers that into a
:class:`Checkpoint`; :func:`restore` rebuilds a machine that continues
*bit-for-bit* where the captured one stopped: a run resumed from
checkpoint N produces byte-identical traces and (deterministic) metrics
to an uninterrupted run.

On disk a checkpoint is two pickle frames, following the layout of
:mod:`repro.trace.cache`: a small header (format version, a CRC-32 of
the payload, a configuration fingerprint) and the pickled body.  Writes
are atomic (temp file + ``os.replace``), so a checkpoint either
exists completely or not at all; loads verify the checksum and raise
:class:`~repro.errors.CheckpointError` on any mismatch -- a restored run
must never continue from silently corrupted state.

Drivers: :func:`simulate_with_checkpoints` runs a workload writing a
checkpoint every N iterations; :func:`resume_simulation` picks up from a
checkpoint file and finishes the run.  Both are surfaced through the
CLI: ``repro-trace simulate --checkpoint-dir DIR`` and
``repro-trace resume DIR/checkpoint-NNNN.ckpt``.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple, Union

from ..errors import CheckpointError
from ..ioutil import atomic_write
from ..obs.manifest import build_manifest
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..trace.collector import TraceCollector
from ..workloads.base import Workload
from .faults import FaultProfile
from .machine import Machine
from .metrics import METRICS
from .params import PAPER_PARAMS, SystemParams

#: Bump when the snapshot schema or the simulator's semantics change:
#: old checkpoints then refuse to load instead of resuming wrongly.
FORMAT_VERSION = 1

_HEADER_MAGIC = "repro-checkpoint"


def config_fingerprint(
    params: SystemParams,
    options: StacheOptions,
    seed: int,
    faults: Optional[FaultProfile],
    fault_seed: int,
) -> str:
    """Hash of everything that must match for a resume to be sound.

    A checkpoint restored into a machine built with different parameters
    would silently diverge from the uninterrupted run; the fingerprint
    turns that into a loud :class:`~repro.errors.CheckpointError`.
    """
    descriptor = {
        "format": FORMAT_VERSION,
        "params": asdict(params),
        "options": asdict(options),
        "seed": seed,
        "faults": faults.spec() if faults is not None else None,
        "fault_seed": fault_seed,
    }
    canonical = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Checkpoint:
    """One quiescent machine, ready to be serialized or resumed."""

    params: SystemParams
    options: StacheOptions
    seed: int
    faults: Optional[FaultProfile]
    fault_seed: int
    #: The first iteration the resumed run should execute (1-based).
    next_iteration: int
    total_iterations: int
    machine_state: dict
    #: The workload object *after* ``setup`` ran -- workloads are plain
    #: data (block layouts, sizes), so pickling one preserves the memory
    #: layout the captured run was using.
    workload: Workload
    #: ``METRICS.snapshot()`` at capture time, so a resumed run's final
    #: metrics equal the uninterrupted run's (timers keep accumulating
    #: real wall time and are exempt from the byte-identity guarantee).
    metrics: dict

    @property
    def fingerprint(self) -> str:
        return config_fingerprint(
            self.params, self.options, self.seed, self.faults, self.fault_seed
        )


def capture(
    machine: Machine,
    workload: Workload,
    next_iteration: int,
    total_iterations: int,
) -> Checkpoint:
    """Capture ``machine`` at a quiescent point into a :class:`Checkpoint`.

    Raises :class:`~repro.errors.SimulationError` /
    :class:`~repro.errors.ProtocolError` if the machine is not actually
    quiescent (pending events, outstanding misses, active transactions).
    """
    with METRICS.timer("checkpoint.capture"):
        return Checkpoint(
            params=machine.params,
            options=machine.options,
            seed=machine.seed,
            faults=machine.faults,
            fault_seed=machine.fault_seed,
            next_iteration=next_iteration,
            total_iterations=total_iterations,
            machine_state=machine.snapshot_state(),
            workload=workload,
            metrics=METRICS.snapshot(),
        )


def restore(
    checkpoint: Checkpoint,
    watchdog=None,
    network_factory=None,
) -> Tuple[Machine, Workload]:
    """Rebuild the captured machine; returns ``(machine, workload)``.

    The machine is constructed from the checkpoint's own configuration
    and then overwritten with the captured state, so the caller never
    has to re-supply (and possibly mismatch) parameters.  A caller whose
    captured machine used a custom interconnect (schedule exploration)
    must pass the same kind of ``network_factory`` so the snapshot's
    network state lands in a matching object.
    """
    machine = Machine(
        params=checkpoint.params,
        options=checkpoint.options,
        seed=checkpoint.seed,
        faults=checkpoint.faults,
        fault_seed=checkpoint.fault_seed,
        watchdog=watchdog,
        network_factory=network_factory,
    )
    machine.restore_state(checkpoint.machine_state)
    return machine, checkpoint.workload


# ----------------------------------------------------------------------
# on-disk format: two-frame files shared with the serving layer
# ----------------------------------------------------------------------


def write_framed(
    path: Union[str, Path],
    header_extra: dict,
    payload: bytes,
    magic: str = _HEADER_MAGIC,
) -> Path:
    """Atomically write a two-frame checkpoint file.

    Frame one is a small pickled header -- ``magic``, format version,
    a CRC-32 of the payload, the payload length, and the caller's
    ``header_extra`` fields (fingerprint, iteration bounds, ...); frame
    two is the raw ``payload`` bytes.  The recorded length is what lets
    :func:`read_framed` distinguish a *truncated* second frame from bit
    rot and report a named cause.

    No fsync: atomic rename keeps every crash of the *process* safe
    (the page cache survives kill -9), and the checksum turns an
    OS-crash torn write into a clean load error rather than a silent
    bad resume.  The run journal, whose records are acknowledgments,
    does fsync (see :mod:`repro.parallel.journal`).
    """
    header = {
        "magic": magic,
        "format": FORMAT_VERSION,
        # CRC-32, not a cryptographic hash: the threat model is
        # truncation and bit rot, and sha256 over a multi-MiB
        # payload would dominate the cost of saving a checkpoint.
        "checksum": f"crc32:{zlib.crc32(payload):08x}",
        "payload_bytes": len(payload),
        # Attribution only; never participates in validation.
        "manifest": build_manifest("checkpoint-save"),
    }
    header.update(header_extra)
    with atomic_write(path, "wb") as handle:
        pickle.dump(header, handle)
        handle.write(payload)
    return Path(path)


def read_framed(
    path: Union[str, Path],
    magic: str = _HEADER_MAGIC,
    expected_format: Optional[int] = FORMAT_VERSION,
) -> Tuple[dict, bytes]:
    """Read and verify a two-frame file written by :func:`write_framed`.

    Every failure mode raises :class:`~repro.errors.CheckpointError`
    naming the file *and* carrying a machine-readable ``cause``:
    ``missing``, ``truncated-header``, ``unreadable-header``,
    ``bad-magic``, ``version-mismatch``, ``truncated-payload``, or
    ``checksum-mismatch``.  A truncated second frame (the classic torn
    write at the frame boundary) is told apart from bit rot by the
    header's recorded payload length; headers written before the length
    field existed fall through to the checksum check.
    """
    target = Path(path)
    if not target.exists():
        raise CheckpointError(f"no checkpoint at {target}", cause="missing")
    try:
        with open(target, "rb") as handle:
            header = pickle.load(handle)
            payload = handle.read()
    except EOFError as exc:
        raise CheckpointError(
            f"truncated checkpoint header in {target}: the file ends "
            f"inside the header frame ({exc})",
            cause="truncated-header",
        ) from exc
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint header in {target}: {exc}",
            cause="unreadable-header",
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != magic:
        raise CheckpointError(
            f"{target} is not a {magic!r} checkpoint", cause="bad-magic"
        )
    if (
        expected_format is not None
        and header.get("format") != expected_format
    ):
        raise CheckpointError(
            f"{target} has checkpoint format {header.get('format')}; "
            f"this build reads format {expected_format}",
            cause="version-mismatch",
        )
    expected_bytes = header.get("payload_bytes")
    if expected_bytes is not None and len(payload) < expected_bytes:
        raise CheckpointError(
            f"truncated checkpoint payload in {target}: header promises "
            f"{expected_bytes} bytes but only {len(payload)} follow the "
            "frame boundary (torn write)",
            cause="truncated-payload",
        )
    if f"crc32:{zlib.crc32(payload):08x}" != header.get("checksum"):
        raise CheckpointError(
            f"checksum mismatch in {target}: the checkpoint is "
            "corrupt (truncated write or bit rot); re-run from an "
            "earlier checkpoint or from scratch",
            cause="checksum-mismatch",
        )
    return header, payload


def save_checkpoint(
    checkpoint: Checkpoint, path: Union[str, Path]
) -> Path:
    """Atomically write ``checkpoint`` to ``path``; returns the path."""
    body = {
        "params": checkpoint.params,
        "options": checkpoint.options,
        "seed": checkpoint.seed,
        "faults": checkpoint.faults,
        "fault_seed": checkpoint.fault_seed,
        "next_iteration": checkpoint.next_iteration,
        "total_iterations": checkpoint.total_iterations,
        "machine_state": checkpoint.machine_state,
        "workload": checkpoint.workload,
        "metrics": checkpoint.metrics,
    }
    with METRICS.timer("checkpoint.save"):
        payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
        write_framed(
            path,
            {
                "fingerprint": checkpoint.fingerprint,
                "next_iteration": checkpoint.next_iteration,
                "total_iterations": checkpoint.total_iterations,
            },
            payload,
        )
    METRICS.inc("checkpoint.saved")
    return Path(path)


def read_checkpoint_header(path: Union[str, Path]) -> dict:
    """The header frame alone (cheap: does not load the machine state)."""
    target = Path(path)
    if not target.exists():
        raise CheckpointError(f"no checkpoint at {target}", cause="missing")
    try:
        with open(target, "rb") as handle:
            header = pickle.load(handle)
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint header in {target}: {exc}",
            cause="truncated-header" if isinstance(exc, EOFError)
            else "unreadable-header",
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != _HEADER_MAGIC:
        raise CheckpointError(
            f"{target} is not a repro checkpoint", cause="bad-magic"
        )
    return header


def load_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Unlike a trace-cache miss, a bad checkpoint is an *error*: the
    caller asked to resume from this specific state, and resuming from
    anything else (or silently restarting) would be wrong.  Every
    failure mode -- truncation, bit rot, a stale format version, a
    checksum mismatch -- raises :class:`~repro.errors.CheckpointError`
    naming the file and carrying a named ``cause`` (see
    :func:`read_framed`).  Callers with older checkpoints on disk can
    fall back with :func:`load_latest_checkpoint`.
    """
    target = Path(path)
    with METRICS.timer("checkpoint.load"):
        header, payload = read_framed(target)
        try:
            body = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                f"cannot unpickle checkpoint body in {target}: {exc}",
                cause="unreadable-body",
            ) from exc
    checkpoint = Checkpoint(
        params=body["params"],
        options=body["options"],
        seed=body["seed"],
        faults=body["faults"],
        fault_seed=body["fault_seed"],
        next_iteration=body["next_iteration"],
        total_iterations=body["total_iterations"],
        machine_state=body["machine_state"],
        workload=body["workload"],
        metrics=body["metrics"],
    )
    if checkpoint.fingerprint != header.get("fingerprint"):
        raise CheckpointError(
            f"configuration fingerprint mismatch in {target}: header says "
            f"{header.get('fingerprint')!r} but the body hashes to "
            f"{checkpoint.fingerprint!r}",
            cause="fingerprint-mismatch",
        )
    METRICS.inc("checkpoint.loaded")
    return checkpoint


def checkpoint_path(directory: Union[str, Path], iteration: int) -> Path:
    """Canonical file name for the checkpoint taken *after* ``iteration``."""
    return Path(directory) / f"checkpoint-{iteration:04d}.ckpt"


def latest_checkpoint(directory: Union[str, Path]) -> Optional[Path]:
    """The newest checkpoint in ``directory`` (by iteration number)."""
    candidates = sorted(Path(directory).glob("checkpoint-*.ckpt"))
    return candidates[-1] if candidates else None


def load_newest_valid(
    paths: Iterable[Union[str, Path]],
    loader: Callable[[Union[str, Path]], object],
) -> Tuple[object, Path, Tuple[Tuple[Path, CheckpointError], ...]]:
    """Load the first of ``paths`` (newest first) that verifies cleanly.

    The fallback discipline shared by simulation resume and the serving
    layer's warm-restore: a torn or corrupt newer checkpoint must not
    strand the run when an older valid one exists.  Returns ``(loaded,
    path, skipped)`` where ``skipped`` records each newer file that was
    passed over together with its named :class:`CheckpointError`.
    Raises a ``no-valid-checkpoint`` :class:`CheckpointError` listing
    every candidate's cause when nothing loads.
    """
    skipped: List[Tuple[Path, CheckpointError]] = []
    candidates = [Path(path) for path in paths]
    for path in candidates:
        try:
            loaded = loader(path)
        except CheckpointError as exc:
            skipped.append((path, exc))
            METRICS.inc("checkpoint.fallback.skipped")
            continue
        if skipped:
            METRICS.inc("checkpoint.fallback.used")
        return loaded, path, tuple(skipped)
    if not candidates:
        raise CheckpointError(
            "no checkpoint candidates to load", cause="no-valid-checkpoint"
        )
    reasons = "; ".join(
        f"{path.name}: {exc.cause or 'error'} ({exc})"
        for path, exc in skipped
    )
    raise CheckpointError(
        f"no valid checkpoint among {len(candidates)} candidate(s): "
        f"{reasons}",
        cause="no-valid-checkpoint",
    )


def load_latest_checkpoint(
    directory: Union[str, Path],
) -> Tuple[Checkpoint, Path, Tuple[Tuple[Path, CheckpointError], ...]]:
    """The newest checkpoint in ``directory`` that loads cleanly.

    Candidates are tried newest-iteration first; a truncated or corrupt
    newer file is skipped (with its named cause preserved in the third
    element of the result) and the next older one is tried, so losing
    the tail of the newest checkpoint costs one checkpoint interval,
    never the whole run.
    """
    candidates = sorted(Path(directory).glob("checkpoint-*.ckpt"),
                        reverse=True)
    if not candidates:
        raise CheckpointError(
            f"no checkpoints in {directory}", cause="no-valid-checkpoint"
        )
    loaded, path, skipped = load_newest_valid(candidates, load_checkpoint)
    assert isinstance(loaded, Checkpoint)
    return loaded, path, skipped


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------


def simulate_with_checkpoints(
    workload: Workload,
    iterations: Optional[int] = None,
    params: SystemParams = PAPER_PARAMS,
    options: StacheOptions = DEFAULT_OPTIONS,
    seed: int = 0,
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    checkpoint_dir: Union[str, Path, None] = None,
    every: int = 1,
    watchdog=None,
) -> TraceCollector:
    """Run ``workload``, writing a checkpoint every ``every`` iterations.

    With ``checkpoint_dir=None`` this degrades to a plain
    :func:`~repro.sim.machine.simulate` (the split driving loop is
    byte-identical to the original single loop).
    """
    if every < 1:
        raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
    machine = Machine(
        params=params,
        options=options,
        seed=seed,
        faults=faults,
        fault_seed=fault_seed,
        watchdog=watchdog,
    )
    total = machine.begin_workload(workload, iterations)
    for index in range(1, total + 1):
        machine.run_iteration(workload, index)
        if checkpoint_dir is not None and index % every == 0:
            save_checkpoint(
                capture(machine, workload, index + 1, total),
                checkpoint_path(checkpoint_dir, index),
            )
    return machine.finish_workload()


def resume_simulation(
    path: Union[str, Path],
    checkpoint_dir: Union[str, Path, None] = None,
    every: int = 1,
    restore_metrics: bool = True,
    watchdog=None,
) -> TraceCollector:
    """Finish the run captured in the checkpoint at ``path``.

    Runs iterations ``next_iteration..total_iterations`` and returns the
    complete trace collector -- byte-identical to the uninterrupted
    run's.  With ``restore_metrics=True`` (default) the global registry
    is reset to the checkpoint's snapshot first, so counter and
    histogram totals also match the uninterrupted run.  Pass a
    ``checkpoint_dir`` to keep writing checkpoints while finishing.
    """
    checkpoint = load_checkpoint(path)
    if restore_metrics:
        METRICS.reset()
        METRICS.merge(checkpoint.metrics)
    machine, workload = restore(checkpoint, watchdog=watchdog)
    total = checkpoint.total_iterations
    for index in range(checkpoint.next_iteration, total + 1):
        machine.run_iteration(workload, index)
        if checkpoint_dir is not None and index % every == 0:
            save_checkpoint(
                capture(machine, workload, index + 1, total),
                checkpoint_path(checkpoint_dir, index),
            )
    return machine.finish_workload()
