"""The simulated 16-node shared-memory machine.

:class:`Machine` ties together the event engine, the interconnect, the
per-node cache and directory controllers, and a processor model that
issues each workload's access streams.  Running a workload yields a
coherence-message trace (one event per message *reception*, exactly what
a Cosmos predictor would observe sitting beside each module).

Processor model: within a phase, every processor walks its access list
sequentially -- the next access issues after the previous one completes
plus a small seeded think time.  The jitter in think times varies the
interleaving of different processors' requests at the directories, which
is the arrival-order variation Cosmos must adapt to (paper Section 3.5).
A barrier separates phases and iterations; barrier traffic itself is not
modeled (the paper excludes barrier variables from its traces).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import SimulationError
from ..protocol.messages import Message, Role
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..trace.collector import TraceCollector
from ..workloads.access import Access, Phase
from ..workloads.base import Workload
from .engine import Engine
from .memory_map import Allocator, MemoryMap
from .network import Network
from .node import Node
from .params import PAPER_PARAMS, SystemParams

#: Base think time between a processor's consecutive shared accesses (ns).
_THINK_BASE_NS = 20
#: Spread of the per-processor fixed speed offset (ns).  Real programs run
#: the same loop every iteration, so a processor's relative pacing is
#: stable; this offset makes arrival orders at the directories mostly
#: repeatable across iterations.
_PROC_OFFSET_NS = 150
#: Small per-access jitter (ns): occasional order swaps between closely
#: paced processors, the noise Cosmos must filter or adapt to.
_THINK_JITTER_NS = 10
#: Maximum initial stagger of processors at a phase start (ns).
_PHASE_STAGGER_NS = 40
#: Cache / local-memory hit latencies (ns).
_CACHE_HIT_NS = 1


class Machine:
    """A directory-based shared-memory multiprocessor."""

    def __init__(
        self,
        params: SystemParams = PAPER_PARAMS,
        options: StacheOptions = DEFAULT_OPTIONS,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.options = options
        self.seed = seed
        self.engine = Engine()
        self.memory_map = MemoryMap(params)
        self.collector = TraceCollector()
        self.network = Network(self.engine, params, self._deliver)
        self.nodes: List[Node] = [
            Node(node_id, self.network.send, options)
            for node_id in range(params.n_nodes)
        ]
        #: Replacement log in finite-cache mode: (time, node, block).
        self.replacements: List[tuple] = []
        if options.finite_caches:
            n_sets = max(1, params.cache_bytes // params.cache_block_bytes)
            for node in self.nodes:
                node.cache.configure_finite(
                    n_sets,
                    params.cache_block_bytes,
                    self._make_replacement_hook(node.node_id),
                )
        self._rng = random.Random(seed)
        self._proc_offset = [
            self._rng.randrange(0, _PROC_OFFSET_NS)
            for _ in range(params.n_nodes)
        ]
        self._pending: List[List[Access]] = []
        self._cursor: List[int] = []
        self._issue_time: List[int] = [0] * params.n_nodes
        self._was_miss: List[bool] = [False] * params.n_nodes
        self.accesses_issued = 0
        #: (latency_ns, was_coherence_miss) per completed shared access.
        self.access_latencies: List[tuple] = []

    def _make_replacement_hook(self, node_id: int):
        def hook(block: int) -> None:
            self.replacements.append((self.engine.now, node_id, block))

        return hook

    # ------------------------------------------------------------------
    # message delivery
    # ------------------------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        self.collector.record(
            time=self.engine.now,
            node=msg.dst,
            role=msg.role_at_receiver,
            block=msg.block,
            sender=msg.src,
            mtype=msg.mtype,
        )
        self.nodes[msg.dst].receive(msg)

    # ------------------------------------------------------------------
    # processor model
    # ------------------------------------------------------------------

    def _run_phase(self, phase: Phase) -> None:
        if len(phase) != self.params.n_nodes:
            raise SimulationError(
                f"phase has {len(phase)} processor streams for a "
                f"{self.params.n_nodes}-node machine"
            )
        self._pending = [list(stream) for stream in phase]
        self._cursor = [0] * self.params.n_nodes
        for proc in range(self.params.n_nodes):
            if self._pending[proc]:
                stagger = self._proc_offset[proc] + self._rng.randrange(
                    0, _PHASE_STAGGER_NS
                )
                self.engine.schedule(stagger, self._issue_next, proc)
        self.engine.run()
        for proc in range(self.params.n_nodes):
            if self._cursor[proc] != len(self._pending[proc]):
                raise SimulationError(
                    f"processor {proc} finished a phase with accesses pending"
                )

    def _issue_next(self, proc: int) -> None:
        stream = self._pending[proc]
        index = self._cursor[proc]
        if index >= len(stream):
            return
        access = stream[index]
        self._cursor[proc] = index + 1
        self.accesses_issued += 1
        self._issue_time[proc] = self.engine.now
        # Assume a miss before dispatching: a miss's done_cb may fire
        # synchronously (e.g. an idle local directory entry).
        self._was_miss[proc] = True
        home = self.memory_map.home_of(access.block)
        node = self.nodes[proc]
        if home == proc:
            hit = node.directory.local_access(
                access.block, access.is_write, lambda: self._completed(proc)
            )
            if hit:
                self._was_miss[proc] = False
                self.engine.schedule(
                    self.params.memory_access_ns, self._completed, proc
                )
        else:
            hit = node.cache.access(
                access.block,
                home,
                access.is_write,
                lambda: self._completed(proc),
            )
            if hit:
                self._was_miss[proc] = False
                self.engine.schedule(_CACHE_HIT_NS, self._completed, proc)

    def _completed(self, proc: int) -> None:
        self.access_latencies.append(
            (self.engine.now - self._issue_time[proc], self._was_miss[proc])
        )
        think = (
            _THINK_BASE_NS
            + self._proc_offset[proc]
            + self._rng.randrange(0, _THINK_JITTER_NS)
        )
        self.engine.schedule(think, self._issue_next, proc)

    # ------------------------------------------------------------------
    # workload driving
    # ------------------------------------------------------------------

    def run_workload(
        self,
        workload: Workload,
        iterations: Optional[int] = None,
    ) -> TraceCollector:
        """Run ``workload`` for ``iterations`` main iterations.

        Returns the trace collector; its ``events`` property excludes the
        start-up phase, matching the paper's methodology.  Iterations are
        numbered from 1; start-up events carry iteration 0.
        """
        if workload.n_procs != self.params.n_nodes:
            raise SimulationError(
                f"workload is built for {workload.n_procs} processors but "
                f"the machine has {self.params.n_nodes} nodes"
            )
        if iterations is None:
            iterations = workload.default_iterations
        if iterations < 1:
            raise SimulationError("need at least one iteration")

        layout_rng = random.Random(self.seed ^ 0x5EED)
        workload.setup(Allocator(self.memory_map), layout_rng)

        self.collector.iteration = 0
        for phase in workload.startup(self._rng):
            self._run_phase(phase)
        self.collector.mark_startup_complete()

        for index in range(1, iterations + 1):
            self.collector.iteration = index
            for phase in workload.iteration(index, self._rng):
                self._run_phase(phase)
        return self.collector


def simulate(
    workload: Workload,
    iterations: Optional[int] = None,
    params: SystemParams = PAPER_PARAMS,
    options: StacheOptions = DEFAULT_OPTIONS,
    seed: int = 0,
) -> TraceCollector:
    """One-call convenience: build a machine, run ``workload``, return the trace."""
    machine = Machine(params=params, options=options, seed=seed)
    return machine.run_workload(workload, iterations=iterations)
