"""The simulated 16-node shared-memory machine.

:class:`Machine` ties together the event engine, the interconnect, the
per-node cache and directory controllers, and a processor model that
issues each workload's access streams.  Running a workload yields a
coherence-message trace (one event per message *reception*, exactly what
a Cosmos predictor would observe sitting beside each module).

Processor model: within a phase, every processor walks its access list
sequentially -- the next access issues after the previous one completes
plus a small seeded think time.  The jitter in think times varies the
interleaving of different processors' requests at the directories, which
is the arrival-order variation Cosmos must adapt to (paper Section 3.5).
A barrier separates phases and iterations; barrier traffic itself is not
modeled (the paper excludes barrier variables from its traces).
"""

from __future__ import annotations

import random
from array import array
from itertools import chain
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..errors import ProtocolError, SimulationError
from ..obs.log import OBS
from ..obs.spans import SPANS
from ..protocol.messages import Message, Role
from ..protocol.recovery import RecoveryConfig
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..protocol.state import CacheState
from ..trace.collector import TraceCollector
from ..workloads.access import Access, Phase
from ..workloads.base import Workload
from .engine import Engine
from .faults import FaultProfile, FaultyNetwork
from .memory_map import Allocator, MemoryMap
from .metrics import METRICS
from .network import Network
from .node import Node
from .params import PAPER_PARAMS, SystemParams

if TYPE_CHECKING:
    from .watchdog import Watchdog

#: Base think time between a processor's consecutive shared accesses (ns).
_THINK_BASE_NS = 20
#: Spread of the per-processor fixed speed offset (ns).  Real programs run
#: the same loop every iteration, so a processor's relative pacing is
#: stable; this offset makes arrival orders at the directories mostly
#: repeatable across iterations.
_PROC_OFFSET_NS = 150
#: Small per-access jitter (ns): occasional order swaps between closely
#: paced processors, the noise Cosmos must filter or adapt to.
_THINK_JITTER_NS = 10
#: Maximum initial stagger of processors at a phase start (ns).
_PHASE_STAGGER_NS = 40
#: Cache / local-memory hit latencies (ns).
_CACHE_HIT_NS = 1


class Machine:
    """A directory-based shared-memory multiprocessor."""

    def __init__(
        self,
        params: SystemParams = PAPER_PARAMS,
        options: StacheOptions = DEFAULT_OPTIONS,
        seed: int = 0,
        faults: Optional[FaultProfile] = None,
        fault_seed: int = 0,
        watchdog: Optional["Watchdog"] = None,
        network_factory: Optional[Callable] = None,
    ) -> None:
        self.params = params
        self.options = options
        self.seed = seed
        self.engine = Engine()
        self.memory_map = MemoryMap(params)
        self.collector = TraceCollector()
        # An *active* fault profile swaps in the unreliable interconnect
        # and arms the protocol's recovery machinery; an inactive/absent
        # one leaves the timing-exact reliable path completely untouched
        # (no timeout events are ever scheduled), so fault-free runs stay
        # bit-identical to builds without this layer.
        self.faults = faults if faults is not None and faults.is_active else None
        self.fault_seed = fault_seed
        self.network_factory = network_factory
        self.recovery: Optional[RecoveryConfig] = None
        if network_factory is not None:
            # A custom interconnect (schedule exploration) owns fault
            # composition itself; the factory sees the same constructor
            # head as Network.
            self.network = network_factory(
                self.engine, params, self._deliver
            )
        elif self.faults is not None:
            self.network = FaultyNetwork(
                self.engine, params, self._deliver, self.faults, fault_seed
            )
        else:
            self.network = Network(self.engine, params, self._deliver)
        # Recovery is armed whenever delivery order can deviate from the
        # constant-latency FIFO model -- by chance (faults) or by choice
        # (an adversarial exploring network).  The timeout budget covers
        # the network's own worst-case skew.
        if self.faults is not None or getattr(
            self.network, "adversarial", False
        ):
            self.recovery = RecoveryConfig.for_network(
                params.one_way_message_ns,
                getattr(self.network, "max_skew_ns", 0),
            )
        #: Observers invoked after each delivery is fully processed (the
        #: receiving controller ran, coherence was checked).  Used by the
        #: schedule explorer's invariant oracles; empty on normal runs.
        self.deliver_hooks: List[Callable[[Message], None]] = []
        self.invariant_checks = 0
        self.nodes: List[Node] = [
            Node(
                node_id,
                self.network.send,
                options,
                recovery=self.recovery,
                schedule=self.engine.schedule,
            )
            for node_id in range(params.n_nodes)
        ]
        #: Replacement log in finite-cache mode: (time, node, block).
        self.replacements: List[tuple] = []
        if options.finite_caches:
            n_sets = max(1, params.cache_bytes // params.cache_block_bytes)
            for node in self.nodes:
                node.cache.configure_finite(
                    n_sets,
                    params.cache_block_bytes,
                    self._make_replacement_hook(node.node_id),
                )
        self._rng = random.Random(seed)
        self._proc_offset = [
            self._rng.randrange(0, _PROC_OFFSET_NS)
            for _ in range(params.n_nodes)
        ]
        self._pending: List[List[Access]] = []
        self._cursor: List[int] = []
        self._issue_time: List[int] = [0] * params.n_nodes
        self._was_miss: List[bool] = [False] * params.n_nodes
        self.accesses_issued = 0
        #: (latency_ns, was_coherence_miss) per completed shared access.
        self.access_latencies: List[tuple] = []
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.attach(self)
        # Give timestamp-less emitters (protocol controllers) a clock.
        # OBS is process-global, so the most recently built machine owns
        # it -- fine for the sequential capture runs observability uses.
        OBS.set_clock(lambda: self.engine.now)
        SPANS.set_clock(lambda: self.engine.now)

    def _make_replacement_hook(self, node_id: int):
        def hook(block: int) -> None:
            self.replacements.append((self.engine.now, node_id, block))

        return hook

    # ------------------------------------------------------------------
    # message delivery
    # ------------------------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if OBS.msg:
            OBS.emit(
                self.engine.now,
                "net",
                "deliver",
                msg.dst,
                msg.block,
                {
                    "src": msg.src,
                    "mtype": msg.mtype.name,
                    "role": str(msg.role_at_receiver),
                },
            )
            # Deliberately OBS-gated (unlike the latency histograms):
            # queue depth is a *sampling* diagnostic whose cost scales
            # with the queue, and its value depends on when you look --
            # there is no end-of-run fold that could reconstruct it.
            METRICS.observe("sim.queue.depth", self.engine.pending())
        self.collector.record(
            self.engine.now,
            msg.dst,
            msg.role_at_receiver,
            msg.block,
            msg.src,
            msg.mtype,
        )
        if self.watchdog is not None:
            self.watchdog.note_delivery(msg.block)
        self.nodes[msg.dst].receive(msg)
        if self.recovery is not None:
            self._check_coherence(msg.block)
        if self.deliver_hooks:
            for hook in self.deliver_hooks:
                hook(msg)

    # ------------------------------------------------------------------
    # coherence-invariant checker (armed under fault injection)
    # ------------------------------------------------------------------

    def _check_coherence(self, block: int) -> None:
        """Assert the machine is in a *legal* state for ``block``.

        Faults and recovery may delay or repeat transitions but must
        never create an illegal state (cf. the paper's Section 4.3
        argument for mispredictions).  Checked after every delivery:

        * at most one cache holds ``block`` exclusively, and that cache
          is the one the home directory records as owner (or is about to
          record: a forwarding owner answers the requester before the
          revision notice lands, so the in-flight transaction's final
          state also legitimizes a copy);
        * a shared copy is always known to the directory the same way;
        * the directory entry itself is consistent (owner xor sharers).

        The converse directions are deliberately *not* asserted: under
        loss and duplication the directory may record copies a cache no
        longer holds (lost response, duplicate invalidation) -- that is
        legal over-approximation, never a safety violation.
        """
        self.invariant_checks += 1
        home = self.memory_map.home_of(block)
        directory = self.nodes[home].directory
        entry = directory.entry_of(block)
        entry.check_invariants()
        pending = directory.pending_grant(block)
        pending_owner = pending[0] if pending else None
        pending_sharers = pending[1] if pending else ()
        exclusive: Optional[int] = None
        for node in self.nodes:
            if node.node_id == home:
                continue  # the home's copy *is* the directory entry
            state = node.cache.state_of(block)
            if state is CacheState.EXCLUSIVE:
                if exclusive is not None:
                    raise ProtocolError(
                        f"block 0x{block:x} is exclusive at both "
                        f"P{exclusive} and P{node.node_id}"
                    )
                exclusive = node.node_id
                if (
                    entry.owner != node.node_id
                    and pending_owner != node.node_id
                ):
                    raise ProtocolError(
                        f"P{node.node_id} holds block 0x{block:x} "
                        f"exclusively but the directory records owner "
                        f"{entry.owner}"
                    )
            elif state is CacheState.SHARED:
                if (
                    node.node_id not in entry.sharers
                    and entry.owner != node.node_id
                    and node.node_id not in pending_sharers
                ):
                    raise ProtocolError(
                        f"P{node.node_id} holds a shared copy of block "
                        f"0x{block:x} the directory does not know about"
                    )

    def assert_quiescent(self) -> None:
        """Assert every transaction completed (no livelocked residue).

        Called by tests and the chaos harness after a workload run: all
        processor streams drained (``_run_phase`` already checks that),
        no cache has an outstanding miss, and no directory is holding or
        queueing a transaction.
        """
        for node in self.nodes:
            blocks = node.cache.outstanding_blocks()
            if blocks:
                raise ProtocolError(
                    f"P{node.node_id} finished with outstanding misses "
                    f"for blocks {[hex(b) for b in blocks]}"
                )
            if node.directory.active_blocks() or node.directory.queued_blocks():
                raise ProtocolError(
                    f"directory at P{node.node_id} finished with active "
                    "or queued transactions"
                )

    def _fold_fault_metrics(self) -> None:
        """Fold controller recovery counters into the global registry.

        The :class:`FaultyNetwork` mirrors its ``net.fault.*`` counts
        live; controller counters are per-instance and folded here once
        per run so ``--metrics-json`` reports machine-wide totals.
        """
        totals = {
            "proto.retry.requests": 0,
            "proto.retry.poisoned": 0,
            "proto.retry.invals": 0,
            "proto.stale.responses": 0,
            "proto.stale.acks": 0,
            "proto.dup.invals_acked": 0,
            "proto.dup.regrants": 0,
            "proto.dup.requests_merged": 0,
            "proto.pushes_rejected": 0,
        }
        for node in self.nodes:
            totals["proto.retry.requests"] += node.cache.request_retries
            totals["proto.retry.poisoned"] += node.cache.poisoned_reissues
            totals["proto.retry.invals"] += node.directory.inval_retries
            totals["proto.stale.responses"] += (
                node.cache.stale_responses_dropped
            )
            totals["proto.stale.acks"] += node.directory.stale_acks_dropped
            totals["proto.dup.invals_acked"] += (
                node.cache.duplicate_invals_acked
            )
            totals["proto.dup.regrants"] += (
                node.directory.duplicate_requests_regranted
            )
            totals["proto.dup.requests_merged"] += (
                node.directory.duplicate_requests_merged
            )
            totals["proto.pushes_rejected"] += node.cache.pushes_rejected
        totals["proto.invariant_checks"] = self.invariant_checks
        for name, value in totals.items():
            METRICS.inc(name, value)
        for node in self.nodes:
            for backoff_ns in node.cache.retry_backoffs_ns:
                METRICS.observe("proto.retry.backoff_ns", backoff_ns)
            for backoff_ns in node.directory.retry_backoffs_ns:
                METRICS.observe("proto.retry.backoff_ns", backoff_ns)

    # ------------------------------------------------------------------
    # processor model
    # ------------------------------------------------------------------

    def _run_phase(self, phase: Phase) -> None:
        if len(phase) != self.params.n_nodes:
            raise SimulationError(
                f"phase has {len(phase)} processor streams for a "
                f"{self.params.n_nodes}-node machine"
            )
        self._pending = [list(stream) for stream in phase]
        self._cursor = [0] * self.params.n_nodes
        for proc in range(self.params.n_nodes):
            if self._pending[proc]:
                stagger = self._proc_offset[proc] + self._rng.randrange(
                    0, _PHASE_STAGGER_NS
                )
                self.engine.schedule(stagger, self._issue_next, proc)
        if self.watchdog is not None:
            self.watchdog.run_engine(self.engine)
        else:
            self.engine.run()
        stuck = [
            (proc, len(self._pending[proc]) - self._cursor[proc])
            for proc in range(self.params.n_nodes)
            if self._cursor[proc] != len(self._pending[proc])
        ]
        if stuck:
            detail = ", ".join(f"P{proc}: {n} left" for proc, n in stuck)
            raise SimulationError(
                f"{len(stuck)} processor(s) finished a phase with accesses "
                f"pending ({detail}); engine queue: "
                f"{self.engine.describe_pending()}"
            )

    def _issue_next(self, proc: int) -> None:
        stream = self._pending[proc]
        index = self._cursor[proc]
        if index >= len(stream):
            return
        access = stream[index]
        self._cursor[proc] = index + 1
        self.accesses_issued += 1
        self._issue_time[proc] = self.engine.now
        # Assume a miss before dispatching: a miss's done_cb may fire
        # synchronously (e.g. an idle local directory entry).
        self._was_miss[proc] = True
        home = self.memory_map.home_of(access.block)
        node = self.nodes[proc]
        if home == proc:
            hit = node.directory.local_access(
                access.block, access.is_write, lambda: self._completed(proc)
            )
            if hit:
                self._was_miss[proc] = False
                self.engine.schedule(
                    self.params.memory_access_ns, self._completed, proc
                )
        else:
            hit = node.cache.access(
                access.block,
                home,
                access.is_write,
                lambda: self._completed(proc),
            )
            if hit:
                self._was_miss[proc] = False
                self.engine.schedule(_CACHE_HIT_NS, self._completed, proc)

    def _completed(self, proc: int) -> None:
        self.access_latencies.append(
            (self.engine.now - self._issue_time[proc], self._was_miss[proc])
        )
        if self.watchdog is not None:
            self.watchdog.note_completion()
        think = (
            _THINK_BASE_NS
            + self._proc_offset[proc]
            + self._rng.randrange(0, _THINK_JITTER_NS)
        )
        self.engine.schedule(think, self._issue_next, proc)

    # ------------------------------------------------------------------
    # workload driving
    # ------------------------------------------------------------------

    def begin_workload(
        self,
        workload: Workload,
        iterations: Optional[int] = None,
    ) -> int:
        """Lay out memory and run the start-up phase; return the resolved
        iteration count.

        The workload-driving loop is split into ``begin_workload`` /
        ``run_iteration`` / ``finish_workload`` so a driver can pause at
        any iteration boundary -- a quiescent point where the event queue
        is empty and every transaction has completed -- and capture the
        machine into a checkpoint (:mod:`repro.sim.checkpoint`).
        """
        if workload.n_procs != self.params.n_nodes:
            raise SimulationError(
                f"workload is built for {workload.n_procs} processors but "
                f"the machine has {self.params.n_nodes} nodes"
            )
        if iterations is None:
            iterations = workload.default_iterations
        if iterations < 1:
            raise SimulationError("need at least one iteration")

        layout_rng = random.Random(self.seed ^ 0x5EED)
        workload.setup(Allocator(self.memory_map), layout_rng)

        self.collector.iteration = 0
        for phase in workload.startup(self._rng):
            self._run_phase(phase)
        self.collector.mark_startup_complete()
        return iterations

    def run_iteration(self, workload: Workload, index: int) -> None:
        """Run one main iteration (numbered from 1) of ``workload``."""
        self.collector.iteration = index
        for phase in workload.iteration(index, self._rng):
            self._run_phase(phase)

    def finish_workload(self) -> TraceCollector:
        """End-of-run checks and metric folds; returns the collector."""
        if self.recovery is not None:
            self.assert_quiescent()
            self._fold_fault_metrics()
        # One end-of-run fold, not a hot-path hook: the access-latency
        # distribution goes to ``--metrics-json`` even with OBS off.
        for latency_ns, _was_miss in self.access_latencies:
            METRICS.observe("sim.access.latency_ns", latency_ns)
        # Same for the network's deferred per-send latency samples
        # (custom interconnects may not batch and need no flush).
        flush = getattr(self.network, "flush_metrics", None)
        if flush is not None:
            flush()
        return self.collector

    def run_workload(
        self,
        workload: Workload,
        iterations: Optional[int] = None,
    ) -> TraceCollector:
        """Run ``workload`` for ``iterations`` main iterations.

        Returns the trace collector; its ``events`` property excludes the
        start-up phase, matching the paper's methodology.  Iterations are
        numbered from 1; start-up events carry iteration 0.
        """
        iterations = self.begin_workload(workload, iterations)
        for index in range(1, iterations + 1):
            self.run_iteration(workload, index)
        return self.finish_workload()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Capture the whole machine as plain data at a quiescent point.

        Legal only between iterations: the engine snapshot refuses if
        events are pending, each cache refuses if a miss is outstanding,
        and each directory refuses if a transaction is active or queued.
        The think-time RNG stream is captured, so a restored machine
        draws exactly the stagger/think values the uninterrupted run
        would have -- byte-identical traces after resume.
        """
        return {
            "engine": self.engine.snapshot_state(),
            "network": self.network.snapshot_state(),
            "nodes": [
                {
                    "cache": node.cache.snapshot_state(),
                    "directory": node.directory.snapshot_state(),
                }
                for node in self.nodes
            ],
            "collector": self.collector.snapshot_state(),
            "rng": self._rng.getstate(),
            "proc_offset": list(self._proc_offset),
            "replacements": list(self.replacements),
            # Flat int array: the second-largest state component after
            # the trace itself, and an array pickles as one buffer.
            "access_latencies": array(
                "q", chain.from_iterable(self.access_latencies)
            ),
            "accesses_issued": self.accesses_issued,
            "invariant_checks": self.invariant_checks,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a machine captured by :meth:`snapshot_state`.

        The machine must have been constructed with the same parameters,
        options, seed, and fault profile as the one captured (the
        checkpoint layer verifies this via a configuration fingerprint
        before calling here).
        """
        self.engine.restore_state(state["engine"])
        self.network.restore_state(state["network"])
        for node, node_state in zip(self.nodes, state["nodes"]):
            node.cache.restore_state(node_state["cache"])
            node.directory.restore_state(node_state["directory"])
        self.collector.restore_state(state["collector"])
        self._rng.setstate(state["rng"])
        self._proc_offset = list(state["proc_offset"])
        self.replacements = list(state["replacements"])
        flat_latencies = state["access_latencies"]
        self.access_latencies = [
            (flat_latencies[base], bool(flat_latencies[base + 1]))
            for base in range(0, len(flat_latencies), 2)
        ]
        self.accesses_issued = state["accesses_issued"]
        self.invariant_checks = state["invariant_checks"]
        if self.watchdog is not None:
            # A restore is the start of a fresh run segment: budgets that
            # measure real time or progress must count from *now*, not
            # from whenever the captured run began.
            self.watchdog.arm()


def simulate(
    workload: Workload,
    iterations: Optional[int] = None,
    params: SystemParams = PAPER_PARAMS,
    options: StacheOptions = DEFAULT_OPTIONS,
    seed: int = 0,
    faults: Optional[FaultProfile] = None,
    fault_seed: int = 0,
    watchdog: Optional["Watchdog"] = None,
) -> TraceCollector:
    """One-call convenience: build a machine, run ``workload``, return the trace."""
    machine = Machine(
        params=params,
        options=options,
        seed=seed,
        faults=faults,
        fault_seed=fault_seed,
        watchdog=watchdog,
    )
    return machine.run_workload(workload, iterations=iterations)
