"""Online serving of Cosmos predictions (ROADMAP item 5).

The paper's predictor only ever runs inside the closed-loop simulator;
this package lifts it into a long-running service: an asyncio front-end
accepts streamed ``<block, sender, type>`` observations and answers with
the predictor's next-message guess, with per-tenant predictor banks
sharded across a supervised pool of worker processes.

The robustness layer is the point, not an afterthought:

* a **supervisor** detects worker crashes (pipe EOF) and hangs (a
  watchdog-style response budget), SIGKILLs stragglers, and
  warm-restores replacement workers from periodic checkpoints written
  in the :mod:`repro.sim.checkpoint` two-frame format;
* the **client** retries with per-request deadlines and bounded
  exponential backoff, idempotent via sequence numbers exactly like
  :mod:`repro.protocol.recovery`;
* **bounded queues** shed load with explicit ``RETRY_AFTER`` responses
  instead of buffering without bound;
* while a shard is down or over deadline the front-end serves a
  **last-message fallback** prediction tagged ``degraded=true``, and a
  circuit breaker probes the restored worker before re-admitting it;
* :mod:`repro.serve.chaos` scripts deterministic worker-kill / stall /
  queue-flood / slow-client faults, and :mod:`repro.serve.loadgen`
  replays simulator traces against the service, publishing mergeable
  latency histograms through :mod:`repro.sim.metrics`.

See ``docs/serving.md`` for the architecture and the per-scenario
runbook; the CLI entry point is ``repro-serve``.
"""

from .chaos import ChaosScript
from .client import ServeClient
from .config import ServeConfig
from .frontend import PredictionService
from .hashring import HashRing
from .loadgen import LoadReport, replay_trace
from .protocol import Request, Response, Status
from .supervisor import ShardSupervisor

__all__ = [
    "ChaosScript",
    "HashRing",
    "LoadReport",
    "PredictionService",
    "Request",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ShardSupervisor",
    "Status",
    "replay_trace",
]
