"""Consistent-hash routing of ``(tenant, block)`` keys to shards.

Routing must be stable across processes and platforms -- a restarted
front-end (or the replay oracle in the test suite) has to send every
block to the same shard the original run did -- so positions come from
:mod:`hashlib`, never the salted builtin ``hash`` (the same discipline
as :mod:`repro.parallel.seeds`).  Each shard owns ``vnodes`` points on a
64-bit ring; a key routes to the first shard point at or clockwise from
its own hash.  Virtual nodes keep shard load within a few percent of
even without any coordination, and consistent hashing keeps most keys
in place if a deployment ever resizes the pool (resizing invalidates
checkpoints -- see :meth:`~repro.serve.config.ServeConfig.fingerprint`
-- but cached client-side routing stays mostly right).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple


def _point(material: str) -> int:
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A fixed ring of ``shards * vnodes`` points."""

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_point(f"shard-{shard}-vnode-{vnode}"), shard))
        points.sort()
        self.shards = shards
        self.vnodes = vnodes
        self._hashes = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_for(self, tenant: str, block: int) -> int:
        """The shard owning ``block`` for ``tenant``."""
        where = bisect.bisect_left(
            self._hashes, _point(f"{tenant}\x1f{block:x}")
        )
        if where == len(self._hashes):
            where = 0  # wrap: the ring is circular
        return self._owners[where]
