"""The asyncio front-end: admission, deadlines, degraded fallback.

One :class:`PredictionService` owns a TCP listener (JSON lines), the
consistent-hash ring, the supervisor, and two small front-end tables:

* the **dedupe cache** -- ``(client, seq) -> response``, bounded FIFO.
  A retransmitted request (client deadline fired, or the connection
  dropped mid-response) is answered from cache without training again:
  the same idempotency-by-sequence-number discipline as
  :mod:`repro.protocol.recovery`.  ``RETRY_AFTER`` rejections are never
  cached -- they admitted nothing, so the retry must be processed fresh.
* the **fallback table** -- last observed word per ``(tenant, block)``,
  the :class:`~repro.predictors.last_message.LastMessagePredictor`
  discipline kept at the front so it survives any worker.  While a
  shard's breaker is open, or a request blows its deadline, the service
  answers from this table with ``degraded=true`` instead of stalling or
  erroring: prediction consumers are speculative by design (paper
  Section 2), so a cheaper guess is strictly better than no answer.

Request handling never blocks the event loop: supervisor admission is a
brief lock, and waiting on the worker's answer is an awaited future
with ``deadline_ms`` bounding it.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.tuples import pack
from ..errors import ServeError
from ..protocol.messages import MessageType
from ..sim.metrics import METRICS
from .chaos import ChaosScript
from .config import ServeConfig
from .hashring import HashRing
from .protocol import Response, Status, decode_request
from .supervisor import Backpressure, ShardSupervisor, WorkerDown


class PredictionService:
    """The service: listener + ring + supervisor + fallback."""

    def __init__(
        self,
        config: ServeConfig,
        chaos: Optional[ChaosScript] = None,
        checkpoint_dir=None,
    ) -> None:
        self.config = config
        self.ring = HashRing(config.shards, config.vnodes)
        self.supervisor = ShardSupervisor(
            config, chaos=chaos, checkpoint_dir=checkpoint_dir
        )
        self._last: Dict[Tuple[str, int], int] = {}
        self._dedupe: "OrderedDict[Tuple[str, int], Response]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        #: The bound port (useful with ``port=0``), set by :meth:`start`.
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.supervisor.stop()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    record = decode_request(line)
                except ServeError as exc:
                    METRICS.inc("serve.request.malformed")
                    writer.write(
                        Response(
                            seq=-1, status=Status.ERROR, error=str(exc)
                        ).encode()
                    )
                    await writer.drain()
                    continue
                op = record["op"]
                if op == "observe":
                    response = await self._observe(record)
                    writer.write(response.encode())
                elif op == "stat":
                    # A stat poll doubles as the breaker's probe driver:
                    # half-open shards get a health ping, so "poll until
                    # closed" terminates even with no client traffic.
                    self.supervisor.probe_half_open()
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "status": Status.OK,
                                    "op": "stat",
                                    "shards": self.supervisor.stats(),
                                },
                                separators=(",", ":"),
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                else:
                    writer.write(
                        Response(
                            seq=record.get("seq", -1),
                            status=Status.ERROR,
                            error=f"unknown operation {op!r}",
                        ).encode()
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    # ------------------------------------------------------------------
    # one observation
    # ------------------------------------------------------------------

    async def _observe(self, record: dict) -> Response:
        seq = record["seq"]
        key = (record["client"], seq)
        cached = self._dedupe.get(key)
        if cached is not None:
            METRICS.inc("serve.dedupe.hit")
            return cached
        tenant = record["tenant"]
        block = record["block"]
        word = pack((record["sender"], MessageType(record["mtype"])))
        shard = self.ring.shard_for(tenant, block)
        # The fallback prediction must be read *before* this observation
        # trains the table: "the next message repeats the last one".
        fallback = self._last.get((tenant, block), -1)
        try:
            ordinal, future = self.supervisor.try_submit(
                shard, tenant, block, word
            )
        except Backpressure:
            METRICS.inc("serve.response.retry_after")
            # Deliberately not cached: nothing was admitted, so the
            # client's retry of this seq must be processed for real.
            return Response(
                seq=seq,
                status=Status.RETRY_AFTER,
                shard=shard,
                retry_after_ms=self.config.retry_after_ms,
            )
        self._last[(tenant, block)] = word
        start = time.perf_counter()
        if future is None:
            # Breaker open: the observation is buffered for replay;
            # answer degraded right now.
            response = self._degraded(seq, fallback, shard, ordinal, start)
        else:
            try:
                result = await asyncio.wait_for(
                    asyncio.wrap_future(future),
                    timeout=self.config.deadline_ms / 1_000.0,
                )
                # A budgeted worker answers for real even while evicting;
                # the truthy-string tag lets clients (and the oracle)
                # distinguish "degraded because budget bit" from a full
                # answer without a wire-format change.
                evicting = bool(result.get("evicting"))
                if evicting:
                    METRICS.inc("serve.response.evicting")
                response = Response(
                    seq=seq,
                    status=Status.OK,
                    predicted=result["predicted"],
                    degraded="evicting" if evicting else False,
                    shard=shard,
                    index=ordinal,
                )
                METRICS.inc("serve.response.ok")
                METRICS.observe(
                    "serve.latency.ok_us",
                    (time.perf_counter() - start) * 1e6,
                )
            except (asyncio.TimeoutError, TimeoutError):
                METRICS.inc("serve.deadline.missed")
                response = self._degraded(
                    seq, fallback, shard, ordinal, start
                )
            except WorkerDown:
                response = self._degraded(
                    seq, fallback, shard, ordinal, start
                )
        self._dedupe[key] = response
        while len(self._dedupe) > self.config.dedupe_capacity:
            self._dedupe.popitem(last=False)
        return response

    def _degraded(
        self, seq: int, fallback: int, shard: int, ordinal: int, start: float
    ) -> Response:
        METRICS.inc("serve.response.degraded")
        METRICS.observe(
            "serve.latency.degraded_us", (time.perf_counter() - start) * 1e6
        )
        return Response(
            seq=seq,
            status=Status.OK,
            predicted=fallback,
            degraded=True,
            shard=shard,
            index=ordinal,
        )
