"""The service wire format: one JSON object per line.

Requests carry the client identity and a per-client sequence number --
the same idempotency discipline as :mod:`repro.protocol.recovery`: a
client that times out re-sends the *same* sequence number, and the
front-end answers duplicates from its response cache instead of
training twice.  Responses carry the packed prediction word (``-1`` for
"no prediction"), the ``degraded`` tag, the owning shard, and the
shard-local admission ordinal ``index`` -- the ordinal is what lets an
external oracle reconstruct each shard's exact training order and check
every non-degraded answer against a mirror predictor.

JSON lines rather than pickles: the protocol crosses a trust boundary
(any TCP client), and a malformed line must raise a clean
:class:`~repro.errors.ServeError`, never execute anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import ServeError
from ..protocol.messages import MessageType


class Status:
    """Response status strings (a class namespace, not an enum, so the
    wire format is plain strings end to end)."""

    OK = "ok"
    RETRY_AFTER = "retry_after"
    ERROR = "error"


@dataclass(frozen=True)
class Request:
    """One streamed observation: ``<block, sender, type>`` for a tenant."""

    client: str
    seq: int
    tenant: str
    block: int
    sender: int
    mtype: int

    def encode(self) -> bytes:
        return (
            json.dumps(
                {
                    "op": "observe",
                    "client": self.client,
                    "seq": self.seq,
                    "tenant": self.tenant,
                    "block": self.block,
                    "sender": self.sender,
                    "mtype": self.mtype,
                },
                separators=(",", ":"),
            )
            + "\n"
        ).encode("utf-8")


@dataclass(frozen=True)
class Response:
    """The service's answer to one observation."""

    seq: int
    status: str
    #: Packed 16-bit prediction word; ``-1`` means "no prediction".
    predicted: int = -1
    #: ``False`` for a full answer; ``True`` for a front-end fallback
    #: (worker down or deadline blown); the string ``"evicting"`` for a
    #: *real* answer from a memory-budgeted worker that evicted state on
    #: this observation.  Strings are truthy, so boolean consumers keep
    #: working.
    degraded: Union[bool, str] = False
    shard: int = -1
    #: Shard-local admission ordinal (1-based); ``-1`` for rejections.
    index: int = -1
    #: Backoff hint, only meaningful with ``status == RETRY_AFTER``.
    retry_after_ms: float = 0.0
    error: Optional[str] = None

    @property
    def predicted_tuple(self):
        """The decoded ``(sender, MessageType)`` tuple, or ``None``."""
        if self.predicted < 0:
            return None
        from ..core.tuples import tuple_of_word

        return tuple_of_word(self.predicted)

    def encode(self) -> bytes:
        record = {
            "seq": self.seq,
            "status": self.status,
            "predicted": self.predicted,
            "degraded": self.degraded,
            "shard": self.shard,
            "index": self.index,
        }
        if self.status == Status.RETRY_AFTER:
            record["retry_after_ms"] = self.retry_after_ms
        if self.error is not None:
            record["error"] = self.error
        return (json.dumps(record, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )


def decode_request(line: bytes) -> dict:
    """Parse one request line into its raw dict; validate ``observe``.

    Returns the dict (the front-end dispatches on ``op``: ``observe``
    requests are fully validated here, control operations like ``stat``
    pass through).  Raises :class:`~repro.errors.ServeError` on garbage.
    """
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed request line: {exc}") from exc
    if not isinstance(record, dict) or "op" not in record:
        raise ServeError(f"request is not an operation object: {record!r}")
    if record["op"] != "observe":
        return record
    for name, kind in (
        ("client", str),
        ("seq", int),
        ("tenant", str),
        ("block", int),
        ("sender", int),
        ("mtype", int),
    ):
        if not isinstance(record.get(name), kind):
            raise ServeError(
                f"observe request field {name!r} missing or not "
                f"{kind.__name__}: {record!r}"
            )
    try:
        MessageType(record["mtype"])
    except ValueError as exc:
        raise ServeError(
            f"observe request mtype {record['mtype']} is not a coherence "
            f"message type"
        ) from exc
    if record["sender"] < 0 or record["block"] < 0 or record["seq"] < 0:
        raise ServeError(
            f"observe request fields must be non-negative: {record!r}"
        )
    return record


def decode_response(line: bytes) -> Response:
    """Parse one response line (the client library's half)."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed response line: {exc}") from exc
    if not isinstance(record, dict) or "status" not in record:
        raise ServeError(f"response is not a status object: {record!r}")
    return Response(
        seq=record.get("seq", -1),
        status=record["status"],
        predicted=record.get("predicted", -1),
        degraded=record.get("degraded", False),
        shard=record.get("shard", -1),
        index=record.get("index", -1),
        retry_after_ms=record.get("retry_after_ms", 0.0),
        error=record.get("error"),
    )
