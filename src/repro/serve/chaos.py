"""Deterministic service-chaos scripts.

The offline simulator already has seeded fault injection
(:mod:`repro.sim.faults`); this is the serving-side analogue.  A
:class:`ChaosScript` is a list of scripted actions, each anchored to a
*deterministic* position rather than to wall time:

* ``kill``  -- a shard worker SIGKILLs itself immediately after
  responding to its N-th trained observation (first incarnation only,
  so a restored worker replaying the same observations does not die in
  a loop);
* ``stall`` -- a shard worker sleeps before responding to its N-th
  trained observation, driving the request past its deadline (and past
  the supervisor's hang budget, if long enough);
* ``flood`` -- the load generator fires a burst of concurrent requests
  at its N-th observation, overrunning the bounded queues;
* ``slow``  -- the load generator delays reading responses for a range
  of observations (a slow-consumer client).

``kill``/``stall`` are worker-side: they ship to the worker at spawn.
``flood``/``slow`` are client-side: the load generator consumes them.
The same spec string always produces the same faults, and
:meth:`ChaosScript.battery` derives a standard kill+stall+flood+slow
battery from a single seed.

Spec grammar (whitespace-insensitive)::

    kill:shard=1,at=200; stall:shard=0,at=120,ms=400; \
    flood:at=300,burst=64; slow:at=400,count=50,delay_ms=20
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError

_ACTION_FIELDS = {
    "kill": {"shard", "at"},
    "stall": {"shard", "at", "ms"},
    "flood": {"at", "burst"},
    "slow": {"at", "count", "delay_ms"},
}


@dataclass(frozen=True)
class ChaosAction:
    """One scripted fault."""

    kind: str
    #: kill/stall: the target shard; flood/slow: -1 (client-side).
    shard: int
    #: kill/stall: the shard-local trained-observation ordinal; flood/
    #: slow: the load generator's observation index.
    at: int
    #: stall: sleep milliseconds; flood: burst size; slow: per-response
    #: read delay in milliseconds.  Unused fields are 0.
    ms: float = 0.0
    burst: int = 0
    count: int = 0


@dataclass(frozen=True)
class ChaosScript:
    """A parsed, validated set of chaos actions."""

    actions: Tuple[ChaosAction, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "ChaosScript":
        """Parse the ``kind:key=value,...; ...`` grammar."""
        actions: List[ChaosAction] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, rest = clause.partition(":")
            kind = kind.strip().lower()
            if kind not in _ACTION_FIELDS:
                raise ConfigError(
                    f"unknown chaos action {kind!r}; expected one of "
                    f"{sorted(_ACTION_FIELDS)}"
                )
            fields: Dict[str, float] = {}
            for part in rest.split(","):
                part = part.strip()
                if not part:
                    continue
                name, _, raw = part.partition("=")
                name = name.strip()
                if name not in _ACTION_FIELDS[kind]:
                    raise ConfigError(
                        f"chaos action {kind!r} does not take field "
                        f"{name!r}; expected {sorted(_ACTION_FIELDS[kind])}"
                    )
                try:
                    fields[name] = float(raw)
                except ValueError:
                    raise ConfigError(
                        f"bad value for chaos field {kind}:{name}: {raw!r}"
                    ) from None
            missing = _ACTION_FIELDS[kind] - set(fields)
            if missing:
                raise ConfigError(
                    f"chaos action {kind!r} is missing field(s) "
                    f"{sorted(missing)}"
                )
            if fields["at"] < 1:
                raise ConfigError(
                    f"chaos action {kind!r}: 'at' ordinal "
                    f"{fields['at']:g} must be >= 1"
                )
            actions.append(
                ChaosAction(
                    kind=kind,
                    shard=int(fields.get("shard", -1)),
                    at=int(fields["at"]),
                    ms=float(fields.get("ms", fields.get("delay_ms", 0.0))),
                    burst=int(fields.get("burst", 0)),
                    count=int(fields.get("count", 0)),
                )
            )
        return cls(actions=tuple(actions))

    @classmethod
    def battery(
        cls,
        seed: int,
        shards: int,
        observations: int,
        stall_ms: float = 400.0,
        burst: int = 48,
    ) -> "ChaosScript":
        """The standard acceptance battery, derived from one seed.

        One mid-stream SIGKILL, one over-deadline stall on a *different*
        shard, one queue flood, and one slow-client window, all anchored
        inside the middle of the run so recovery has room to complete.
        """
        if observations < 40:
            raise ConfigError(
                f"chaos battery needs >= 40 observations, got {observations}"
            )
        rng = random.Random(seed)
        # kill/stall anchor on *shard-local* trained ordinals: a shard
        # only sees ~observations/shards of the stream, so scale the
        # anchor window down or the fault could land past the end.
        lo = max(1, observations // (8 * shards))
        hi = max(lo + 1, observations // (2 * shards))
        kill_shard = rng.randrange(shards)
        stall_shard = (kill_shard + 1) % shards if shards > 1 else kill_shard
        return cls(
            actions=(
                ChaosAction(
                    "kill", kill_shard, rng.randrange(lo, hi)
                ),
                ChaosAction(
                    "stall", stall_shard, rng.randrange(lo, hi),
                    ms=stall_ms,
                ),
                ChaosAction(
                    "flood", -1,
                    rng.randrange(observations // 2, observations - burst),
                    burst=burst,
                ),
                ChaosAction(
                    "slow", -1,
                    rng.randrange(observations // 2, observations - 20),
                    ms=10.0, count=20,
                ),
            )
        )

    # ------------------------------------------------------------------
    # consumers
    # ------------------------------------------------------------------

    def worker_actions(self, shard: int) -> dict:
        """The kill/stall plan shipped to shard ``shard`` at first spawn.

        Plain data (it crosses the process boundary): ``kill_at`` is a
        sorted tuple of trained ordinals, ``stall_at`` maps ordinals to
        sleep seconds.
        """
        kill_at = sorted(
            action.at
            for action in self.actions
            if action.kind == "kill" and action.shard == shard
        )
        stall_at = {
            action.at: action.ms / 1_000.0
            for action in self.actions
            if action.kind == "stall" and action.shard == shard
        }
        return {"kill_at": tuple(kill_at), "stall_at": stall_at}

    def client_actions(self) -> Tuple[ChaosAction, ...]:
        """The flood/slow actions, for the load generator."""
        return tuple(
            action
            for action in self.actions
            if action.kind in ("flood", "slow")
        )

    def spec(self) -> str:
        """Canonical spec string; :meth:`parse` round-trips it."""
        parts = []
        for action in self.actions:
            if action.kind == "kill":
                parts.append(f"kill:shard={action.shard},at={action.at}")
            elif action.kind == "stall":
                parts.append(
                    f"stall:shard={action.shard},at={action.at},"
                    f"ms={action.ms:g}"
                )
            elif action.kind == "flood":
                parts.append(f"flood:at={action.at},burst={action.burst}")
            else:
                parts.append(
                    f"slow:at={action.at},count={action.count},"
                    f"delay_ms={action.ms:g}"
                )
        return "; ".join(parts)
