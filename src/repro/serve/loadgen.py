"""Trace-replay load generation and the external correctness oracle.

:func:`replay_trace` streams a simulator trace (the exact
:class:`~repro.trace.events.TraceEvent` records the offline evaluation
consumes) through the service, one tenant per receiving module, and
records every answer together with the shard and admission ordinal the
service reported.  Client-side chaos actions (``flood``: a burst of
concurrent requests over ephemeral connections; ``slow``: a window of
slow-reading responses) are consumed here.

:func:`verify_predictions` is the oracle the acceptance criteria lean
on: because every accepted response carries ``(shard, index)`` and a
shard trains strictly in ordinal order, replaying the accepted
observations per shard in index order through mirror predictors
reproduces each worker's exact state sequence -- every non-degraded
answer must equal the mirror's, *regardless* of kills, stalls, replays,
or concurrent interleavings.  Latency/throughput are published as
mergeable histograms through :mod:`repro.sim.metrics`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.predictor import CosmosPredictor
from ..core.tuples import pack
from ..sim.metrics import METRICS
from .chaos import ChaosAction
from .client import RetryPolicy, ServeClient
from .config import ServeConfig
from .protocol import Response


@dataclass
class ObservationResult:
    """One accepted observation, as the service acknowledged it."""

    tenant: str
    block: int
    word: int
    shard: int
    index: int
    #: ``False``, ``True`` (front-end fallback), or ``"evicting"`` (a
    #: real answer from a memory-budgeted worker mid-eviction).
    degraded: object
    predicted: int


@dataclass
class LoadReport:
    """What one replay run produced."""

    sent: int = 0
    ok: int = 0
    degraded: int = 0
    evicting: int = 0
    retry_after: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    results: List[ObservationResult] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        return self.sent / self.wall_seconds if self.wall_seconds else 0.0

    def record(self, result: ObservationResult) -> None:
        self.sent += 1
        self.results.append(result)
        if result.degraded == "evicting":
            # A real (checkable) answer that happened to evict state:
            # counted as served, tallied separately for visibility.
            self.evicting += 1
            self.ok += 1
        elif result.degraded:
            self.degraded += 1
        else:
            self.ok += 1


def tenant_of(event) -> str:
    """The serving tenant for one trace event: the receiving module."""
    return f"n{event.node}.{event.role.name.lower()}"


async def replay_trace(
    host: str,
    port: int,
    events: Sequence,
    client_id: str = "loadgen",
    chaos_actions: Iterable[ChaosAction] = (),
    policy: RetryPolicy = RetryPolicy(),
    rate: Optional[float] = None,
) -> LoadReport:
    """Replay ``events`` against the service; returns the report.

    Sequential by default (one observation in flight), which keeps the
    run deterministic; ``rate`` paces submissions to roughly that many
    observations per second.  Chaos ``flood`` actions fire their burst
    concurrently over ephemeral connections; ``slow`` actions delay
    response reads for a window of observations.
    """
    floods: Dict[int, ChaosAction] = {}
    slow_until: Dict[int, float] = {}
    for action in chaos_actions:
        if action.kind == "flood":
            floods[action.at] = action
        elif action.kind == "slow":
            for offset in range(action.count):
                slow_until[action.at + offset] = action.ms / 1_000.0
    report = LoadReport()
    started = time.perf_counter()
    async with ServeClient(host, port, client_id, policy) as client:
        index = 0
        total = len(events)
        while index < total:
            if rate:
                expected = started + report.sent / rate
                now = time.perf_counter()
                if expected > now:
                    await asyncio.sleep(expected - now)
            flood = floods.get(index + 1)
            if flood is not None and flood.burst > 1:
                burst = list(events[index : index + flood.burst])
                METRICS.inc("serve.loadgen.floods")
                responses = await asyncio.gather(
                    *(
                        _flooded_observe(
                            host, port, f"{client_id}-f{index + j}",
                            policy, burst[j],
                        )
                        for j in range(len(burst))
                    )
                )
                for event, response in zip(burst, responses):
                    _tally(report, event, response)
                index += len(burst)
                continue
            event = events[index]
            begin = time.perf_counter()
            response = await client.observe(
                tenant_of(event),
                event.block,
                event.sender,
                int(event.mtype),
                slow_read_s=slow_until.get(index + 1, 0.0),
            )
            METRICS.observe(
                "serve.loadgen.latency_us",
                (time.perf_counter() - begin) * 1e6,
            )
            _tally(report, event, response)
            index += 1
    report.wall_seconds = time.perf_counter() - started
    METRICS.observe("serve.loadgen.throughput", report.throughput)
    return report


async def _flooded_observe(
    host: str, port: int, client_id: str, policy: RetryPolicy, event
) -> Response:
    """One burst member: its own connection, its own retry budget."""
    async with ServeClient(host, port, client_id, policy) as client:
        return await client.observe(
            tenant_of(event), event.block, event.sender, int(event.mtype)
        )


def _tally(report: LoadReport, event, response: Response) -> None:
    # The client library already absorbed RETRY_AFTER rounds; count the
    # shed attempts from the metrics-side instead of per response.
    report.record(
        ObservationResult(
            tenant=tenant_of(event),
            block=event.block,
            word=pack((event.sender, event.mtype)),
            shard=response.shard,
            index=response.index,
            degraded=response.degraded,
            predicted=response.predicted,
        )
    )


def verify_predictions(
    results: Iterable[ObservationResult],
    config: Optional["ServeConfig"] = None,
) -> Tuple[int, int]:
    """Check every checkable answer against mirror predictors.

    Replays the accepted observations per shard in admission-ordinal
    order through fresh per-tenant :class:`CosmosPredictor` mirrors and
    compares.  ``config`` (when given) supplies the tenant memory
    budgets, so the mirrors evict exactly like the budgeted workers did;
    ``degraded: "evicting"`` answers are then *real* answers and are
    checked too.  Only front-end fallbacks (``degraded is True``) are
    exempt.  Returns ``(checked, wrong)`` -- the acceptance bar is
    ``wrong == 0``.  Raising here would hide *how many* answers were
    wrong, which is the first thing a failing run needs to report.
    """
    pconfig = config.predictor_config() if config is not None else None
    by_shard: Dict[int, List[ObservationResult]] = {}
    for result in results:
        by_shard.setdefault(result.shard, []).append(result)
    checked = wrong = 0
    for shard_results in by_shard.values():
        shard_results.sort(key=lambda result: result.index)
        mirrors: Dict[str, CosmosPredictor] = {}
        for result in shard_results:
            mirror = mirrors.get(result.tenant)
            if mirror is None:
                mirror = mirrors[result.tenant] = (
                    CosmosPredictor(pconfig)
                    if pconfig is not None
                    else CosmosPredictor()
                )
            expected = mirror.observe_word(result.block, result.word)
            if not result.degraded or result.degraded == "evicting":
                checked += 1
                if result.predicted != expected:
                    wrong += 1
    return checked, wrong
