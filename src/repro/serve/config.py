"""Configuration for the online prediction service.

One frozen dataclass carries every tunable the service layers share:
shard count, queue bounds, the per-request deadline, the supervisor's
hang budget, and the checkpoint cadence.  Validation names the offending
field the way :class:`~repro.sim.faults.FaultProfile` does, and
:meth:`ServeConfig.fingerprint` hashes the fields a shard checkpoint
must agree on -- restoring predictor state into a service with a
different shard count (a different hash ring) would silently route
blocks to predictors that never saw them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from ..core.config import CosmosConfig
from ..core.eviction import EVICTION_POLICIES
from ..errors import ConfigError

#: Bump when the shard-checkpoint schema changes.
STATE_FORMAT = 1


@dataclass(frozen=True)
class ServeConfig:
    """Shared knobs for the front-end, supervisor, and workers."""

    #: Worker processes; each owns one shard of every tenant's blocks.
    shards: int = 2
    #: Virtual nodes per shard on the consistent-hash ring.
    vnodes: int = 64
    #: Bind address for the TCP front-end (port 0 = ephemeral).
    host: str = "127.0.0.1"
    port: int = 0
    #: In-flight observations per shard before admission sheds load.
    queue_depth: int = 32
    #: Admitted-but-unshipped observations tolerated while a shard is
    #: down (the replay outbox); beyond this, admission sheds load.
    max_backlog: int = 512
    #: Per-request deadline: past it the front-end answers degraded.
    deadline_ms: float = 250.0
    #: Supervisor hang budget: a worker silent this long after being
    #: handed an observation is declared stuck and SIGKILLed (the
    #: serving-side analogue of a watchdog wall-clock budget).
    hang_timeout_ms: float = 2_000.0
    #: Hint clients receive with a ``RETRY_AFTER`` rejection.
    retry_after_ms: float = 20.0
    #: A shard checkpoints its predictor banks every this many trained
    #: observations (count-based, so cadence is deterministic).
    checkpoint_every: int = 64
    #: Consecutive successful responses a restored shard must serve in
    #: HALF_OPEN before the circuit breaker closes again.
    probe_requests: int = 4
    #: ``(client, seq)`` response cache entries kept for idempotency.
    dedupe_capacity: int = 4_096
    #: Base seed; per-shard worker seeds derive from it via
    #: :func:`~repro.parallel.seeds.derive_seed`.
    seed: int = 0
    #: Per-tenant predictor memory budgets, in table entries per shard
    #: (each tenant's bank within a shard gets its own budget; 0 =
    #: unbounded, the default).  Under a budget a worker *evicts* cold
    #: state instead of growing -- it never crashes on memory -- and
    #: responses whose observation evicted carry ``degraded:
    #: "evicting"`` so clients can tell a budgeted answer from a full
    #: one.
    tenant_mhr_budget: int = 0
    tenant_pht_budget: int = 0
    #: Replacement policy for budgeted tenant banks.
    eviction: str = "lru"

    def __post_init__(self) -> None:
        for name in (
            "shards",
            "vnodes",
            "queue_depth",
            "max_backlog",
            "checkpoint_every",
            "probe_requests",
            "dedupe_capacity",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(
                    f"serve config field {name!r}: {value} must be >= 1"
                )
        for name in ("deadline_ms", "hang_timeout_ms", "retry_after_ms"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(
                    f"serve config field {name!r}: {value} ms must be "
                    f"positive"
                )
        for name in ("tenant_mhr_budget", "tenant_pht_budget"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(
                    f"serve config field {name!r}: {value} must be >= 0 "
                    f"(0 = unbounded)"
                )
        if self.eviction not in EVICTION_POLICIES:
            raise ConfigError(
                f"serve config field 'eviction': {self.eviction!r} is not "
                f"one of {', '.join(EVICTION_POLICIES)}"
            )
        if self.hang_timeout_ms < self.deadline_ms:
            raise ConfigError(
                f"serve config field 'hang_timeout_ms': hang budget "
                f"{self.hang_timeout_ms} ms must be >= the request "
                f"deadline ({self.deadline_ms} ms); otherwise every "
                f"deadline miss would SIGKILL a healthy worker"
            )

    def predictor_config(self) -> CosmosConfig:
        """The Cosmos configuration each tenant bank is built with."""
        return CosmosConfig(
            mhr_capacity=self.tenant_mhr_budget,
            pht_capacity=self.tenant_pht_budget,
            eviction=self.eviction,
        )

    def fingerprint(self) -> str:
        """Hash of everything a shard checkpoint must agree on.

        Only fields that change *which state a shard owns* or how it is
        framed participate: shard count and vnodes (the ring), the
        checkpoint cadence (outbox-trim arithmetic), the seed, and the
        state format version.  Latency knobs deliberately do not -- a
        deadline tweak must not discard learned state.  Memory budgets
        do not either, on purpose: tightening a budget must *shrink*
        restored state (the worker re-enforces it on warm restore), not
        throw it all away.
        """
        fields = asdict(self)
        descriptor = {
            "format": STATE_FORMAT,
            "shards": fields["shards"],
            "vnodes": fields["vnodes"],
            "checkpoint_every": fields["checkpoint_every"],
            "seed": fields["seed"],
        }
        canonical = json.dumps(
            descriptor, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
