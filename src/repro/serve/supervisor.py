"""The shard supervisor: spawn, watch, kill, restore, re-admit.

One :class:`ShardSupervisor` owns the worker-process pool.  Per shard it
keeps a duplex pipe, a pump thread that ships admitted observations to
the worker one at a time (the pipe's FIFO order *is* the shard's
training order), and a circuit breaker:

* **CLOSED** -- healthy; observations flow through the bounded queue.
* **OPEN** -- the worker crashed (pipe EOF) or blew its hang budget
  (a :class:`~repro.sim.watchdog.WatchdogConfig` wall-clock budget,
  checked with ``Connection.poll``) and was SIGKILLed.  Admissions are
  recorded in the shard's outbox but answered degraded by the
  front-end; a restore thread spawns a replacement worker, warm-
  restores it from the newest valid checkpoint, and replays the outbox
  tail so no admitted learning is lost.
* **HALF_OPEN** -- the restored worker is caught up; the next
  ``probe_requests`` successful round trips (real observations, or
  ping probes enqueued by :meth:`ShardSupervisor.probe_half_open`
  whenever a ``stat`` poll finds the shard half-open) close the
  breaker and re-admit the shard.  Any failure: back to OPEN.

Every admitted observation gets a shard-local ordinal; the outbox keeps
``(ordinal, tenant, block, word)`` back to one checkpoint interval
behind the worker's last *reported* checkpoint, which is exactly enough
to warm-restore even when the newest checkpoint file is torn and the
loader falls back one frame.  Worker deaths leave a forensic bundle
(JSON, via :func:`repro.obs.bundle.save_bundle`) next to the
checkpoints.
"""

from __future__ import annotations

import queue
import tempfile
import threading
from collections import deque
from concurrent.futures import Future, InvalidStateError
from multiprocessing import get_context
from pathlib import Path
from typing import Deque, List, Optional, Tuple

from ..errors import ServeError
from ..obs.bundle import save_bundle
from ..obs.log import OBS
from ..sim.metrics import METRICS
from ..sim.watchdog import WatchdogConfig
from .chaos import ChaosScript
from .config import ServeConfig
from .worker import worker_main

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class WorkerDown(ServeError):
    """The owning worker died or hung while holding this observation.

    Internal to the service: the front-end catches it and answers
    degraded.  The observation itself is safe in the shard outbox and
    will be replayed into the restored worker.
    """


class Backpressure(ServeError):
    """Admission refused: the shard's queue or backlog is full.

    Internal to the service: the front-end catches it and answers
    ``RETRY_AFTER``.  The observation was *not* admitted (no ordinal,
    no training anywhere), so the client's retry is not a duplicate.
    """


class _Shard:
    """Mutable per-shard bookkeeping, guarded by ``lock``."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.queue: "queue.Queue" = queue.Queue()
        self.state = OPEN  # until start() brings the worker up
        self.epoch = 0
        self.ordinal = 0  # last admitted ordinal (1-based counter)
        self.inflight = 0
        self.trained = 0  # last trained count reported by the worker
        self.probes_left = 0
        self.outbox: Deque[Tuple[int, str, int, int]] = deque()
        self.proc = None
        self.conn = None
        self.pump: Optional[threading.Thread] = None
        self.restores = 0
        self.breaker_opened = 0
        self.breaker_closed = 0
        #: Last predictor-memory report from the worker (``None`` until
        #: one arrives; workers attach one to every pong, and to every
        #: observed response when tenant budgets are configured).
        self.mem: Optional[dict] = None


class ShardSupervisor:
    """Owns the worker pool; the front-end talks to shards through it."""

    def __init__(
        self,
        config: ServeConfig,
        chaos: Optional[ChaosScript] = None,
        checkpoint_dir=None,
    ) -> None:
        self.config = config
        self.chaos = chaos if chaos is not None else ChaosScript()
        self._ctx = get_context("spawn")
        self._tmpdir = None
        if checkpoint_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            checkpoint_dir = self._tmpdir.name
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # The hang budget rides the watchdog's budget dataclass: same
        # validation, same "wall seconds per unit of expected progress"
        # semantics, applied to one observation round trip.
        self._budget = WatchdogConfig(
            wall_clock_s=config.hang_timeout_ms / 1_000.0,
            max_events=None,
            progress_window=None,
            retry_storm=None,
        )
        self._shards = [_Shard(index) for index in range(config.shards)]
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn every shard worker and wait for its ready handshake."""
        for shard in self._shards:
            proc, conn, restored = self._spawn(shard.index, epoch=0)
            with shard.lock:
                shard.proc, shard.conn = proc, conn
                shard.trained = restored
                shard.state = CLOSED
            self._start_pump(shard, proc, conn, epoch=0)

    def stop(self) -> None:
        """Tear the pool down (SIGKILL; state is in the checkpoints)."""
        self._stopping = True
        for shard in self._shards:
            shard.queue.put(None)
        for shard in self._shards:
            proc = shard.proc
            if proc is not None and proc.is_alive():
                proc.kill()
            if proc is not None:
                proc.join(timeout=10)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def _spawn(self, index: int, epoch: int):
        """Start one worker; returns ``(proc, conn, restored_trained)``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        actions = (
            self.chaos.worker_actions(index)
            if epoch == 0
            else {"kill_at": (), "stall_at": {}}
        )
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                index,
                self.config,
                str(self.checkpoint_dir),
                epoch,
                actions,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self._budget.wall_clock_s):
            proc.kill()
            proc.join(timeout=10)
            raise ServeError(
                f"shard {index} worker (epoch {epoch}) never became ready "
                f"within {self._budget.wall_clock_s:g}s"
            )
        try:
            ready = parent_conn.recv()
        except (EOFError, OSError) as exc:
            proc.join(timeout=10)
            raise ServeError(
                f"shard {index} worker (epoch {epoch}) died during its "
                f"ready handshake"
            ) from exc
        return proc, parent_conn, ready["trained"]

    # ------------------------------------------------------------------
    # admission (called from the front-end's event loop thread)
    # ------------------------------------------------------------------

    def try_submit(
        self, index: int, tenant: str, block: int, word: int
    ) -> Tuple[int, Optional[Future]]:
        """Admit one observation into shard ``index``.

        Returns ``(ordinal, future)``; the future resolves to the
        worker's response dict.  A ``None`` future means the breaker is
        open: the observation is safely in the outbox (it will train on
        restore) but the caller must answer degraded right now.  Raises
        :class:`Backpressure` when admission would exceed the queue
        depth or the outbox backlog bound -- in that case *nothing* was
        admitted.
        """
        shard = self._shards[index]
        with shard.lock:
            if len(shard.outbox) >= self.config.max_backlog:
                METRICS.inc("serve.shed.backlog")
                raise Backpressure(f"shard {index} backlog full")
            if shard.state == OPEN:
                shard.ordinal += 1
                shard.outbox.append((shard.ordinal, tenant, block, word))
                METRICS.inc("serve.admit.buffered")
                return shard.ordinal, None
            if shard.inflight >= self.config.queue_depth:
                METRICS.inc("serve.shed.queue")
                raise Backpressure(f"shard {index} queue full")
            shard.ordinal += 1
            shard.outbox.append((shard.ordinal, tenant, block, word))
            future: Future = Future()
            shard.inflight += 1
            shard.queue.put(
                (shard.ordinal, tenant, block, word, future)
            )
            METRICS.inc("serve.admit.queued")
            return shard.ordinal, future

    # ------------------------------------------------------------------
    # pump: one thread per live worker
    # ------------------------------------------------------------------

    def _start_pump(self, shard: _Shard, proc, conn, epoch: int) -> None:
        pump = threading.Thread(
            target=self._pump,
            args=(shard, proc, conn, epoch),
            name=f"serve-pump-{shard.index}",
            daemon=True,
        )
        shard.pump = pump
        pump.start()

    def _roundtrip(self, conn, payload: dict) -> Optional[dict]:
        """One send/recv against a worker; ``None`` = dead or hung."""
        try:
            conn.send(payload)
            if not conn.poll(self._budget.wall_clock_s):
                return None  # hang budget blown
            return conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            return None

    def _pump(self, shard: _Shard, proc, conn, epoch: int) -> None:
        while True:
            item = shard.queue.get()
            if item is None:
                return
            if item[0] == "ping":
                response = self._roundtrip(conn, {"op": "ping"})
                if response is None:
                    self._fail_shard(
                        shard, proc, epoch, Future(), inflight=False
                    )
                    return
                with shard.lock:
                    if response.get("mem") is not None:
                        shard.mem = response["mem"]
                    self._count_probe(shard)
                continue
            ordinal, tenant, block, word, future = item
            response = self._roundtrip(
                conn,
                {
                    "op": "observe",
                    "seq": ordinal,
                    "tenant": tenant,
                    "block": block,
                    "word": word,
                },
            )
            if response is None:
                self._fail_shard(shard, proc, epoch, future)
                return
            with shard.lock:
                shard.inflight -= 1
                shard.trained = response["trained"]
                if response.get("mem") is not None:
                    shard.mem = response["mem"]
                self._trim_outbox(shard, response["ckpt"])
                self._count_probe(shard)
            try:
                future.set_result(response)
            except InvalidStateError:
                # The deadline already answered degraded; the training
                # still counted, which is exactly what we want.
                METRICS.inc("serve.response.late")

    def _count_probe(self, shard: _Shard) -> None:
        """One successful round trip while HALF_OPEN; caller holds lock."""
        if shard.state != HALF_OPEN:
            return
        shard.probes_left -= 1
        if shard.probes_left <= 0:
            shard.state = CLOSED
            shard.breaker_closed += 1
            METRICS.inc("serve.breaker.closed")

    def probe_half_open(self) -> None:
        """Enqueue one health ping per HALF_OPEN shard.

        The ``stat`` path calls this, so a monitoring poll (the CLI's
        post-run wait, the tests' ``wait_all_closed``) actively drives a
        restored shard's breaker shut instead of leaving it half-open
        until a client observation happens to route there -- the probe
        half of "probing before re-admission".
        """
        for shard in self._shards:
            with shard.lock:
                if shard.state == HALF_OPEN and shard.queue.empty():
                    shard.queue.put(("ping",))
                    METRICS.inc("serve.probe.sent")

    def _trim_outbox(self, shard: _Shard, reported_ckpt: int) -> None:
        """Drop outbox entries a warm restore can never need.

        Retention reaches one full checkpoint interval *behind* the
        worker's last reported checkpoint: if that newest frame is torn,
        the loader falls back one frame (``KEEP_CHECKPOINTS == 2``) and
        replay must cover the gap.  Caller holds ``shard.lock``.
        """
        horizon = reported_ckpt - self.config.checkpoint_every
        outbox = shard.outbox
        while outbox and outbox[0][0] <= horizon:
            outbox.popleft()

    # ------------------------------------------------------------------
    # failure handling and warm restore
    # ------------------------------------------------------------------

    def _fail_future(self, future: Future, reason: str) -> None:
        try:
            future.set_exception(WorkerDown(reason))
        except InvalidStateError:
            pass

    def _fail_shard(
        self,
        shard: _Shard,
        proc,
        epoch: int,
        future: Future,
        inflight: bool = True,
    ) -> None:
        """The worker died or hung: open the breaker, kill, restore.

        ``inflight=False`` when the failed round trip was a health ping
        (pings never entered the admission accounting).
        """
        if self._stopping:
            self._fail_future(future, "service stopping")
            return
        reason = f"shard {shard.index} worker (epoch {epoch}) down or hung"
        with shard.lock:
            shard.state = OPEN
            shard.breaker_opened += 1
            if inflight:
                shard.inflight -= 1
            self._fail_future(future, reason)
            while True:
                try:
                    item = shard.queue.get_nowait()
                except queue.Empty:
                    break
                if item is None or item[0] == "ping":
                    continue
                shard.inflight -= 1
                self._fail_future(item[4], reason)
            outbox_depth = len(shard.outbox)
            trained = shard.trained
        METRICS.inc("serve.breaker.opened")
        if OBS.proto:
            OBS.emit(0, "serve", "breaker_open", shard.index, 0,
                     {"epoch": epoch, "trained": trained})
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10)
        save_bundle(
            {
                "kind": "serve-worker-forensics",
                "shard": shard.index,
                "epoch": epoch,
                "reason": reason,
                "exitcode": proc.exitcode,
                "trained_reported": trained,
                "outbox_depth": outbox_depth,
                "budget": {"wall_clock_s": self._budget.wall_clock_s},
            },
            self.checkpoint_dir
            / f"forensics-shard{shard.index:02d}-epoch{epoch}.json",
        )
        threading.Thread(
            target=self._restore,
            args=(shard,),
            name=f"serve-restore-{shard.index}",
            daemon=True,
        ).start()

    def _restore(self, shard: _Shard) -> None:
        """Bring a dead shard back: spawn, warm-restore, replay, probe."""
        while not self._stopping:
            epoch = shard.epoch + 1
            try:
                proc, conn, restored = self._spawn(shard.index, epoch)
            except ServeError:
                METRICS.inc("serve.restore.spawn_failed")
                continue
            with shard.lock:
                shard.epoch = epoch
                shard.restores += 1
                oldest = shard.outbox[0][0] if shard.outbox else None
            METRICS.inc("serve.restore.count")
            if oldest is not None and restored < oldest - 1:
                # The outbox does not reach back to the restored
                # checkpoint: observations in the gap are lost learning
                # (documented degraded mode -- see docs/serving.md).
                METRICS.inc("serve.restore.gap")
            replayed = restored
            alive = True
            while alive:
                with shard.lock:
                    pending = [
                        entry for entry in shard.outbox
                        if entry[0] > replayed
                    ]
                    if not pending:
                        shard.proc, shard.conn = proc, conn
                        shard.trained = replayed
                        shard.state = HALF_OPEN
                        shard.probes_left = self.config.probe_requests
                        METRICS.inc("serve.breaker.half_open")
                        self._start_pump(shard, proc, conn, epoch)
                        return
                for ordinal, tenant, block, word in pending:
                    response = self._roundtrip(
                        conn,
                        {
                            "op": "observe",
                            "seq": ordinal,
                            "tenant": tenant,
                            "block": block,
                            "word": word,
                            "replay": True,
                        },
                    )
                    if response is None:
                        alive = False
                        break
                    replayed = ordinal
                    METRICS.inc("serve.restore.replayed")
                    with shard.lock:
                        self._trim_outbox(shard, response["ckpt"])
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> List[dict]:
        """Per-shard state for the ``stat`` control operation."""
        report = []
        for shard in self._shards:
            with shard.lock:
                report.append(
                    {
                        "shard": shard.index,
                        "state": shard.state,
                        "epoch": shard.epoch,
                        "admitted": shard.ordinal,
                        "trained": shard.trained,
                        "inflight": shard.inflight,
                        "outbox": len(shard.outbox),
                        "restores": shard.restores,
                        "breaker_opened": shard.breaker_opened,
                        "breaker_closed": shard.breaker_closed,
                        "memory": shard.mem,
                    }
                )
        return report
