"""The shard worker process: predictor banks behind a pipe.

One worker owns one shard's slice of every tenant's blocks, as a bank
of per-tenant :class:`~repro.core.predictor.CosmosPredictor` instances.
The loop is deliberately single-threaded and synchronous: receive one
observation, run the fused predict/score/train hot path, maybe
checkpoint, respond.  The pipe is FIFO, so the shard's training order
*is* its admission order -- the property every recovery guarantee in
this package leans on.

Determinism around crashes comes from careful sequencing per
observation: **train, stall (chaos), checkpoint, respond, die
(chaos)**.  A scripted kill fires only after the response for its
observation is in the pipe (``Connection.send`` completes the write
before returning), so the supervisor always knows exactly how far a
dead worker got; and scripted faults fire only in a worker's first
incarnation (``epoch == 0``), so a restored worker replaying the same
ordinals does not die in a loop.

Workers run in ``spawn`` processes (fresh interpreters, same as
:mod:`repro.parallel.pool`) and seed ambient randomness from
:func:`~repro.parallel.seeds.derive_seed` on their shard identity.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Dict

from ..core.memory import estimated_table_bytes
from ..core.predictor import CosmosPredictor
from ..parallel.seeds import derive_seed
from ..sim.metrics import METRICS
from .config import ServeConfig
from .state import load_latest_shard_state, save_shard_checkpoint


def _mem_report(banks: Dict[str, CosmosPredictor], pconfig) -> dict:
    """This shard's predictor memory, summed over its tenant banks."""
    mhr = sum(p.mhr_entries for p in banks.values())
    pht = sum(p.pht_entries for p in banks.values())
    peak_mhr = sum(p.peak_mhr_entries for p in banks.values())
    peak_pht = sum(p.peak_pht_entries for p in banks.values())
    return {
        "tenants": len(banks),
        "mhr_live": mhr,
        "pht_live": pht,
        "peak_mhr": peak_mhr,
        "peak_pht": peak_pht,
        "evictions_mhr": sum(p.evictions_mhr for p in banks.values()),
        "evictions_pht": sum(p.evictions_pht for p in banks.values()),
        "bytes_est": estimated_table_bytes(pconfig, mhr, pht),
        "peak_bytes_est": estimated_table_bytes(pconfig, peak_mhr, peak_pht),
    }


def worker_main(
    conn,
    shard: int,
    config: ServeConfig,
    checkpoint_dir: str,
    epoch: int,
    chaos: dict,
) -> None:
    """Entry point of one shard worker process.

    ``conn`` is the child end of a duplex pipe.  The worker first warm-
    restores from the newest valid shard checkpoint, then announces
    ``{"op": "ready", "trained": N}`` so the supervisor knows where
    outbox replay must start, then serves observations until the pipe
    closes or a ``stop`` arrives.
    """
    # Workers must not inherit the parent's interrupt handling: the
    # supervisor owns worker lifetime (stop message or SIGKILL).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    METRICS.reset()
    random.seed(derive_seed("serve-shard", str(shard), None, config.seed))
    fingerprint = config.fingerprint()
    pconfig = config.predictor_config()
    bounded = bool(config.tenant_mhr_budget or config.tenant_pht_budget)
    trained, tenant_states, _path = load_latest_shard_state(
        checkpoint_dir, shard, fingerprint
    )
    banks: Dict[str, CosmosPredictor] = {}
    for tenant, state in tenant_states.items():
        predictor = CosmosPredictor(pconfig)
        predictor.restore_state(state)
        if bounded:
            # Budgets are not in the fingerprint, so the checkpoint may
            # predate (or exceed) this budget: evict down to it now
            # rather than serving over budget until traffic happens by.
            predictor.enforce_capacity()
        banks[tenant] = predictor
    last_checkpoint = trained
    kill_at = set(chaos.get("kill_at", ())) if epoch == 0 else set()
    stall_at = dict(chaos.get("stall_at", {})) if epoch == 0 else {}

    conn.send({"op": "ready", "shard": shard, "trained": trained})
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return
        op = request.get("op")
        if op == "stop":
            conn.send({"op": "stopped", "trained": trained})
            return
        if op == "ping":
            conn.send(
                {
                    "op": "pong",
                    "trained": trained,
                    "mem": _mem_report(banks, pconfig),
                }
            )
            continue
        # observe: train first -- state advances even if everything
        # after this line dies, which is what makes the supervisor's
        # "response received == training happened" accounting exact
        # in the other direction: no response, no harm in replaying.
        tenant = request["tenant"]
        predictor = banks.get(tenant)
        if predictor is None:
            predictor = banks[tenant] = CosmosPredictor(pconfig)
        evictions = predictor.evictions_mhr + predictor.evictions_pht
        predicted = predictor.observe_word(request["block"], request["word"])
        evicting = (
            predictor.evictions_mhr + predictor.evictions_pht
        ) != evictions
        trained += 1
        stall_s = stall_at.get(trained)
        if stall_s:
            time.sleep(stall_s)
        if trained % config.checkpoint_every == 0:
            save_shard_checkpoint(
                checkpoint_dir, shard, trained, fingerprint, banks
            )
            last_checkpoint = trained
        response = {
            "op": "observed",
            "seq": request["seq"],
            "predicted": predicted,
            "trained": trained,
            "ckpt": last_checkpoint,
            "replay": bool(request.get("replay")),
        }
        if evicting:
            response["evicting"] = True
        if bounded:
            response["mem"] = _mem_report(banks, pconfig)
        conn.send(response)
        if trained in kill_at:
            # The response above is already written into the pipe; this
            # models a crash *between* serving and the next request.
            os.kill(os.getpid(), signal.SIGKILL)
