"""The client library: deadlines, bounded-backoff retry, idempotency.

A :class:`ServeClient` is the service-side twin of
:class:`~repro.protocol.recovery.RecoveryConfig`: every observation
carries a per-client sequence number, a transport deadline bounds each
attempt, an unanswered or load-shed attempt is re-sent after a bounded
exponential backoff, and retries are idempotent -- the front-end's
dedupe cache answers a retransmission of an already-processed sequence
number from cache instead of training twice.  Exhausting the retry
budget raises :class:`~repro.errors.ServeError` instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from ..errors import ServeError
from ..sim.metrics import METRICS
from .protocol import Request, Response, Status, decode_response


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff (RecoveryConfig, in milliseconds)."""

    #: Transport deadline per attempt: covers the server's own request
    #: deadline plus queueing and loopback time.
    attempt_timeout_ms: float = 2_000.0
    #: First backoff delay after a RETRY_AFTER or a transport timeout.
    base_delay_ms: float = 20.0
    backoff: float = 2.0
    max_delay_ms: float = 500.0
    #: Attempts beyond the first before giving up.
    max_retries: int = 10

    def next_delay(self, current_ms: float) -> float:
        return min(self.max_delay_ms, current_ms * self.backoff)


class ServeClient:
    """One connection to the service, with retry and idempotency."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        policy: RetryPolicy = RetryPolicy(),
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.policy = policy
        self._seq = 0
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def _roundtrip(self, payload: bytes, slow_read_s: float = 0.0):
        """One attempt: write, (optionally dawdle), read one line."""
        if self._writer is None:
            await self.connect()
        self._writer.write(payload)
        await self._writer.drain()
        if slow_read_s:
            # Scripted slow-client behaviour (chaos `slow` action): the
            # response sits in the kernel buffer while we dawdle.
            await asyncio.sleep(slow_read_s)
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("service closed the connection")
        return line

    async def observe(
        self,
        tenant: str,
        block: int,
        sender: int,
        mtype: int,
        slow_read_s: float = 0.0,
    ) -> Response:
        """Stream one observation; returns the service's answer.

        Retries (same sequence number -- idempotent) on ``RETRY_AFTER``,
        transport timeouts, and dropped connections, with bounded
        exponential backoff.  Raises :class:`~repro.errors.ServeError`
        when the retry budget is exhausted.
        """
        seq = self._seq
        self._seq += 1
        request = Request(
            client=self.client_id,
            seq=seq,
            tenant=tenant,
            block=block,
            sender=sender,
            mtype=int(mtype),
        ).encode()
        delay_ms = self.policy.base_delay_ms
        last_error = "no attempt made"
        for _attempt in range(self.policy.max_retries + 1):
            try:
                line = await asyncio.wait_for(
                    self._roundtrip(request, slow_read_s),
                    timeout=self.policy.attempt_timeout_ms / 1_000.0,
                )
            except (asyncio.TimeoutError, TimeoutError):
                # The attempt may have been admitted server-side; the
                # retransmission below is answered from the dedupe
                # cache if so -- never trained twice.
                METRICS.inc("serve.client.timeout")
                last_error = "attempt deadline exceeded"
                await self._reset()
                await asyncio.sleep(delay_ms / 1_000.0)
                delay_ms = self.policy.next_delay(delay_ms)
                continue
            except (ConnectionResetError, BrokenPipeError, OSError):
                METRICS.inc("serve.client.reconnect")
                last_error = "connection lost"
                await self._reset()
                await asyncio.sleep(delay_ms / 1_000.0)
                delay_ms = self.policy.next_delay(delay_ms)
                continue
            response = decode_response(line)
            if response.status == Status.RETRY_AFTER:
                METRICS.inc("serve.client.retry_after")
                last_error = "load shed"
                wait_ms = max(response.retry_after_ms, delay_ms)
                await asyncio.sleep(wait_ms / 1_000.0)
                delay_ms = self.policy.next_delay(delay_ms)
                continue
            return response
        raise ServeError(
            f"observe(client={self.client_id!r}, seq={seq}) exhausted "
            f"{self.policy.max_retries} retries: {last_error}"
        )

    async def stat(self) -> dict:
        """The service's per-shard state (circuit breakers, counters)."""
        line = await asyncio.wait_for(
            self._roundtrip(b'{"op":"stat"}\n'),
            timeout=self.policy.attempt_timeout_ms / 1_000.0,
        )
        return json.loads(line.decode("utf-8"))

    async def _reset(self) -> None:
        try:
            await self.close()
        except OSError:
            self._writer = None
            self._reader = None
