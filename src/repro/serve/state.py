"""Shard predictor-state checkpoints for warm restores.

A shard worker checkpoints its per-tenant predictor banks every
``checkpoint_every`` trained observations, in the exact two-frame
format of :mod:`repro.sim.checkpoint` (pickled header with CRC-32 and a
config fingerprint, atomic rename) under its own magic string.  The
supervisor restores a replacement worker from the newest checkpoint
that verifies cleanly -- a torn newest file falls back one frame via
:func:`~repro.sim.checkpoint.load_newest_valid` -- and replays the
admitted observations past that point from its outbox, so a SIGKILLed
shard loses no admitted learning and at most one checkpoint interval
has to be replayed.

Workers keep the last :data:`KEEP_CHECKPOINTS` files per shard: one to
restore from plus one to fall back to when the newest is torn.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import pickle

from ..core.predictor import CosmosPredictor
from ..errors import CheckpointError
from ..sim.checkpoint import load_newest_valid, read_framed, write_framed

#: Magic string of shard checkpoint headers (distinct from simulation
#: checkpoints so neither loader ever resumes from the other's files).
SHARD_MAGIC = "repro-serve-shard"

#: Checkpoint files retained per shard.
KEEP_CHECKPOINTS = 2


def shard_checkpoint_path(
    directory: Union[str, Path], shard: int, trained: int
) -> Path:
    """Canonical file name for shard ``shard`` after ``trained`` obs."""
    return Path(directory) / f"shard-{shard:02d}-{trained:08d}.ckpt"


def save_shard_checkpoint(
    directory: Union[str, Path],
    shard: int,
    trained: int,
    fingerprint: str,
    banks: Dict[str, CosmosPredictor],
) -> Path:
    """Atomically write one shard checkpoint and prune old ones."""
    body = {
        "trained": trained,
        "tenants": {
            tenant: predictor.snapshot_state()
            for tenant, predictor in banks.items()
        },
    }
    payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    path = write_framed(
        shard_checkpoint_path(directory, shard, trained),
        {"fingerprint": fingerprint, "shard": shard, "trained": trained},
        payload,
        magic=SHARD_MAGIC,
    )
    for stale in shard_checkpoints(directory, shard)[:-KEEP_CHECKPOINTS]:
        stale.unlink(missing_ok=True)
    return path


def shard_checkpoints(directory: Union[str, Path], shard: int) -> list:
    """This shard's checkpoint files, oldest first."""
    return sorted(Path(directory).glob(f"shard-{shard:02d}-*.ckpt"))


def load_shard_checkpoint(
    path: Union[str, Path], fingerprint: str
) -> Tuple[int, Dict[str, dict]]:
    """Load one shard checkpoint: ``(trained, tenant -> predictor state)``.

    Verifies framing, checksum, and the serve-config fingerprint; every
    failure is a :class:`~repro.errors.CheckpointError` with a named
    cause, so :func:`load_newest_valid` can fall back past it.
    """
    header, payload = read_framed(path, magic=SHARD_MAGIC)
    if header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"serve config fingerprint mismatch in {path}: the checkpoint "
            f"was written by a service with a different shard layout",
            cause="fingerprint-mismatch",
        )
    try:
        body = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"cannot unpickle shard checkpoint body in {path}: {exc}",
            cause="unreadable-body",
        ) from exc
    return body["trained"], body["tenants"]


def load_latest_shard_state(
    directory: Union[str, Path], shard: int, fingerprint: str
) -> Tuple[int, Dict[str, dict], Optional[Path]]:
    """The newest valid checkpoint for ``shard``, or a cold start.

    Returns ``(trained, tenant states, path)``; ``(0, {}, None)`` when
    the shard has no loadable checkpoint at all (first boot, or every
    frame corrupt -- the supervisor then replays whatever its outbox
    still holds).
    """
    candidates = list(reversed(shard_checkpoints(directory, shard)))
    if not candidates:
        return 0, {}, None
    try:
        loaded, path, _skipped = load_newest_valid(
            candidates,
            lambda p: load_shard_checkpoint(p, fingerprint),
        )
    except CheckpointError:
        return 0, {}, None
    trained, tenants = loaded
    return trained, tenants, path
