"""``repro-serve``: serve, bench, and chaos-test the prediction service.

Three subcommands:

* ``serve`` -- run the service in the foreground until interrupted.
* ``bench`` -- start an in-process service, replay a cached simulator
  trace through it, and report latency/throughput (optionally as JSON).
* ``chaos`` -- the same replay under a scripted chaos battery (worker
  SIGKILL, stalls past the deadline, queue floods, slow clients), then
  verify the acceptance invariants: zero incorrect non-degraded
  responses and every lost shard re-admitted through its circuit
  breaker.  Exits non-zero when either fails.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from ..core.eviction import EVICTION_POLICIES
from ..sim.metrics import METRICS, dump_metrics_json
from .chaos import ChaosScript
from .client import ServeClient
from .config import ServeConfig
from .frontend import PredictionService
from .loadgen import replay_trace, verify_predictions

WORKLOADS = ("appbt", "barnes", "dsmc", "moldyn", "unstructured", "zipf")


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--deadline-ms", type=float, default=250.0)
    parser.add_argument("--hang-timeout-ms", type=float, default=2_000.0)
    parser.add_argument("--checkpoint-every", type=int, default=64)
    parser.add_argument("--checkpoint-dir", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tenant-mhr-budget",
        type=int,
        default=0,
        help="MHR entries per tenant bank per shard (0 = unbounded)",
    )
    parser.add_argument(
        "--tenant-pht-budget",
        type=int,
        default=0,
        help="PHT entries per tenant bank per shard (0 = unbounded)",
    )
    parser.add_argument(
        "--eviction",
        choices=EVICTION_POLICIES,
        default="lru",
        help="replacement policy for budgeted tenant banks",
    )


def _config_of(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        shards=args.shards,
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        hang_timeout_ms=args.hang_timeout_ms,
        checkpoint_every=args.checkpoint_every,
        seed=args.seed,
        tenant_mhr_budget=args.tenant_mhr_budget,
        tenant_pht_budget=args.tenant_pht_budget,
        eviction=args.eviction,
    )


async def _wait_all_closed(
    host: str, port: int, timeout_s: float = 60.0
) -> bool:
    """Poll ``stat`` until every shard's breaker is closed."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout_s
    async with ServeClient(host, port, "cli-stat") as client:
        while True:
            stat = await client.stat()
            if all(
                shard["state"] == "closed" for shard in stat["shards"]
            ):
                return True
            if loop.time() > deadline:
                return False
            await asyncio.sleep(0.05)


async def _run_replay(args, chaos: Optional[ChaosScript], events) -> dict:
    config = _config_of(args)
    service = PredictionService(
        config, chaos=chaos, checkpoint_dir=args.checkpoint_dir
    )
    await service.start()
    try:
        report = await replay_trace(
            service.config.host,
            service.port,
            events,
            chaos_actions=chaos.client_actions() if chaos else (),
            rate=getattr(args, "rate", None),
        )
        recovered = await _wait_all_closed(service.config.host, service.port)
        stats = service.supervisor.stats()
    finally:
        await service.stop()
    checked, wrong = verify_predictions(report.results, config)
    latency = METRICS.histogram("serve.latency.ok_us")
    return {
        "observations": report.sent,
        "ok": report.ok,
        "degraded": report.degraded,
        "evicting": report.evicting,
        "shed": METRICS.counter("serve.response.retry_after"),
        "deadline_missed": METRICS.counter("serve.deadline.missed"),
        "restores": METRICS.counter("serve.restore.count"),
        "checked": checked,
        "wrong": wrong,
        "recovered": recovered,
        "throughput_obs_per_s": round(report.throughput, 1),
        "latency_ok_p50_us": latency.quantile(0.50) if latency else 0.0,
        "latency_ok_p99_us": latency.quantile(0.99) if latency else 0.0,
        "shards": stats,
    }


def _events_for(args) -> list:
    from ..experiments.common import get_trace

    events = get_trace(args.workload, seed=args.seed, quick=True)
    if args.observations:
        events = events[: args.observations]
    return events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online Cosmos prediction service (see docs/serving.md)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the service until ^C")
    _add_config_args(serve)

    bench = commands.add_parser("bench", help="replay a trace, fault-free")
    _add_config_args(bench)
    bench.add_argument("--workload", choices=WORKLOADS, default="moldyn")
    bench.add_argument("--observations", type=int, default=0)
    bench.add_argument("--rate", type=float, default=None)
    bench.add_argument("--metrics-json", default=None)

    chaos = commands.add_parser("chaos", help="replay under a chaos script")
    _add_config_args(chaos)
    chaos.add_argument("--workload", choices=WORKLOADS, default="moldyn")
    chaos.add_argument("--observations", type=int, default=600)
    chaos.add_argument(
        "--script",
        default=None,
        help="explicit chaos spec; default: the seeded standard battery",
    )
    chaos.add_argument("--metrics-json", default=None)

    stat = commands.add_parser(
        "stat",
        help="query a running service: breaker states, training "
        "progress, and per-shard predictor memory",
    )
    stat.add_argument("--host", default="127.0.0.1")
    stat.add_argument("--port", type=int, required=True)

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "stat":
        return _cmd_stat(args)
    if args.command == "bench":
        return _cmd_replay(args, chaos_script=None)
    return _cmd_replay(args, chaos_script=_chaos_script(args))


def _chaos_script(args) -> ChaosScript:
    if args.script is not None:
        return ChaosScript.parse(args.script)
    return ChaosScript.battery(
        seed=args.seed,
        shards=args.shards,
        observations=args.observations or 600,
    )


def _cmd_serve(args) -> int:
    async def _run() -> None:
        service = PredictionService(
            _config_of(args), checkpoint_dir=args.checkpoint_dir
        )
        await service.start()
        print(
            f"repro-serve: {args.shards} shard(s) on "
            f"{service.config.host}:{service.port}",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_stat(args) -> int:
    async def _run() -> dict:
        async with ServeClient(args.host, args.port, "cli-stat") as client:
            return await client.stat()

    print(json.dumps(asyncio.run(_run()), indent=2, sort_keys=True))
    return 0


def _cmd_replay(args, chaos_script: Optional[ChaosScript]) -> int:
    METRICS.reset()
    events = _events_for(args)
    if chaos_script is not None:
        print(f"chaos script: {chaos_script.spec()}", file=sys.stderr)
    summary = asyncio.run(_run_replay(args, chaos_script, events))
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.metrics_json:
        dump_metrics_json(METRICS.snapshot(), args.metrics_json)
    if chaos_script is None:
        return 0
    failures = []
    if summary["wrong"]:
        failures.append(
            f"{summary['wrong']} incorrect non-degraded response(s)"
        )
    if not summary["recovered"]:
        failures.append("a lost shard was never re-admitted")
    if failures:
        print("chaos run FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
