"""Crash-safe file writing shared by every artifact producer.

Every file this package leaves behind for a human or a follow-up run --
traces, metrics JSON, timeline exports, HTML reports, checkpoints, shard
journals -- is written through :func:`atomic_write`: the content goes to
a temp file in the destination directory and is moved into place with
``os.replace``, which is atomic on POSIX and Windows for same-filesystem
renames.  A reader (or a resumed run) therefore sees either the complete
old file, the complete new file, or no file -- never a truncated one,
no matter when the writing process is killed.

The pattern matches what :mod:`repro.trace.cache` has always done for
cache entries; this module centralizes it so the other writers stop
open-coding ``open(path, "w")``.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union


@contextmanager
def atomic_write(
    path: Union[str, Path],
    mode: str = "w",
    encoding: "str | None" = "utf-8",
    fsync: bool = False,
) -> Iterator[IO]:
    """Yield a handle whose contents replace ``path`` atomically on success.

    The temp file lives in ``path``'s directory (same filesystem, so the
    final ``os.replace`` is a rename, not a copy).  Parent directories
    are created as needed.  If the body raises, the temp file is removed
    and the destination is left untouched.  ``fsync=True`` additionally
    flushes the file (and, on POSIX, its directory) to stable storage
    before the rename -- use it for journals that must survive power
    loss, not just process death.
    """
    target = Path(path)
    if str(target.parent) not in ("", "."):
        target.parent.mkdir(parents=True, exist_ok=True)
    if "b" in mode:
        encoding = None
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".",
        prefix=f".{target.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        if fsync:
            _fsync_dir(target.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, Path], text: str, fsync: bool = False
) -> Path:
    """Atomically replace ``path`` with ``text``; return the path."""
    with atomic_write(path, "w", fsync=fsync) as handle:
        handle.write(text)
    return Path(path)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (best effort; no-op where unsupported)."""
    try:
        fd = os.open(str(directory) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def fsync_append(handle: IO, text: str) -> None:
    """Append ``text`` to an open handle and push it to stable storage.

    Journal writers use this for per-record durability: flush the Python
    buffer, then ``os.fsync`` so a ``kill -9`` (of this process or the
    machine) cannot swallow an acknowledged record.
    """
    handle.write(text)
    handle.flush()
    os.fsync(handle.fileno())
