"""Memory-overhead analysis across depths (paper Table 7), plus the
Section 3.7 preallocation study (LimitLESS-style static PHT entries with
a dynamic overflow pool) and the Section 7 macroblock ablation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.bank import PredictorBank
from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..core.memory import MemoryOverhead
from ..trace.events import TraceEvent


@dataclass(frozen=True)
class OverheadRow:
    """One (application, depth) cell of Table 7."""

    depth: int
    ratio: float
    overhead_percent: float
    mhr_entries: int
    pht_entries: int

    @classmethod
    def from_overhead(cls, overhead: MemoryOverhead) -> "OverheadRow":
        return cls(
            depth=overhead.depth,
            ratio=overhead.ratio,
            overhead_percent=overhead.overhead_percent,
            mhr_entries=overhead.mhr_entries,
            pht_entries=overhead.pht_entries,
        )


def overhead_sweep(
    events: Sequence[TraceEvent],
    depths: Iterable[int] = (1, 2, 3, 4),
    tuple_bytes: int = 2,
    block_bytes: int = 128,
) -> List[OverheadRow]:
    """Measure Table 7 quantities for one trace at several depths."""
    rows: List[OverheadRow] = []
    for depth in depths:
        config = CosmosConfig(
            depth=depth, tuple_bytes=tuple_bytes, block_bytes=block_bytes
        )
        result = evaluate_trace(events, config, track_arcs=False)
        assert result.overhead is not None  # Cosmos banks always report it
        rows.append(OverheadRow.from_overhead(result.overhead))
    return rows


def pht_size_histogram(
    events: Sequence[TraceEvent],
    config: Optional[CosmosConfig] = None,
) -> Dict[int, int]:
    """How many blocks ended the run with N PHT entries, machine-wide.

    The paper's Section 3.7 observes that the number of pattern histories
    per block is low (under four on average at depth 1), motivating a
    scheme that statically preallocates a few entries per block and
    spills the rest to a shared pool (like LimitLESS directory entries).
    """
    bank = PredictorBank(config if config is not None else CosmosConfig())
    for event in events:
        bank.observe(event)
    histogram: Counter = Counter()
    for _key, predictor in bank:
        for size in predictor.pht_sizes():
            histogram[size] += 1
        histogram[0] += predictor.mhr_entries - len(predictor.pht_sizes())
    return dict(histogram)


@dataclass(frozen=True)
class PreallocationReport:
    """Outcome of a static-N-entries-per-block PHT organization."""

    static_entries: int
    blocks: int
    blocks_overflowing: int
    entries_total: int
    entries_in_overflow_pool: int

    @property
    def overflow_block_fraction(self) -> float:
        return self.blocks_overflowing / self.blocks if self.blocks else 0.0

    @property
    def overflow_entry_fraction(self) -> float:
        if self.entries_total == 0:
            return 0.0
        return self.entries_in_overflow_pool / self.entries_total


def preallocation_report(
    histogram: Dict[int, int], static_entries: int = 4
) -> PreallocationReport:
    """Evaluate a static-allocation size against a PHT size histogram."""
    blocks = sum(histogram.values())
    overflowing = sum(
        count for size, count in histogram.items() if size > static_entries
    )
    entries_total = sum(size * count for size, count in histogram.items())
    overflow_entries = sum(
        (size - static_entries) * count
        for size, count in histogram.items()
        if size > static_entries
    )
    return PreallocationReport(
        static_entries=static_entries,
        blocks=blocks,
        blocks_overflowing=overflowing,
        entries_total=entries_total,
        entries_in_overflow_pool=overflow_entries,
    )


@dataclass(frozen=True)
class MacroblockPoint:
    """One point of the accuracy-vs-memory macroblock trade-off."""

    macroblock_bytes: Optional[int]
    overall_accuracy: float
    mhr_entries: int
    pht_entries: int


def macroblock_sweep(
    events: Sequence[TraceEvent],
    macroblock_sizes: Iterable[Optional[int]] = (None, 128, 256, 512),
    depth: int = 1,
) -> List[MacroblockPoint]:
    """Trade accuracy for table size by widening the MHT index.

    ``None`` means per-block tables (the paper's baseline); wider
    macroblocks shrink both tables but let unrelated blocks' histories
    interleave in one MHR.
    """
    points: List[MacroblockPoint] = []
    for size in macroblock_sizes:
        config = CosmosConfig(depth=depth, macroblock_bytes=size)
        result = evaluate_trace(events, config, track_arcs=False)
        assert result.overhead is not None
        points.append(
            MacroblockPoint(
                macroblock_bytes=size,
                overall_accuracy=result.overall_accuracy,
                mhr_entries=result.overhead.mhr_entries,
                pht_entries=result.overhead.pht_entries,
            )
        )
    return points
