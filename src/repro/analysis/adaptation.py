"""Time-to-adapt analysis (paper Table 8 and the Section 6.2 discussion).

Cosmos predictors learn the message stream as it arrives, so cumulative
accuracy climbs toward a steady state over iterations.  Table 8 tracks
three dsmc transitions after 4, 80, and 320 iterations, reporting each
transition's cumulative hit rate and its share of all references so far.
The same machinery yields per-application "iterations to steady state"
estimates (the paper quotes ~20 for unstructured/barnes, ~30 for
appbt/moldyn, ~300 for dsmc).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import CosmosConfig
from ..core.evaluation import IterationCheckpoint, Tally, evaluate_trace
from ..protocol.messages import MessageType, Role
from ..trace.events import TraceEvent

#: A transition of interest: (role, previous type, current type).
Transition = Tuple[Role, MessageType, MessageType]


@dataclass(frozen=True)
class TransitionSnapshot:
    """One Table 8 cell: a transition's cumulative stats at a checkpoint."""

    iteration: int
    hits_percent: float
    refs_percent: float
    refs: int


def transition_progress(
    events: Sequence[TraceEvent],
    transitions: Iterable[Transition],
    checkpoints: Iterable[int],
    config: Optional[CosmosConfig] = None,
) -> Dict[Transition, List[TransitionSnapshot]]:
    """Cumulative per-transition accuracy at each checkpoint iteration."""
    config = config if config is not None else CosmosConfig(depth=1)
    result = evaluate_trace(
        events, config, checkpoint_iterations=checkpoints, track_arcs=True
    )
    progress: Dict[Transition, List[TransitionSnapshot]] = {
        transition: [] for transition in transitions
    }
    for checkpoint in result.checkpoints:
        total_refs = sum(tally.refs for tally in checkpoint.arcs.values())
        for transition in progress:
            tally = checkpoint.arcs.get(transition, Tally())
            progress[transition].append(
                TransitionSnapshot(
                    iteration=checkpoint.iteration,
                    hits_percent=100.0 * tally.accuracy,
                    refs_percent=(
                        100.0 * tally.refs / total_refs if total_refs else 0.0
                    ),
                    refs=tally.refs,
                )
            )
    return progress


@dataclass(frozen=True)
class AdaptationCurve:
    """Cumulative overall accuracy per checkpoint iteration."""

    iterations: Tuple[int, ...]
    accuracy_percent: Tuple[float, ...]

    def steady_state_iteration(self, tolerance: float = 2.0) -> Optional[int]:
        """First checkpoint within ``tolerance`` points of the final value.

        ``None`` when the curve never settles (or has no checkpoints).
        """
        if not self.iterations:
            return None
        final = self.accuracy_percent[-1]
        for iteration, accuracy in zip(self.iterations, self.accuracy_percent):
            if abs(accuracy - final) <= tolerance:
                return iteration
        return None


def accuracy_curve(
    events: Sequence[TraceEvent],
    checkpoints: Iterable[int],
    config: Optional[CosmosConfig] = None,
) -> AdaptationCurve:
    """Cumulative overall accuracy after each checkpoint iteration."""
    config = config if config is not None else CosmosConfig(depth=1)
    result = evaluate_trace(
        events, config, checkpoint_iterations=checkpoints, track_arcs=False
    )
    iterations = tuple(cp.iteration for cp in result.checkpoints)
    accuracy = tuple(
        100.0 * cp.overall.accuracy for cp in result.checkpoints
    )
    return AdaptationCurve(iterations=iterations, accuracy_percent=accuracy)
