"""Offline optimality reference for table predictors.

How much of Cosmos' miss rate is *learnable* and how much is inherent
noise?  For a fixed history depth ``d``, consider the offline oracle
that knows the whole trace and stores, for every (module, block,
depth-d pattern) context, the single most frequent successor.  Its
accuracy,

    sum over contexts of max successor count  /  total references,

is the ceiling for every *static* depth-``d`` table predictor and a
strong reference point for adaptive ones.  (It is not an absolute bound
for adaptive predictors: on a nonstationary stream -- a context followed
by A all spring and B all summer -- an online learner can beat the best
single static choice.  In practice Cosmos sits below it on all five
applications, so the decomposition reads cleanly.)

Comparing Cosmos to this reference separates its two loss sources:
training loss (cold starts, re-learning after pattern changes) versus
residual per-context noise.

References made while the MHR is still filling have no context and count
as misses for both (matching Cosmos' no-prediction behaviour).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.config import CosmosConfig
from ..core.evaluation import evaluate_trace
from ..core.mhr import MessageHistoryRegister
from ..protocol.messages import Role
from ..trace.events import TraceEvent


@dataclass(frozen=True)
class OptimalityBound:
    """The offline ceiling and Cosmos' standing relative to it."""

    depth: int
    bound_accuracy: float
    cosmos_accuracy: float
    contexts: int
    references: int

    @property
    def gap(self) -> float:
        """Accuracy points between Cosmos and the ceiling (training loss)."""
        return self.bound_accuracy - self.cosmos_accuracy

    @property
    def efficiency(self) -> float:
        """Fraction of the achievable accuracy Cosmos realizes."""
        if self.bound_accuracy == 0.0:
            return 0.0
        return self.cosmos_accuracy / self.bound_accuracy


def optimal_table_accuracy(
    events: Sequence[TraceEvent], depth: int
) -> Tuple[float, int, int]:
    """(ceiling accuracy, context count, reference count) at ``depth``.

    Contexts are (node, role, block, pattern) -- the same indexing a
    per-module Cosmos uses.  References observed before a block's MHR
    fills have no context and count as unavoidable misses.
    """
    counters: Dict[tuple, Counter] = defaultdict(Counter)
    mhrs: Dict[tuple, MessageHistoryRegister] = {}
    references = 0
    for event in events:
        references += 1
        key = (event.node, event.role, event.block)
        mhr = mhrs.get(key)
        if mhr is None:
            mhr = MessageHistoryRegister(depth)
            mhrs[key] = mhr
        pattern = mhr.pattern()
        if pattern is not None:
            counters[key + (pattern,)][event.tuple] += 1
        mhr.shift(event.tuple)
    optimal_hits = sum(
        counter.most_common(1)[0][1] for counter in counters.values()
    )
    accuracy = optimal_hits / references if references else 0.0
    return accuracy, len(counters), references


def measure_bounds(
    events: Sequence[TraceEvent],
    depths: Iterable[int] = (1, 2, 3),
) -> List[OptimalityBound]:
    """Ceiling vs measured Cosmos accuracy at each depth."""
    bounds: List[OptimalityBound] = []
    for depth in depths:
        ceiling, contexts, references = optimal_table_accuracy(events, depth)
        result = evaluate_trace(
            events, CosmosConfig(depth=depth), track_arcs=False
        )
        bounds.append(
            OptimalityBound(
                depth=depth,
                bound_accuracy=ceiling,
                cosmos_accuracy=result.overall_accuracy,
                contexts=contexts,
                references=references,
            )
        )
    return bounds
