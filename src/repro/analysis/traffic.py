"""Trace traffic characterization.

Summaries in the style the sharing-pattern literature uses (Gupta &
Weber's invalidation patterns; Bennett et al.'s classification):

* message-type histograms per role,
* invalidation fan-out: how many sharers each write invalidates (the
  consumer fan-out of producer-consumer data shows up directly here --
  moldyn's mean should sit near its 4.9 consumers),
* per-block reference distribution (how skewed the traffic is),
* messages per iteration.

These double as workload-model validation: the paper quotes several of
these quantities for the real applications.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..protocol.messages import MessageType, Role
from ..trace.events import TraceEvent
from .report import render_table

#: Invalidation request types (directory -> cache fan-out).
_INVAL_TYPES = (MessageType.INVAL_RO_REQUEST, MessageType.INVAL_RW_REQUEST)


@dataclass(frozen=True)
class FanoutStats:
    """Distribution of invalidations per invalidating transaction."""

    histogram: Dict[int, int]

    @property
    def events(self) -> int:
        return sum(self.histogram.values())

    @property
    def mean(self) -> float:
        if not self.histogram:
            return 0.0
        total = sum(size * count for size, count in self.histogram.items())
        return total / self.events

    @property
    def max(self) -> int:
        return max(self.histogram) if self.histogram else 0

    def fraction_single(self) -> float:
        """Share of invalidating writes touching exactly one copy.

        The sharing-pattern studies the paper cites found most writes
        invalidate a single cache -- the signature of migratory and
        single-consumer data.
        """
        if not self.events:
            return 0.0
        return self.histogram.get(1, 0) / self.events


@dataclass(frozen=True)
class TrafficSummary:
    """Full traffic characterization of one trace."""

    messages: int
    iterations: int
    type_counts: Dict[MessageType, int]
    role_counts: Dict[Role, int]
    fanout: FanoutStats
    block_references: Dict[int, int]  # refs-per-block histogram buckets

    @property
    def messages_per_iteration(self) -> float:
        return self.messages / self.iterations if self.iterations else 0.0

    def format(self) -> str:
        lines = [
            f"{self.messages} messages over {self.iterations} iterations "
            f"({self.messages_per_iteration:.0f}/iteration)"
        ]
        lines.append(
            "by role: "
            + ", ".join(
                f"{role}={count}" for role, count in self.role_counts.items()
            )
        )
        headers = ["message type", "count", "share"]
        body = []
        for mtype, count in sorted(
            self.type_counts.items(), key=lambda item: -item[1]
        ):
            body.append([str(mtype), count, f"{count / self.messages:.1%}"])
        lines.append(render_table(headers, body))
        lines.append(
            f"invalidation fan-out: mean {self.fanout.mean:.2f}, "
            f"max {self.fanout.max}, single-copy "
            f"{self.fanout.fraction_single():.0%} "
            f"({self.fanout.events} invalidating transactions)"
        )
        ref_headers = ["refs per block", "blocks"]
        ref_body = [
            [bucket, count]
            for bucket, count in sorted(self.block_references.items())
        ]
        lines.append(render_table(ref_headers, ref_body))
        return "\n".join(lines)


def _reference_bucket(references: int) -> int:
    """Bucket block reference counts into powers of two."""
    bucket = 1
    while bucket < references:
        bucket *= 2
    return bucket


def measure_fanout(events: Sequence[TraceEvent]) -> FanoutStats:
    """Histogram of invalidations per invalidating transaction.

    Invalidation requests for one block form bursts (one per directory
    transaction); consecutive invalidation requests for the same block
    with no other intervening message for that block belong to one burst.
    """
    histogram: Counter = Counter()
    open_bursts: Dict[int, int] = {}
    for event in events:
        if event.role is Role.CACHE and event.mtype in _INVAL_TYPES:
            open_bursts[event.block] = open_bursts.get(event.block, 0) + 1
        elif event.block in open_bursts and event.role is Role.CACHE:
            histogram[open_bursts.pop(event.block)] += 1
    for size in open_bursts.values():
        histogram[size] += 1
    return FanoutStats(histogram=dict(histogram))


def summarize_traffic(events: Sequence[TraceEvent]) -> TrafficSummary:
    """Compute the full traffic characterization of a trace."""
    type_counts: Counter = Counter()
    role_counts: Counter = Counter()
    per_block: Counter = Counter()
    iterations = 0
    for event in events:
        type_counts[event.mtype] += 1
        role_counts[event.role] += 1
        per_block[event.block] += 1
        if event.iteration > iterations:
            iterations = event.iteration
    reference_buckets: Counter = Counter()
    for references in per_block.values():
        reference_buckets[_reference_bucket(references)] += 1
    return TrafficSummary(
        messages=len(events),
        iterations=iterations,
        type_counts=dict(type_counts),
        role_counts=dict(role_counts),
        fanout=measure_fanout(events),
        block_references=dict(reference_buckets),
    )
