"""Dependency-free ASCII charts for terminal output.

Renders the paper's line figures (Figure 5's speedup curves, the
Section 6.2 adaptation curves) directly in the terminal, so the
experiment drivers can show *shape* as well as numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to successive series.
_GLYPHS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more series over shared x values.

    Each series is drawn with its own glyph; axes are annotated with the
    data ranges.  Series must all have ``len(x_values)`` points.
    """
    if not x_values:
        raise ValueError("nothing to plot: empty x values")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for "
                f"{len(x_values)} x values"
            )
    if not series:
        raise ValueError("nothing to plot: no series")

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(x_values), max(x_values)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in zip(x_values, ys):
            col = round((x - x_min) / x_span * (width - 1))
            row = round((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    top_label = f"{y_max:g}"
    bottom_label = f"{y_min:g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line mini chart (useful in tables)."""
    if not values:
        return ""
    blocks = " _.-~^"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in values
    )
