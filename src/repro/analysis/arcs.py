"""Per-arc (message-transition) statistics: the labels of Figures 6 and 7.

The paper's signature figures draw, for each application and each role, a
graph whose nodes are incoming message types and whose arcs are observed
consecutive-message transitions per block.  Each arc is labelled ``X/Y``:
X = percentage of references to that arc predicted correctly, Y = the
arc's share of all references at that role.  Both are measured with a
depth-1, filterless Cosmos predictor, which is what
:func:`repro.core.evaluation.evaluate_trace` tallies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import CosmosConfig
from ..core.evaluation import ArcStats, EvaluationResult, evaluate_trace
from ..protocol.messages import MessageType, Role
from ..trace.events import TraceEvent


@dataclass(frozen=True)
class Arc:
    """One labelled arc of a signature figure."""

    role: Role
    src: MessageType
    dst: MessageType
    hit_percent: float
    ref_percent: float
    refs: int

    @property
    def label(self) -> str:
        """The paper's ``X/Y`` arc label."""
        return f"{self.hit_percent:.0f}/{self.ref_percent:.0f}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.role}] {self.src} -> {self.dst}  {self.label} "
            f"({self.refs} refs)"
        )


def arcs_from_result(
    result: EvaluationResult,
    role: Optional[Role] = None,
    min_ref_percent: float = 0.0,
) -> List[Arc]:
    """Extract labelled arcs from an evaluation, largest share first."""
    stats: ArcStats = result.arcs
    arcs: List[Arc] = []
    totals = {
        Role.CACHE: stats.total_refs(Role.CACHE),
        Role.DIRECTORY: stats.total_refs(Role.DIRECTORY),
    }
    for (arc_role, src, dst), tally in stats.tallies.items():
        if role is not None and arc_role != role:
            continue
        total = totals[arc_role]
        ref_percent = 100.0 * tally.refs / total if total else 0.0
        if ref_percent < min_ref_percent:
            continue
        arcs.append(
            Arc(
                role=arc_role,
                src=src,
                dst=dst,
                hit_percent=100.0 * tally.accuracy,
                ref_percent=ref_percent,
                refs=tally.refs,
            )
        )
    arcs.sort(key=lambda arc: (-arc.ref_percent, str(arc.src), str(arc.dst)))
    return arcs


def measure_arcs(
    events: Sequence[TraceEvent],
    depth: int = 1,
    role: Optional[Role] = None,
    min_ref_percent: float = 1.0,
) -> List[Arc]:
    """Run a depth-``depth`` Cosmos over ``events`` and return its arcs."""
    result = evaluate_trace(events, CosmosConfig(depth=depth))
    return arcs_from_result(result, role=role, min_ref_percent=min_ref_percent)
