"""Accuracy summaries: the C / D / O columns of the paper's Table 5."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.config import CosmosConfig
from ..core.evaluation import EvaluationResult, evaluate_trace
from ..protocol.messages import Role
from ..trace.events import TraceEvent


@dataclass(frozen=True)
class AccuracyRow:
    """One (application, depth) cell of Table 5, in percent."""

    depth: int
    cache: float
    directory: float
    overall: float

    @classmethod
    def from_result(cls, depth: int, result: EvaluationResult) -> "AccuracyRow":
        return cls(
            depth=depth,
            cache=100.0 * result.cache_accuracy,
            directory=100.0 * result.directory_accuracy,
            overall=100.0 * result.overall_accuracy,
        )


def depth_sweep(
    events: Sequence[TraceEvent],
    depths: Iterable[int] = (1, 2, 3, 4),
    filter_max_count: int = 0,
) -> List[AccuracyRow]:
    """Evaluate one trace at several MHR depths (a Table 5 column group)."""
    rows = []
    for depth in depths:
        config = CosmosConfig(depth=depth, filter_max_count=filter_max_count)
        result = evaluate_trace(events, config, track_arcs=False)
        rows.append(AccuracyRow.from_result(depth, result))
    return rows


def filter_sweep(
    events: Sequence[TraceEvent],
    depths: Iterable[int] = (1, 2),
    filter_counts: Iterable[int] = (0, 1, 2),
) -> Dict[int, Dict[int, float]]:
    """Overall accuracy (%) per (depth, filter max count): Table 6 cells."""
    table: Dict[int, Dict[int, float]] = {}
    for depth in depths:
        table[depth] = {}
        for max_count in filter_counts:
            config = CosmosConfig(depth=depth, filter_max_count=max_count)
            result = evaluate_trace(events, config, track_arcs=False)
            table[depth][max_count] = 100.0 * result.overall_accuracy
    return table
