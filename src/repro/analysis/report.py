"""Plain-text table rendering shared by the experiment drivers.

Small and dependency-free on purpose: every experiment emits the same
kind of aligned ASCII table the paper prints, suitable for terminals and
EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def render_table(
    headers: Sequence[Cell],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned text table with a rule under the header."""
    text_rows: List[List[str]] = [[format_cell(c) for c in headers]]
    for row in rows:
        text_rows.append([format_cell(c) for c in row])
    n_cols = max(len(row) for row in text_rows)
    widths = [0] * n_cols
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: List[str]) -> str:
        return "  ".join(
            cell.rjust(widths[index]) if index else cell.ljust(widths[index])
            for index, cell in enumerate(row)
        ).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(text_rows[0]))
    lines.append("-" * (sum(widths) + 2 * (n_cols - 1)))
    lines.extend(fmt(row) for row in text_rows[1:])
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Render a :meth:`repro.sim.metrics.Metrics.snapshot` as text tables.

    Used by benchmarks and ``--metrics-json`` consumers that want the
    counters / timers human-readable next to the raw JSON.
    """
    parts: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        parts.append(
            render_table(
                ["counter", "value"],
                [[name, value] for name, value in counters.items()],
                title="Counters",
            )
        )
    timers = snapshot.get("timers", {})
    if timers:
        parts.append(
            render_table(
                ["timer", "seconds", "calls"],
                [
                    [name, f"{entry['seconds']:.3f}", entry["count"]]
                    for name, entry in timers.items()
                ],
                title="Timers",
            )
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        parts.append(
            render_table(
                ["histogram", "count", "min", "mean", "max", "buckets"],
                [
                    _histogram_row(name, data)
                    for name, data in histograms.items()
                ],
                title="Histograms (log2 buckets: upper-edge:count)",
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics recorded)"


def _histogram_row(name: str, data: dict) -> List[Cell]:
    """One ``format_metrics`` row for a histogram snapshot dict."""
    count = data.get("count", 0)
    mean = data.get("sum", 0.0) / count if count else 0.0
    buckets = data.get("buckets", {})
    rendered = " ".join(
        f"{2 ** int(bucket)}:{buckets[bucket]}"
        for bucket in sorted(buckets, key=int)
    )
    return [
        name,
        count,
        _compact(data.get("min")),
        _compact(mean),
        _compact(data.get("max")),
        rendered or "-",
    ]


def _compact(value: object) -> str:
    """Render a histogram statistic without trailing float noise."""
    if value is None:
        return "-"
    number = float(value)  # type: ignore[arg-type]
    if number == int(number):
        return str(int(number))
    return f"{number:.1f}"


def render_matrix(
    row_labels: Sequence[Cell],
    col_labels: Sequence[Cell],
    values: Sequence[Sequence[Cell]],
    corner: str = "",
    title: str = "",
) -> str:
    """Render a labelled matrix (row label column + value grid)."""
    headers: List[Cell] = [corner] + list(col_labels)
    rows = [
        [label] + list(row_values)
        for label, row_values in zip(row_labels, values)
    ]
    return render_table(headers, rows, title=title)
