"""Graphviz (DOT) export of signature graphs.

The paper's Figures 6 and 7 are state graphs: nodes are incoming message
types, arcs are observed transitions labelled ``X/Y`` (hit% / reference%),
with the dominant signature drawn dashed.  This module serializes our
measured arcs in that style; render with ``dot -Tpng``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from ..protocol.messages import MessageType, Role
from .arcs import Arc
from .signatures import Signature


def _node_id(mtype: MessageType) -> str:
    return str(mtype)


def signature_graph_dot(
    arcs: Sequence[Arc],
    role: Role,
    signature: Optional[Signature] = None,
    title: str = "",
) -> str:
    """Serialize one role's transition graph as DOT.

    Arcs on the dominant ``signature`` cycle are drawn dashed and bold,
    mirroring the dotted dominant signatures of the paper's figures.
    """
    cycle_edges: Set[Tuple[MessageType, MessageType]] = set()
    if signature is not None and signature.cycle:
        cycle = signature.cycle
        for index, src in enumerate(cycle):
            cycle_edges.add((src, cycle[(index + 1) % len(cycle)]))

    lines = ["digraph signature {"]
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=box, fontname="Helvetica"];')
    if title:
        lines.append(f'  label="{title}";')
        lines.append("  labelloc=t;")
    nodes: Set[MessageType] = set()
    for arc in arcs:
        if arc.role != role:
            continue
        nodes.add(arc.src)
        nodes.add(arc.dst)
    for node in sorted(nodes):
        lines.append(f'  "{_node_id(node)}";')
    for arc in arcs:
        if arc.role != role:
            continue
        style = (
            ' style=dashed penwidth=2' if (arc.src, arc.dst) in cycle_edges
            else ""
        )
        lines.append(
            f'  "{_node_id(arc.src)}" -> "{_node_id(arc.dst)}" '
            f'[label="{arc.label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
