"""Analyses over coherence-message traces and evaluation results."""

from .accuracy import AccuracyRow, depth_sweep, filter_sweep
from .adaptation import (
    AdaptationCurve,
    Transition,
    TransitionSnapshot,
    accuracy_curve,
    transition_progress,
)
from .arcs import Arc, arcs_from_result, measure_arcs
from .bounds import OptimalityBound, measure_bounds, optimal_table_accuracy
from .dot import signature_graph_dot
from .overhead import (
    MacroblockPoint,
    OverheadRow,
    PreallocationReport,
    macroblock_sweep,
    overhead_sweep,
    pht_size_histogram,
    preallocation_report,
)
from .plotting import ascii_chart, sparkline
from .report import render_matrix, render_table
from .signatures import Signature, dominant_signature, extract_signatures
from .traffic import (
    FanoutStats,
    TrafficSummary,
    measure_fanout,
    summarize_traffic,
)

__all__ = [
    "AccuracyRow",
    "AdaptationCurve",
    "Arc",
    "FanoutStats",
    "TrafficSummary",
    "measure_fanout",
    "summarize_traffic",
    "MacroblockPoint",
    "OptimalityBound",
    "OverheadRow",
    "measure_bounds",
    "optimal_table_accuracy",
    "PreallocationReport",
    "macroblock_sweep",
    "pht_size_histogram",
    "preallocation_report",
    "Signature",
    "Transition",
    "TransitionSnapshot",
    "accuracy_curve",
    "arcs_from_result",
    "ascii_chart",
    "signature_graph_dot",
    "sparkline",
    "depth_sweep",
    "dominant_signature",
    "extract_signatures",
    "filter_sweep",
    "measure_arcs",
    "overhead_sweep",
    "render_matrix",
    "render_table",
    "transition_progress",
]
