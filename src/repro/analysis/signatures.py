"""Dominant-signature extraction (the dotted cycles of Figures 6 and 7).

A *signature* is the cyclic sequence of incoming message types a sharing
pattern induces at a module.  The paper draws each application's dominant
signature as the dotted cycle through its transition graph.  We extract
it the same way a reader would: starting from the most-referenced
transition, repeatedly follow the most-probable outgoing arc until the
walk closes a cycle (or dies out).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..protocol.messages import MessageType, Role
from .arcs import Arc


@dataclass(frozen=True)
class Signature:
    """A dominant cyclic message signature at one role."""

    role: Role
    cycle: Tuple[MessageType, ...]
    weight: float  # summed reference share of the cycle's arcs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        path = " -> ".join(str(m) for m in self.cycle)
        return f"[{self.role}] {path} -> (repeat)  weight={self.weight:.0f}%"


def dominant_signature(
    arcs: Sequence[Arc],
    role: Role,
    max_length: int = 12,
) -> Optional[Signature]:
    """Follow heaviest arcs from the heaviest transition until a cycle closes.

    Returns ``None`` when the role has no arcs or no cycle is reachable
    within ``max_length`` hops (acyclic or starved graphs).
    """
    outgoing: Dict[MessageType, List[Arc]] = defaultdict(list)
    for arc in arcs:
        if arc.role == role:
            outgoing[arc.src].append(arc)
    if not outgoing:
        return None
    for succs in outgoing.values():
        succs.sort(key=lambda arc: -arc.ref_percent)

    start = max(
        (arc for succs in outgoing.values() for arc in succs),
        key=lambda arc: arc.ref_percent,
    ).src

    path: List[MessageType] = [start]
    weight = 0.0
    seen_at: Dict[MessageType, int] = {start: 0}
    current = start
    for _ in range(max_length):
        succs = outgoing.get(current)
        if not succs:
            return None
        best = succs[0]
        weight += best.ref_percent
        nxt = best.dst
        if nxt in seen_at:
            cycle = tuple(path[seen_at[nxt] :])
            return Signature(role=role, cycle=cycle, weight=weight)
        seen_at[nxt] = len(path)
        path.append(nxt)
        current = nxt
    return None


def extract_signatures(
    arcs: Sequence[Arc],
) -> Dict[Role, Optional[Signature]]:
    """Dominant signature at the cache and at the directory."""
    return {
        Role.CACHE: dominant_signature(arcs, Role.CACHE),
        Role.DIRECTORY: dominant_signature(arcs, Role.DIRECTORY),
    }
