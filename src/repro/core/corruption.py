"""Seeded corruption of predictor state, and its detection.

Cosmos state lives in SRAM next to each cache/directory module; unlike
the protocol state it shadows, a predictor table is *advisory* -- a
corrupted entry can cost accuracy but must never cost correctness.  This
module models soft errors in that SRAM and the cheap defenses a real
implementation would carry:

* **bit flips** -- a random bit of a stored ``<sender, type>`` tuple
  flips (we flip in the 12-bit sender field of the paper's Table 7
  encoding, so the corrupted entry stays well-formed and the error is
  only catchable by redundancy, not by decode failure);
* **entry loss** -- a whole block's history (its MHR and PHT) vanishes,
  modeling a scrubbed-on-error or power-gated table.

Defense is one parity bit per stored tuple, written on store and checked
on use: a single-bit flip makes the check fail, the entry is dropped and
the predictor relearns it -- graceful degradation instead of silently
serving wrong predictions forever.  A confirmed prediction (stored tuple
equals the newly observed tuple) re-derives the parity, so entries also
self-heal through training.  Losses are undetectable by construction
(the entry is simply gone) and relearned the same way a cold entry is
learned.

The parity-tracking structures are subclasses
(:class:`ParityMessageHistoryRegister`,
:class:`ParityPHTEntry`) chosen by the predictor only when corruption is
armed, so fault-free runs execute exactly the original code.

Injection is driven by a :class:`CorruptionInjector` holding a private
``random.Random``, one per predictor module, so corrupted evaluations
replay deterministically (seed derivation lives in
:class:`~repro.core.bank.PredictorBank`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError
from .mhr import MessageHistoryRegister
from .pht import PHTEntry
from .tuples import SENDER_BITS, TUPLE_BITS, TYPE_BITS, MessageTuple, pack


def tuple_parity(tup: MessageTuple) -> int:
    """Even parity over the tuple's 16-bit hardware encoding (0 or 1)."""
    return pack(tup).bit_count() & 1


def flip_sender_bit(tup: MessageTuple, bit: int) -> MessageTuple:
    """``tup`` with bit ``bit`` of its sender field inverted."""
    if not 0 <= bit < SENDER_BITS:
        raise ConfigError(
            f"sender bit index {bit} out of range [0, {SENDER_BITS})"
        )
    sender, mtype = tup
    return (sender ^ (1 << bit), mtype)


@dataclass(frozen=True)
class CorruptionProfile:
    """Per-observation corruption probabilities for one predictor."""

    #: Probability one stored bit flips, per observation.
    flip: float = 0.0
    #: Probability one whole MHT entry is lost, per observation.
    loss: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flip", "loss"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(
                    f"corruption probability {name}={value} must be in [0, 1)"
                )

    @property
    def is_active(self) -> bool:
        return bool(self.flip or self.loss)

    @classmethod
    def from_faults(cls, faults) -> Optional["CorruptionProfile"]:
        """The corruption axis of a :class:`~repro.sim.faults.FaultProfile`
        (``None`` when the profile does not corrupt predictor state)."""
        if faults is None or not faults.corrupts_predictor:
            return None
        return cls(flip=faults.flip, loss=faults.loss)


class CorruptionInjector:
    """Draws corruption events for one predictor module.

    Each module owns one injector with its own seeded stream, mirroring
    how each module's SRAM suffers independent soft errors; a shared
    stream would make one module's errors depend on another's traffic.
    """

    def __init__(self, profile: CorruptionProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._rng = random.Random(seed)
        self.injected_flips = 0
        self.injected_losses = 0

    def draw_loss(self) -> bool:
        return bool(
            self.profile.loss and self._rng.random() < self.profile.loss
        )

    def draw_flip(self) -> bool:
        return bool(
            self.profile.flip and self._rng.random() < self.profile.flip
        )

    def choose(self, sequence):
        """Pick the victim entry/slot/bit uniformly."""
        return self._rng.choice(sequence)

    def flip_bit(self) -> int:
        return self._rng.randrange(SENDER_BITS)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "rng": self._rng.getstate(),
            "injected_flips": self.injected_flips,
            "injected_losses": self.injected_losses,
        }

    def restore_state(self, state: dict) -> None:
        self._rng.setstate(state["rng"])
        self.injected_flips = state["injected_flips"]
        self.injected_losses = state["injected_losses"]


class ParityMessageHistoryRegister(MessageHistoryRegister):
    """An MHR that stores one parity bit per held tuple."""

    __slots__ = ("_parity",)

    def __init__(self, depth: int) -> None:
        super().__init__(depth)
        self._parity: Tuple[int, ...] = ()

    def shift_word(self, word: int) -> None:
        super().shift_word(word)
        parity = word.bit_count() & 1
        if len(self._parity) < len(self):
            self._parity = self._parity + (parity,)
        else:
            self._parity = self._parity[1:] + (parity,)

    def corrupt_slot(self, index: int, bit: int) -> None:
        """Flip one sender bit of slot ``index`` (parity left stale)."""
        length = len(self)
        if not 0 <= index < length:
            raise IndexError(f"MHR slot {index} out of range [0, {length})")
        if not 0 <= bit < SENDER_BITS:
            raise ConfigError(
                f"sender bit index {bit} out of range [0, {SENDER_BITS})"
            )
        # Slot 0 is the oldest tuple, i.e. the highest field of the word;
        # sender bits are the high 12 bits of each 16-bit field.
        position = (length - 1 - index) * TUPLE_BITS + TYPE_BITS + bit
        self._word ^= 1 << position

    def validate(self) -> bool:
        """Whether every held tuple still matches its stored parity."""
        word = self._word
        field_mask = (1 << TUPLE_BITS) - 1
        # Walk newest (lowest field) to oldest against reversed parity.
        for parity in reversed(self._parity):
            if (word & field_mask).bit_count() & 1 != parity:
                return False
            word >>= TUPLE_BITS
        return True


class ParityPHTEntry(PHTEntry):
    """A PHT entry that stores one parity bit for its prediction."""

    __slots__ = ("parity",)

    def __init__(self, prediction: MessageTuple) -> None:
        super().__init__(prediction)
        self.parity = tuple_parity(prediction)

    def update(self, actual: MessageTuple, max_count: int) -> None:
        super().update(actual, max_count)
        # The prediction now equals ``actual`` either because it was just
        # replaced or because it was confirmed; both re-derive the value
        # from fresh data, so the parity is rewritten (self-healing).
        if self.prediction == actual:
            self.parity = tuple_parity(self.prediction)

    def corrupt(self, bit: int) -> None:
        """Flip one sender bit of the prediction (parity left stale)."""
        self.prediction = flip_sender_bit(self.prediction, bit)

    @property
    def valid(self) -> bool:
        return tuple_parity(self.prediction) == self.parity
