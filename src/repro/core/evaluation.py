"""Trace-driven predictor evaluation.

Replays a coherence-message trace through a bank of predictors (one per
cache / directory module, as in the paper) and accumulates:

* hit/reference counts split by role -- the C / D / O columns of Table 5;
* per-arc statistics (previous message type -> current message type) for
  the signature graphs of Figures 6 and 7;
* cumulative per-iteration checkpoints for the adaptation analysis
  (Table 8 and the "time to adapt" discussion);
* the memory-overhead quantities of Table 7 (for Cosmos banks).

The evaluator works with any predictor implementing the
:class:`repro.predictors.base.MessagePredictor` interface; by default it
builds Cosmos predictors from a :class:`CosmosConfig`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.log import OBS
from ..protocol.messages import MessageType, Role
from ..sim.metrics import METRICS
from ..trace.events import TraceEvent
from .config import CosmosConfig
from .memory import MemoryOverhead
from .predictor import CosmosPredictor
from .tuples import MessageTuple

#: Arc key: (role, previous message type, current message type).
ArcKey = Tuple[Role, MessageType, MessageType]


@dataclass
class Tally:
    """Hit / reference counts."""

    hits: int = 0
    refs: int = 0

    def add(self, hit: bool) -> None:
        self.refs += 1
        if hit:
            self.hits += 1

    @property
    def accuracy(self) -> float:
        return self.hits / self.refs if self.refs else 0.0

    def merged(self, other: "Tally") -> "Tally":
        return Tally(hits=self.hits + other.hits, refs=self.refs + other.refs)


@dataclass
class ArcStats:
    """Per-transition statistics backing Figures 6/7 and Table 8."""

    tallies: Dict[ArcKey, Tally] = field(default_factory=dict)

    def add(self, key: ArcKey, hit: bool) -> None:
        tally = self.tallies.get(key)
        if tally is None:
            tally = Tally()
            self.tallies[key] = tally
        tally.add(hit)

    def total_refs(self, role: Optional[Role] = None) -> int:
        return sum(
            tally.refs
            for key, tally in self.tallies.items()
            if role is None or key[0] == role
        )

    def reference_share(self, key: ArcKey) -> float:
        """This arc's refs as a fraction of all refs at the same role."""
        total = self.total_refs(key[0])
        tally = self.tallies.get(key)
        if tally is None or total == 0:
            return 0.0
        return tally.refs / total


@dataclass
class IterationCheckpoint:
    """Cumulative statistics captured at the end of one iteration."""

    iteration: int
    overall: Tally
    by_role: Dict[Role, Tally]
    arcs: Dict[ArcKey, Tally]


@dataclass
class EvaluationResult:
    """Everything measured in one trace replay."""

    config: Optional[CosmosConfig]
    overall: Tally
    by_role: Dict[Role, Tally]
    arcs: ArcStats
    checkpoints: List[IterationCheckpoint]
    overhead: Optional[MemoryOverhead]

    @property
    def cache_accuracy(self) -> float:
        return self.by_role[Role.CACHE].accuracy

    @property
    def directory_accuracy(self) -> float:
        return self.by_role[Role.DIRECTORY].accuracy

    @property
    def overall_accuracy(self) -> float:
        return self.overall.accuracy


#: Builds a fresh predictor for one (node, role) module.
PredictorFactory = Callable[[], "object"]


def evaluate_trace(
    events: Iterable[TraceEvent],
    config: Optional[CosmosConfig] = None,
    predictor_factory: Optional[PredictorFactory] = None,
    checkpoint_iterations: Iterable[int] = (),
    track_arcs: bool = True,
) -> EvaluationResult:
    """Replay ``events`` through per-module predictors and score them.

    Args:
        events: the trace, in reception order.
        config: Cosmos configuration (ignored when ``predictor_factory``
            is given).
        predictor_factory: builds the predictor for each module; defaults
            to ``CosmosPredictor(config)``.
        checkpoint_iterations: iteration numbers after which cumulative
            statistics are snapshotted (events must arrive in
            non-decreasing iteration order for checkpoints to be exact).
        track_arcs: record per-arc statistics (small extra cost).

    Returns:
        An :class:`EvaluationResult`.
    """
    if predictor_factory is None:
        cosmos_config = config if config is not None else CosmosConfig()

        def predictor_factory() -> CosmosPredictor:
            return CosmosPredictor(cosmos_config)

    predictors: Dict[Tuple[int, Role], object] = {}
    overall = Tally()
    by_role: Dict[Role, Tally] = {Role.CACHE: Tally(), Role.DIRECTORY: Tally()}
    arcs = ArcStats()
    last_type: Dict[Tuple[int, Role, int], MessageType] = {}

    remaining_checkpoints = sorted(set(checkpoint_iterations))
    checkpoints: List[IterationCheckpoint] = []
    current_iteration: Optional[int] = None

    def snapshot(iteration: int) -> IterationCheckpoint:
        return IterationCheckpoint(
            iteration=iteration,
            overall=Tally(overall.hits, overall.refs),
            by_role={
                role: Tally(tally.hits, tally.refs)
                for role, tally in by_role.items()
            },
            arcs={
                key: Tally(tally.hits, tally.refs)
                for key, tally in arcs.tallies.items()
            },
        )

    def flush_checkpoints(next_iteration: Optional[int]) -> None:
        """Emit any checkpoints fully covered before ``next_iteration``."""
        nonlocal remaining_checkpoints
        while remaining_checkpoints and (
            next_iteration is None
            or remaining_checkpoints[0] < next_iteration
        ):
            checkpoints.append(snapshot(remaining_checkpoints.pop(0)))

    for event in events:
        if current_iteration is not None and event.iteration > current_iteration:
            flush_checkpoints(event.iteration)
        current_iteration = event.iteration

        key = (event.node, event.role)
        predictor = predictors.get(key)
        if predictor is None:
            predictor = predictor_factory()
            predictors[key] = predictor
        observation = predictor.observe(event.block, event.tuple)
        hit = observation.hit
        if OBS.pred:
            predicted = observation.predicted
            OBS.emit(
                event.time,
                "pred",
                "observe",
                event.node,
                event.block,
                {
                    "role": str(event.role),
                    "hit": hit,
                    "predicted": (
                        f"P{predicted[0]} {predicted[1].name}"
                        if predicted is not None
                        else None
                    ),
                    "actual": f"P{event.sender} {event.mtype.name}",
                },
            )
        overall.add(hit)
        by_role[event.role].add(hit)
        if track_arcs:
            arc_block = (event.node, event.role, event.block)
            previous = last_type.get(arc_block)
            if previous is not None:
                arcs.add((event.role, previous, event.mtype), hit)
            last_type[arc_block] = event.mtype

    flush_checkpoints(None)

    # Distribution of per-block PHT sizes across the whole bank -- the
    # storage skew behind Table 7's totals (one end-of-replay fold).
    for predictor in predictors.values():
        pht_sizes = getattr(predictor, "pht_sizes", None)
        if pht_sizes is not None:
            for size in pht_sizes():
                METRICS.observe("pred.pht.block_entries", size)

    overhead = _measure_bank_overhead(predictors)
    return EvaluationResult(
        config=config,
        overall=overall,
        by_role=by_role,
        arcs=arcs,
        checkpoints=checkpoints,
        overhead=overhead,
    )


def _measure_bank_overhead(
    predictors: Dict[Tuple[int, Role], object]
) -> Optional[MemoryOverhead]:
    """Table 7 accounting, when every predictor is a Cosmos predictor."""
    cosmos = [
        p for p in predictors.values() if isinstance(p, CosmosPredictor)
    ]
    if not cosmos or len(cosmos) != len(predictors):
        return None
    config = cosmos[0].config
    return MemoryOverhead(
        mhr_entries=sum(p.mhr_entries for p in cosmos),
        pht_entries=sum(p.pht_entries for p in cosmos),
        depth=config.depth,
        tuple_bytes=config.tuple_bytes,
        block_bytes=config.block_bytes,
    )
