"""Trace-driven predictor evaluation.

Replays a coherence-message trace through a bank of predictors (one per
cache / directory module, as in the paper) and accumulates:

* hit/reference counts split by role -- the C / D / O columns of Table 5;
* per-arc statistics (previous message type -> current message type) for
  the signature graphs of Figures 6 and 7;
* cumulative per-iteration checkpoints for the adaptation analysis
  (Table 8 and the "time to adapt" discussion);
* the memory-overhead quantities of Table 7 (for Cosmos banks).

The evaluator works with any predictor implementing the
:class:`repro.predictors.base.MessagePredictor` interface; by default it
builds Cosmos predictors from a :class:`CosmosConfig`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.log import OBS
from ..protocol.messages import MessageType, Role
from ..sim.metrics import METRICS
from ..trace.events import TraceEvent
from .config import CosmosConfig
from .memory import MemoryOverhead, estimated_table_bytes
from .predictor import CosmosPredictor
from .tuples import TUPLE_BITS, TYPE_BITS, MessageTuple

#: Arc key: (role, previous message type, current message type).
ArcKey = Tuple[Role, MessageType, MessageType]


@dataclass
class Tally:
    """Hit / reference counts."""

    hits: int = 0
    refs: int = 0

    def add(self, hit: bool) -> None:
        self.refs += 1
        if hit:
            self.hits += 1

    @property
    def accuracy(self) -> float:
        return self.hits / self.refs if self.refs else 0.0

    def merged(self, other: "Tally") -> "Tally":
        return Tally(hits=self.hits + other.hits, refs=self.refs + other.refs)


@dataclass
class ArcStats:
    """Per-transition statistics backing Figures 6/7 and Table 8."""

    tallies: Dict[ArcKey, Tally] = field(default_factory=dict)

    def add(self, key: ArcKey, hit: bool) -> None:
        tally = self.tallies.get(key)
        if tally is None:
            tally = Tally()
            self.tallies[key] = tally
        tally.add(hit)

    def total_refs(self, role: Optional[Role] = None) -> int:
        return sum(
            tally.refs
            for key, tally in self.tallies.items()
            if role is None or key[0] == role
        )

    def reference_share(self, key: ArcKey) -> float:
        """This arc's refs as a fraction of all refs at the same role."""
        total = self.total_refs(key[0])
        tally = self.tallies.get(key)
        if tally is None or total == 0:
            return 0.0
        return tally.refs / total


@dataclass
class IterationCheckpoint:
    """Cumulative statistics captured at the end of one iteration."""

    iteration: int
    overall: Tally
    by_role: Dict[Role, Tally]
    arcs: Dict[ArcKey, Tally]


@dataclass
class EvaluationResult:
    """Everything measured in one trace replay."""

    config: Optional[CosmosConfig]
    overall: Tally
    by_role: Dict[Role, Tally]
    arcs: ArcStats
    checkpoints: List[IterationCheckpoint]
    overhead: Optional[MemoryOverhead]

    @property
    def cache_accuracy(self) -> float:
        return self.by_role[Role.CACHE].accuracy

    @property
    def directory_accuracy(self) -> float:
        return self.by_role[Role.DIRECTORY].accuracy

    @property
    def overall_accuracy(self) -> float:
        return self.overall.accuracy


#: Builds a fresh predictor for one (node, role) module.
PredictorFactory = Callable[[], "object"]


def evaluate_trace(
    events: Iterable[TraceEvent],
    config: Optional[CosmosConfig] = None,
    predictor_factory: Optional[PredictorFactory] = None,
    checkpoint_iterations: Iterable[int] = (),
    track_arcs: bool = True,
) -> EvaluationResult:
    """Replay ``events`` through per-module predictors and score them.

    Args:
        events: the trace, in reception order.
        config: Cosmos configuration (ignored when ``predictor_factory``
            is given).
        predictor_factory: builds the predictor for each module; defaults
            to ``CosmosPredictor(config)``.
        checkpoint_iterations: iteration numbers after which cumulative
            statistics are snapshotted (events must arrive in
            non-decreasing iteration order for checkpoints to be exact).
        track_arcs: record per-arc statistics (small extra cost).

    Returns:
        An :class:`EvaluationResult`.
    """
    if predictor_factory is None:
        cosmos_config = config if config is not None else CosmosConfig()
        if not OBS.pred:
            # The default Cosmos-bank replay runs the fused flat kernel
            # inline (no per-event method dispatch or Observation
            # objects); per-event observability capture needs the
            # object-at-a-time loop below.
            return _evaluate_trace_flat(
                events, config, cosmos_config,
                checkpoint_iterations, track_arcs,
            )

        def predictor_factory() -> CosmosPredictor:
            return CosmosPredictor(cosmos_config)

    predictors: Dict[Tuple[int, Role], object] = {}
    overall = Tally()
    by_role: Dict[Role, Tally] = {Role.CACHE: Tally(), Role.DIRECTORY: Tally()}
    arcs = ArcStats()
    last_type: Dict[Tuple[int, Role, int], MessageType] = {}

    remaining_checkpoints = sorted(set(checkpoint_iterations))
    checkpoints: List[IterationCheckpoint] = []
    current_iteration: Optional[int] = None

    def snapshot(iteration: int) -> IterationCheckpoint:
        return IterationCheckpoint(
            iteration=iteration,
            overall=Tally(overall.hits, overall.refs),
            by_role={
                role: Tally(tally.hits, tally.refs)
                for role, tally in by_role.items()
            },
            arcs={
                key: Tally(tally.hits, tally.refs)
                for key, tally in arcs.tallies.items()
            },
        )

    def flush_checkpoints(next_iteration: Optional[int]) -> None:
        """Emit any checkpoints fully covered before ``next_iteration``."""
        nonlocal remaining_checkpoints
        while remaining_checkpoints and (
            next_iteration is None
            or remaining_checkpoints[0] < next_iteration
        ):
            checkpoints.append(snapshot(remaining_checkpoints.pop(0)))

    for event in events:
        if current_iteration is not None and event.iteration > current_iteration:
            flush_checkpoints(event.iteration)
        current_iteration = event.iteration

        key = (event.node, event.role)
        predictor = predictors.get(key)
        if predictor is None:
            predictor = predictor_factory()
            predictors[key] = predictor
        observation = predictor.observe(event.block, event.tuple)
        hit = observation.hit
        if OBS.pred:
            predicted = observation.predicted
            OBS.emit(
                event.time,
                "pred",
                "observe",
                event.node,
                event.block,
                {
                    "role": str(event.role),
                    "hit": hit,
                    "predicted": (
                        f"P{predicted[0]} {predicted[1].name}"
                        if predicted is not None
                        else None
                    ),
                    "actual": f"P{event.sender} {event.mtype.name}",
                },
            )
        overall.add(hit)
        by_role[event.role].add(hit)
        if track_arcs:
            arc_block = (event.node, event.role, event.block)
            previous = last_type.get(arc_block)
            if previous is not None:
                arcs.add((event.role, previous, event.mtype), hit)
            last_type[arc_block] = event.mtype

    flush_checkpoints(None)

    # Distribution of per-block PHT sizes across the whole bank -- the
    # storage skew behind Table 7's totals (one end-of-replay fold).
    for predictor in predictors.values():
        pht_sizes = getattr(predictor, "pht_sizes", None)
        if pht_sizes is not None:
            for size in pht_sizes():
                METRICS.observe("pred.pht.block_entries", size)

    _fold_memory_metrics(predictors)
    overhead = _measure_bank_overhead(predictors)
    return EvaluationResult(
        config=config,
        overall=overall,
        by_role=by_role,
        arcs=arcs,
        checkpoints=checkpoints,
        overhead=overhead,
    )


def _evaluate_trace_flat(
    events: Iterable[TraceEvent],
    config: Optional[CosmosConfig],
    cosmos_config: CosmosConfig,
    checkpoint_iterations: Iterable[int],
    track_arcs: bool,
) -> EvaluationResult:
    """The default-bank replay, inlined over flat predictor state.

    Semantically identical to the generic loop in :func:`evaluate_trace`
    with ``predictor_factory=None`` (the differential suite and the
    ``tests/data/eval_goldens.json`` goldens pin this), but the per-event
    work is the fused :meth:`CosmosPredictor.observe_word` kernel written
    out over each module's ``_mht``/``_phts`` dicts: small-int packing,
    dict lookups, and list-slot counter bumps -- no method dispatch, no
    ``Observation`` allocation, no enum hashing.
    """
    if cosmos_config.mhr_capacity or cosmos_config.pht_capacity:
        # Capacity-bounded banks drive the fused observe_word kernel
        # instead of re-inlining the eviction machinery here: one
        # implementation to prove identical across layouts.
        return _evaluate_trace_flat_bounded(
            events, config, cosmos_config, checkpoint_iterations, track_arcs
        )
    depth_full_at = 1 << (TUPLE_BITS * cosmos_config.depth)
    full_mask = depth_full_at - 1
    macro = cosmos_config.macroblock_bytes
    capacity = cosmos_config.mht_capacity
    confidence = cosmos_config.confidence_threshold
    max_count = cosmos_config.filter_max_count
    directory = Role.DIRECTORY

    # Module state, keyed ``(node << 1) | role-bit``:
    # [mht, phts, predictions, hits, no_prediction, last-type-by-block,
    #  capacity_evictions] -- the dicts are the predictor's own, so the
    # result-facing CosmosPredictor objects see every update for free.
    predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}
    modules: Dict[int, list] = {}
    # (role-bit << 8) | (prev type << 4) | current type -> [hits, refs];
    # insertion order is first-occurrence order, same as the generic
    # loop's tuple-keyed ArcStats.
    arc_counts: Dict[int, list] = {}

    remaining = sorted(set(checkpoint_iterations))
    checkpoints: List[IterationCheckpoint] = []
    track_iterations = bool(remaining)
    current_iteration: Optional[int] = None

    def snapshot(iteration: int) -> IterationCheckpoint:
        overall, by_role = _fold_module_tallies(modules)
        return IterationCheckpoint(
            iteration=iteration,
            overall=overall,
            by_role=by_role,
            arcs=_arc_tallies(arc_counts),
        )

    def flush_checkpoints(next_iteration: Optional[int]) -> None:
        while remaining and (
            next_iteration is None or remaining[0] < next_iteration
        ):
            checkpoints.append(snapshot(remaining.pop(0)))

    for event in events:
        if track_iterations:
            iteration = event.iteration
            if (
                current_iteration is not None
                and iteration > current_iteration
            ):
                flush_checkpoints(iteration)
            current_iteration = iteration

        role = event.role
        module_key = (event.node << 1) | (role is directory)
        module = modules.get(module_key)
        if module is None:
            predictor = CosmosPredictor(cosmos_config)
            predictors[(event.node, role)] = predictor
            module = modules[module_key] = [
                predictor._mht, predictor._phts, 0, 0, 0, {}, 0,
            ]
        block = event.block
        word = (event.sender << TYPE_BITS) | event.mtype
        key = block // macro if macro is not None else block

        mht = module[0]
        hist = mht.get(key)
        hit = False
        if hist is None:
            module[4] += 1
            mht[key] = (1 << TUPLE_BITS) | word
            if capacity is not None and len(mht) > capacity:
                victim = next(iter(mht))
                del mht[victim]
                module[1].pop(victim, None)
                module[6] += 1
        elif hist >= depth_full_at:
            if capacity is not None:
                del mht[key]
            phts = module[1]
            pht = phts.get(key)
            if pht is None:
                pht = phts[key] = {}
            entry = pht.get(hist)
            if entry is None:
                module[4] += 1
                pht[hist] = [word, 0]
            else:
                stored = entry[0]
                counter = entry[1]
                if confidence == 0 or counter >= confidence:
                    module[2] += 1
                    if stored == word:
                        module[3] += 1
                        hit = True
                else:
                    module[4] += 1
                if stored == word:
                    if counter < max_count:
                        entry[1] = counter + 1
                elif counter > 0:
                    entry[1] = counter - 1
                else:
                    entry[0] = word
            mht[key] = depth_full_at | (
                ((hist << TUPLE_BITS) | word) & full_mask
            )
        else:
            if capacity is not None:
                del mht[key]
            module[4] += 1
            mht[key] = (hist << TUPLE_BITS) | word

        if track_arcs:
            last_type = module[5]
            previous = last_type.get(block)
            mtype = event.mtype
            if previous is not None:
                arc_key = (
                    ((module_key & 1) << 8) | (previous << TYPE_BITS) | mtype
                )
                arc = arc_counts.get(arc_key)
                if arc is None:
                    arc = arc_counts[arc_key] = [0, 0]
                arc[1] += 1
                if hit:
                    arc[0] += 1
            last_type[block] = mtype

    flush_checkpoints(None)

    # Hand the counters back to the result-facing predictors, then run
    # the same end-of-replay folds as the generic loop.
    for (node, role), predictor in predictors.items():
        module = modules[(node << 1) | (role is directory)]
        predictor.predictions = module[2]
        predictor.hits = module[3]
        predictor.no_prediction = module[4]
        predictor.capacity_evictions = module[6]
    for predictor in predictors.values():
        for size in predictor.pht_sizes():
            METRICS.observe("pred.pht.block_entries", size)

    overall, by_role = _fold_module_tallies(modules)
    return EvaluationResult(
        config=config,
        overall=overall,
        by_role=by_role,
        arcs=ArcStats(tallies=_arc_tallies(arc_counts)),
        checkpoints=checkpoints,
        overhead=_measure_bank_overhead(predictors),
    )


def _evaluate_trace_flat_bounded(
    events: Iterable[TraceEvent],
    config: Optional[CosmosConfig],
    cosmos_config: CosmosConfig,
    checkpoint_iterations: Iterable[int],
    track_arcs: bool,
) -> EvaluationResult:
    """The capacity-bounded flat replay.

    Each event runs :meth:`CosmosPredictor.observe_word` -- the single
    implementation of the bounded kernel, shared with the object layout's
    ``update`` path -- so eviction decisions here are the ones the
    differential suite certifies.  Tallies, arcs, and checkpoints fold
    exactly as the unbounded inline loop's do.
    """
    directory = Role.DIRECTORY
    predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}
    # (node << 1) | role-bit -> [predictor, last-type-by-block]
    modules: Dict[int, list] = {}
    arc_counts: Dict[int, list] = {}

    remaining = sorted(set(checkpoint_iterations))
    checkpoints: List[IterationCheckpoint] = []
    track_iterations = bool(remaining)
    current_iteration: Optional[int] = None

    def snapshot(iteration: int) -> IterationCheckpoint:
        overall, by_role = _fold_predictor_tallies(modules)
        return IterationCheckpoint(
            iteration=iteration,
            overall=overall,
            by_role=by_role,
            arcs=_arc_tallies(arc_counts),
        )

    def flush_checkpoints(next_iteration: Optional[int]) -> None:
        while remaining and (
            next_iteration is None or remaining[0] < next_iteration
        ):
            checkpoints.append(snapshot(remaining.pop(0)))

    for event in events:
        if track_iterations:
            iteration = event.iteration
            if (
                current_iteration is not None
                and iteration > current_iteration
            ):
                flush_checkpoints(iteration)
            current_iteration = iteration

        role = event.role
        module_key = (event.node << 1) | (role is directory)
        module = modules.get(module_key)
        if module is None:
            predictor = CosmosPredictor(cosmos_config)
            predictors[(event.node, role)] = predictor
            module = modules[module_key] = [predictor, {}]
        block = event.block
        word = (event.sender << TYPE_BITS) | event.mtype
        predicted = module[0].observe_word(block, word)
        hit = predicted == word

        if track_arcs:
            last_type = module[1]
            previous = last_type.get(block)
            mtype = event.mtype
            if previous is not None:
                arc_key = (
                    ((module_key & 1) << 8) | (previous << TYPE_BITS) | mtype
                )
                arc = arc_counts.get(arc_key)
                if arc is None:
                    arc = arc_counts[arc_key] = [0, 0]
                arc[1] += 1
                if hit:
                    arc[0] += 1
            last_type[block] = mtype

    flush_checkpoints(None)

    for predictor in predictors.values():
        for size in predictor.pht_sizes():
            METRICS.observe("pred.pht.block_entries", size)
    _fold_memory_metrics(predictors)

    overall, by_role = _fold_predictor_tallies(modules)
    return EvaluationResult(
        config=config,
        overall=overall,
        by_role=by_role,
        arcs=ArcStats(tallies=_arc_tallies(arc_counts)),
        checkpoints=checkpoints,
        overhead=_measure_bank_overhead(predictors),
    )


def _fold_predictor_tallies(
    modules: Dict[int, list]
) -> Tuple[Tally, Dict[Role, Tally]]:
    """Tallies from bounded-loop modules (counters live on predictors)."""
    by_role = {Role.CACHE: Tally(), Role.DIRECTORY: Tally()}
    for module_key, module in modules.items():
        predictor = module[0]
        tally = by_role[
            Role.DIRECTORY if module_key & 1 else Role.CACHE
        ]
        tally.hits += predictor.hits
        tally.refs += predictor.predictions + predictor.no_prediction
    overall = Tally(
        hits=by_role[Role.CACHE].hits + by_role[Role.DIRECTORY].hits,
        refs=by_role[Role.CACHE].refs + by_role[Role.DIRECTORY].refs,
    )
    return overall, by_role


def _fold_module_tallies(
    modules: Dict[int, list]
) -> Tuple[Tally, Dict[Role, Tally]]:
    """Overall and per-role tallies from the flat loop's module states."""
    by_role = {Role.CACHE: Tally(), Role.DIRECTORY: Tally()}
    for module_key, module in modules.items():
        tally = by_role[
            Role.DIRECTORY if module_key & 1 else Role.CACHE
        ]
        tally.hits += module[3]
        tally.refs += module[2] + module[4]
    overall = Tally(
        hits=by_role[Role.CACHE].hits + by_role[Role.DIRECTORY].hits,
        refs=by_role[Role.CACHE].refs + by_role[Role.DIRECTORY].refs,
    )
    return overall, by_role


def _arc_tallies(arc_counts: Dict[int, list]) -> Dict[ArcKey, Tally]:
    """Int-keyed arc counters back to the readable ArcStats form."""
    type_mask = (1 << TYPE_BITS) - 1
    return {
        (
            Role.DIRECTORY if arc_key >> (2 * TYPE_BITS) else Role.CACHE,
            MessageType((arc_key >> TYPE_BITS) & type_mask),
            MessageType(arc_key & type_mask),
        ): Tally(hits=counts[0], refs=counts[1])
        for arc_key, counts in arc_counts.items()
    }


def _measure_bank_overhead(
    predictors: Dict[Tuple[int, Role], object]
) -> Optional[MemoryOverhead]:
    """Table 7 accounting, when every predictor is a Cosmos predictor."""
    cosmos = [
        p for p in predictors.values() if isinstance(p, CosmosPredictor)
    ]
    if not cosmos or len(cosmos) != len(predictors):
        return None
    config = cosmos[0].config
    return MemoryOverhead(
        mhr_entries=sum(p.mhr_entries for p in cosmos),
        pht_entries=sum(p.pht_entries for p in cosmos),
        depth=config.depth,
        tuple_bytes=config.tuple_bytes,
        block_bytes=config.block_bytes,
        peak_mhr_entries=sum(p.peak_mhr_entries for p in cosmos),
        peak_pht_entries=sum(p.peak_pht_entries for p in cosmos),
    )


def _fold_memory_metrics(
    predictors: Dict[Tuple[int, Role], object]
) -> None:
    """Emit ``pred.mem.*`` for capacity-bounded banks.

    Emitted only when a capacity is actually configured, so unbounded
    runs produce byte-identical metrics to before the knobs existed.
    Byte estimates use the Table 7 cost model (core/memory.py).
    """
    cosmos = [
        p for p in predictors.values() if isinstance(p, CosmosPredictor)
    ]
    if not cosmos:
        return
    config = cosmos[0].config
    if not (config.mhr_capacity or config.pht_capacity):
        return
    mhr_live = sum(p.mhr_entries for p in cosmos)
    pht_live = sum(p.pht_entries for p in cosmos)
    mhr_peak = sum(p.peak_mhr_entries for p in cosmos)
    pht_peak = sum(p.peak_pht_entries for p in cosmos)
    METRICS.inc("pred.mem.mhr_live", mhr_live)
    METRICS.inc("pred.mem.pht_live", pht_live)
    METRICS.inc("pred.mem.peak_mhr", mhr_peak)
    METRICS.inc("pred.mem.peak_pht", pht_peak)
    METRICS.inc(
        "pred.mem.evictions_mhr", sum(p.evictions_mhr for p in cosmos)
    )
    METRICS.inc(
        "pred.mem.evictions_pht", sum(p.evictions_pht for p in cosmos)
    )
    METRICS.inc(
        "pred.mem.bytes_est", estimated_table_bytes(config, mhr_live, pht_live)
    )
    METRICS.inc(
        "pred.mem.peak_bytes_est",
        estimated_table_bytes(config, mhr_peak, pht_peak),
    )
