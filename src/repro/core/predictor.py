"""The Cosmos coherence-message predictor.

One :class:`CosmosPredictor` sits beside one cache or directory module.
Prediction (paper Section 3.3): index the Message History Table with the
block address to find that block's MHR; use the MHR contents to index the
block's Pattern History Table; return the stored prediction, if any.
Update (Section 3.4): write the observed tuple as the new prediction for
the current pattern (subject to the noise filter), then shift the tuple
into the MHR.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..protocol.messages import MessageType
from .config import CosmosConfig
from .mhr import MessageHistoryRegister
from .pht import PatternHistoryTable
from .tuples import MessageTuple


@dataclass(frozen=True)
class Observation:
    """Outcome of one predict-then-observe step."""

    block: int
    predicted: Optional[MessageTuple]
    actual: MessageTuple

    @property
    def hit(self) -> bool:
        """A hit requires the full tuple -- sender *and* type -- to match."""
        return self.predicted == self.actual

    @property
    def type_hit(self) -> bool:
        """Whether at least the message type matched (diagnostic only)."""
        return self.predicted is not None and self.predicted[1] == self.actual[1]


class CosmosPredictor:
    """Two-level adaptive predictor for one cache or directory module."""

    def __init__(self, config: Optional[CosmosConfig] = None) -> None:
        # A ``config=CosmosConfig()`` default would be evaluated once at
        # class-definition time and shared by every default-constructed
        # predictor; build a fresh instance per predictor instead.
        config = config if config is not None else CosmosConfig()
        self.config = config
        self._mht: "OrderedDict[int, MessageHistoryRegister]" = OrderedDict()
        self._phts: Dict[int, PatternHistoryTable] = {}
        self._macro = config.macroblock_bytes
        self._capacity = config.mht_capacity
        self._confidence = config.confidence_threshold
        # Statistics
        self.predictions = 0
        self.hits = 0
        self.no_prediction = 0
        self.capacity_evictions = 0

    def _key(self, block: int) -> int:
        """Table index for ``block``: the block itself, or its macroblock."""
        if self._macro is None:
            return block
        return block // self._macro

    # ------------------------------------------------------------------
    # the two paper operations
    # ------------------------------------------------------------------

    def predict(self, block: int) -> Optional[MessageTuple]:
        """Predict the next ``<sender, type>`` for ``block`` (or ``None``)."""
        block = self._key(block)
        mhr = self._mht.get(block)
        if mhr is None:
            return None
        pattern = mhr.pattern()
        if pattern is None:
            return None
        pht = self._phts.get(block)
        if pht is None:
            return None
        if self._confidence == 0:
            return pht.predict(pattern)
        found = pht.predict_with_confidence(pattern)
        if found is None:
            return None
        prediction, counter = found
        return prediction if counter >= self._confidence else None

    def update(self, block: int, actual: MessageTuple) -> None:
        """Train on the reception of ``actual`` for ``block``."""
        block = self._key(block)
        mhr = self._mht.get(block)
        if mhr is None:
            mhr = MessageHistoryRegister(self.config.depth)
            self._mht[block] = mhr
            if self._capacity is not None and len(self._mht) > self._capacity:
                # Hardware-bounded table: evict the least recently used
                # block's history (and its patterns) wholesale.
                victim, _ = self._mht.popitem(last=False)
                self._phts.pop(victim, None)
                self.capacity_evictions += 1
        elif self._capacity is not None:
            self._mht.move_to_end(block)
        pattern = mhr.pattern()
        if pattern is not None:
            pht = self._phts.get(block)
            if pht is None:
                # PHTs are allocated lazily: a block whose reference count
                # never exceeds the MHR depth never gets one (Table 7).
                pht = PatternHistoryTable(self.config.filter_max_count)
                self._phts[block] = pht
            pht.train(pattern, actual)
        mhr.shift(actual)

    def forget(self, block: int) -> None:
        """Discard all history for ``block``.

        Models Section 3.7's caveat: an implementation that merges the
        first-level table with cache-block state loses the block's
        history when the block is replaced.  The replacement study
        (``repro.experiments.replacement``) calls this on every eviction
        to measure what that merging costs.
        """
        key = self._key(block)
        self._mht.pop(key, None)
        self._phts.pop(key, None)

    def observe(self, block: int, actual: MessageTuple) -> Observation:
        """Predict, score against ``actual``, then train.  One message."""
        predicted = self.predict(block)
        if predicted is None:
            self.no_prediction += 1
        else:
            self.predictions += 1
            if predicted == actual:
                self.hits += 1
        self.update(block, actual)
        return Observation(block=block, predicted=predicted, actual=actual)

    # ------------------------------------------------------------------
    # introspection (memory accounting, analysis)
    # ------------------------------------------------------------------

    @property
    def mhr_entries(self) -> int:
        """Blocks referenced at least once (Table 7's MHR entry count)."""
        return len(self._mht)

    @property
    def pht_entries(self) -> int:
        """Total pattern entries across all blocks (Table 7's numerator)."""
        return sum(len(pht) for pht in self._phts.values())

    def pht_of(self, block: int) -> Optional[PatternHistoryTable]:
        return self._phts.get(self._key(block))

    def mhr_of(self, block: int) -> Optional[MessageHistoryRegister]:
        return self._mht.get(self._key(block))

    def pht_sizes(self) -> Tuple[int, ...]:
        """Per-block PHT entry counts (for preallocation analysis)."""
        return tuple(len(pht) for pht in self._phts.values())

    def blocks(self) -> Tuple[int, ...]:
        return tuple(self._mht)

    @property
    def accuracy(self) -> float:
        """Hits over *all* references (no-predictions count as misses)."""
        total = self.predictions + self.no_prediction
        return self.hits / total if total else 0.0
