"""The Cosmos coherence-message predictor.

One :class:`CosmosPredictor` sits beside one cache or directory module.
Prediction (paper Section 3.3): index the Message History Table with the
block address to find that block's MHR; use the MHR contents to index the
block's Pattern History Table; return the stored prediction, if any.
Update (Section 3.4): write the observed tuple as the new prediction for
the current pattern (subject to the noise filter), then shift the tuple
into the MHR.

Two equivalent state layouts back the same API:

* **flat** (the default): the MHT is a plain ``Dict[int, int]`` mapping a
  block to its marker-led packed history word, and each per-block PHT is
  a ``Dict[int, list]`` mapping a pattern word to ``[prediction word,
  filter counter]``.  :meth:`observe_word` fuses predict + score + train
  into one pass of small-int dict operations -- the hot path the
  evaluation loop runs millions of times.  LRU order for bounded tables
  is the dict's insertion order (re-inserting a key moves it to the
  end).
* **object** (only when corruption injection is armed): the original
  :class:`~repro.core.mhr.MessageHistoryRegister` /
  :class:`~repro.core.pht.PatternHistoryTable` structures, swapped for
  their parity-tracking subclasses.  Corruption studies mutate live
  register/entry objects in place, which the flat layout deliberately
  has none of.

Snapshots use the readable tuple form for histories, patterns, and
predictions regardless of layout, so checkpoints stay format-compatible
and layout-independent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .config import CosmosConfig
from .corruption import (
    CorruptionInjector,
    ParityMessageHistoryRegister,
    ParityPHTEntry,
)
from .mhr import MessageHistoryRegister
from .pht import PatternHistoryTable, pattern_word
from .tuples import (
    TUPLE_BITS,
    MessageTuple,
    pack,
    pack_pattern,
    tuple_of_word,
    unpack_pattern,
)


@dataclass(frozen=True)
class Observation:
    """Outcome of one predict-then-observe step."""

    block: int
    predicted: Optional[MessageTuple]
    actual: MessageTuple

    @property
    def hit(self) -> bool:
        """A hit requires the full tuple -- sender *and* type -- to match."""
        return self.predicted == self.actual

    @property
    def type_hit(self) -> bool:
        """Whether at least the message type matched (diagnostic only)."""
        return self.predicted is not None and self.predicted[1] == self.actual[1]


class CosmosPredictor:
    """Two-level adaptive predictor for one cache or directory module."""

    def __init__(
        self,
        config: Optional[CosmosConfig] = None,
        corruption: Optional[CorruptionInjector] = None,
    ) -> None:
        # A ``config=CosmosConfig()`` default would be evaluated once at
        # class-definition time and shared by every default-constructed
        # predictor; build a fresh instance per predictor instead.
        config = config if config is not None else CosmosConfig()
        self.config = config
        self._macro = config.macroblock_bytes
        self._capacity = config.mht_capacity
        self._confidence = config.confidence_threshold
        self._max_count = config.filter_max_count
        self._full_at = 1 << (TUPLE_BITS * config.depth)
        self._corruption = corruption
        self._flat = corruption is None
        if self._flat:
            # block -> marker-led packed history word (insertion order is
            # LRU order for bounded tables).
            self._mht: Dict[int, int] = {}
            # block -> {pattern word -> [prediction word, counter]}
            self._phts: Dict[int, Dict[int, list]] = {}
        else:
            self._mht = OrderedDict()  # block -> ParityMHR
            self._phts = {}  # block -> PatternHistoryTable
        # Statistics
        self.predictions = 0
        self.hits = 0
        self.no_prediction = 0
        self.capacity_evictions = 0
        self.corrupt_flips = 0
        self.corrupt_losses = 0
        self.corrupt_detected = 0

    def _key(self, block: int) -> int:
        """Table index for ``block``: the block itself, or its macroblock."""
        if self._macro is None:
            return block
        return block // self._macro

    # ------------------------------------------------------------------
    # the fused hot path (flat layout)
    # ------------------------------------------------------------------

    def observe_word(self, block: int, word: int) -> int:
        """Predict, score, and train on one packed ``<sender, type>`` word.

        The flat layout's fused equivalent of :meth:`observe`: ``word``
        is the 16-bit :func:`~repro.core.tuples.pack` encoding of the
        observed tuple, and the return value is the packed prediction
        Cosmos made for it (``-1`` when it declined to predict).  All
        statistics counters update exactly as :meth:`observe` would.
        """
        if self._macro is not None:
            block //= self._macro
        mht = self._mht
        hist = mht.get(block)
        if hist is None:
            self.no_prediction += 1
            mht[block] = (1 << TUPLE_BITS) | word
            if self._capacity is not None and len(mht) > self._capacity:
                # Hardware-bounded table: evict the least recently used
                # block's history (and its patterns) wholesale.
                victim = next(iter(mht))
                del mht[victim]
                self._phts.pop(victim, None)
                self.capacity_evictions += 1
            return -1
        if self._capacity is not None:
            del mht[block]  # re-inserted below == move to LRU tail
        predicted = -1
        full_at = self._full_at
        if hist >= full_at:
            pht = self._phts.get(block)
            if pht is None:
                # PHTs are allocated lazily: a block whose reference count
                # never exceeds the MHR depth never gets one (Table 7).
                pht = self._phts[block] = {}
            entry = pht.get(hist)
            if entry is None:
                self.no_prediction += 1
                pht[hist] = [word, 0]
            else:
                stored = entry[0]
                counter = entry[1]
                confidence = self._confidence
                if confidence == 0 or counter >= confidence:
                    predicted = stored
                    self.predictions += 1
                    if stored == word:
                        self.hits += 1
                else:
                    self.no_prediction += 1
                # Single-sided saturating noise filter (Section 3.6).
                if stored == word:
                    if counter < self._max_count:
                        entry[1] = counter + 1
                elif counter > 0:
                    entry[1] = counter - 1
                else:
                    entry[0] = word
            hist = full_at | (((hist << TUPLE_BITS) | word) & (full_at - 1))
        else:
            self.no_prediction += 1
            hist = (hist << TUPLE_BITS) | word
        mht[block] = hist
        return predicted

    # ------------------------------------------------------------------
    # the two paper operations
    # ------------------------------------------------------------------

    def predict(self, block: int) -> Optional[MessageTuple]:
        """Predict the next ``<sender, type>`` for ``block`` (or ``None``)."""
        block = self._key(block)
        if self._flat:
            hist = self._mht.get(block)
            if hist is None or hist < self._full_at:
                return None
            pht = self._phts.get(block)
            if pht is None:
                return None
            entry = pht.get(hist)
            if entry is None:
                return None
            if self._confidence and entry[1] < self._confidence:
                return None
            return tuple_of_word(entry[0])
        mhr = self._mht.get(block)
        if mhr is None:
            return None
        if not mhr.validate():
            # Parity caught a flipped history bit: the register contents
            # are untrustworthy, so drop them and relearn.  The block's
            # PHT survives -- its patterns were trained from pre-flip
            # history and stay as good as any learned knowledge.
            self.corrupt_detected += 1
            self._mht.pop(block, None)
            return None
        pattern = mhr.pattern()
        if pattern is None:
            return None
        pht = self._phts.get(block)
        if pht is None:
            return None
        entry = pht.entry(pattern)
        if entry is not None and not entry.valid:
            # Flipped prediction: drop the single entry and relearn.
            self.corrupt_detected += 1
            pht.drop(pattern)
            return None
        if self._confidence == 0:
            return pht.predict(pattern)
        found = pht.predict_with_confidence(pattern)
        if found is None:
            return None
        prediction, counter = found
        return prediction if counter >= self._confidence else None

    def update(self, block: int, actual: MessageTuple) -> None:
        """Train on the reception of ``actual`` for ``block``."""
        if self._flat:
            word = pack(actual)
            block = self._key(block)
            mht = self._mht
            hist = mht.get(block)
            if hist is None:
                mht[block] = (1 << TUPLE_BITS) | word
                if (
                    self._capacity is not None
                    and len(mht) > self._capacity
                ):
                    victim = next(iter(mht))
                    del mht[victim]
                    self._phts.pop(victim, None)
                    self.capacity_evictions += 1
                return
            if self._capacity is not None:
                del mht[block]
            full_at = self._full_at
            if hist >= full_at:
                pht = self._phts.get(block)
                if pht is None:
                    pht = self._phts[block] = {}
                entry = pht.get(hist)
                if entry is None:
                    pht[hist] = [word, 0]
                else:
                    stored = entry[0]
                    counter = entry[1]
                    if stored == word:
                        if counter < self._max_count:
                            entry[1] = counter + 1
                    elif counter > 0:
                        entry[1] = counter - 1
                    else:
                        entry[0] = word
                hist = full_at | (
                    ((hist << TUPLE_BITS) | word) & (full_at - 1)
                )
            else:
                hist = (hist << TUPLE_BITS) | word
            mht[block] = hist
            return
        block = self._key(block)
        mhr = self._mht.get(block)
        if mhr is None:
            mhr = ParityMessageHistoryRegister(self.config.depth)
            self._mht[block] = mhr
            if self._capacity is not None and len(self._mht) > self._capacity:
                victim, _ = self._mht.popitem(last=False)
                self._phts.pop(victim, None)
                self.capacity_evictions += 1
        elif self._capacity is not None:
            self._mht.move_to_end(block)
        pattern = mhr.pattern()
        if pattern is not None:
            pht = self._phts.get(block)
            if pht is None:
                pht = PatternHistoryTable(
                    self.config.filter_max_count, entry_cls=ParityPHTEntry
                )
                self._phts[block] = pht
            pht.train(pattern, actual)
        mhr.shift(actual)

    def forget(self, block: int) -> None:
        """Discard all history for ``block``.

        Models Section 3.7's caveat: an implementation that merges the
        first-level table with cache-block state loses the block's
        history when the block is replaced.  The replacement study
        (``repro.experiments.replacement``) calls this on every eviction
        to measure what that merging costs.
        """
        key = self._key(block)
        self._mht.pop(key, None)
        self._phts.pop(key, None)

    def _inject_corruption(self) -> None:
        """Maybe corrupt this module's SRAM before the next use.

        Drawn once per observation: soft-error arrival is proportional
        to time, and observations are this predictor's clock.  Victims
        (entry, slot/pattern, bit) are chosen uniformly from live state,
        so a bigger table absorbs proportionally more of the flux --
        matching how real SRAM error rates scale with capacity.
        """
        injector = self._corruption
        if not self._mht:
            return
        if injector.draw_loss():
            victim = injector.choose(list(self._mht))
            self._mht.pop(victim, None)
            self._phts.pop(victim, None)
            self.corrupt_losses += 1
            injector.injected_losses += 1
        if not self._mht:
            return
        if injector.draw_flip():
            target = injector.choose(list(self._mht))
            mhr = self._mht[target]
            pht = self._phts.get(target)
            # Choose uniformly among the block's stored tuples: each MHR
            # slot and each PHT entry's prediction is one 16-bit word.
            slots = len(mhr)
            entries = (
                [pattern for pattern, _ in pht.items()] if pht else []
            )
            total = slots + len(entries)
            if total == 0:
                return
            pick = injector.choose(range(total))
            bit = injector.flip_bit()
            if pick < slots:
                mhr.corrupt_slot(pick, bit)
            else:
                pht.entry(entries[pick - slots]).corrupt(bit)
            self.corrupt_flips += 1
            injector.injected_flips += 1

    def observe(self, block: int, actual: MessageTuple) -> Observation:
        """Predict, score against ``actual``, then train.  One message."""
        if self._flat:
            predicted = self.observe_word(block, pack(actual))
            return Observation(
                block=block,
                predicted=(
                    tuple_of_word(predicted) if predicted >= 0 else None
                ),
                actual=actual,
            )
        self._inject_corruption()
        predicted = self.predict(block)
        if predicted is None:
            self.no_prediction += 1
        else:
            self.predictions += 1
            if predicted == actual:
                self.hits += 1
        self.update(block, actual)
        return Observation(block=block, predicted=predicted, actual=actual)

    # ------------------------------------------------------------------
    # introspection (memory accounting, analysis)
    # ------------------------------------------------------------------

    @property
    def mhr_entries(self) -> int:
        """Blocks referenced at least once (Table 7's MHR entry count)."""
        return len(self._mht)

    @property
    def pht_entries(self) -> int:
        """Total pattern entries across all blocks (Table 7's numerator)."""
        return sum(len(pht) for pht in self._phts.values())

    def pht_of(self, block: int) -> Optional[PatternHistoryTable]:
        """The block's PHT: the live table (object layout) or a read-only
        materialized view of the flat state (mutations do not write back).
        """
        table = self._phts.get(self._key(block))
        if table is None or not self._flat:
            return table
        view = PatternHistoryTable(self.config.filter_max_count)
        for pattern, (prediction, counter) in table.items():
            view.train(pattern, tuple_of_word(prediction))
            view.entry(pattern).counter = counter
        return view

    def mhr_of(self, block: int) -> Optional[MessageHistoryRegister]:
        """The block's MHR: the live register (object layout) or a
        read-only materialized view of the flat state.
        """
        found = self._mht.get(self._key(block))
        if found is None or not self._flat:
            return found
        view = MessageHistoryRegister(self.config.depth)
        view._word = found
        return view

    def pht_sizes(self) -> Tuple[int, ...]:
        """Per-block PHT entry counts (for preallocation analysis)."""
        return tuple(len(pht) for pht in self._phts.values())

    def blocks(self) -> Tuple[int, ...]:
        return tuple(self._mht)

    @property
    def accuracy(self) -> float:
        """Hits over *all* references (no-predictions count as misses)."""
        total = self.predictions + self.no_prediction
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    _STAT_FIELDS = (
        "predictions",
        "hits",
        "no_prediction",
        "capacity_evictions",
        "corrupt_flips",
        "corrupt_losses",
        "corrupt_detected",
    )

    def snapshot_state(self) -> dict:
        """Capture MHT/PHT contents and statistics as plain data.

        MHT order is preserved (it *is* the LRU order capacity eviction
        walks), histories/patterns/predictions are stored in the
        layout-independent tuple form, and parity bits ride along when
        the parity-tracking structures are in use -- so a restored
        predictor behaves bit-identically, including which corrupted
        entries are still latent.
        """
        mht = []
        phts = {}
        if self._flat:
            for block, word in self._mht.items():
                mht.append({"block": block, "history": unpack_pattern(word)})
            for block, table in self._phts.items():
                phts[block] = [
                    {
                        "pattern": unpack_pattern(pattern),
                        "prediction": tuple_of_word(prediction),
                        "counter": counter,
                    }
                    for pattern, (prediction, counter) in table.items()
                ]
        else:
            for block, mhr in self._mht.items():
                record = {"block": block, "history": mhr.snapshot()}
                record["parity"] = mhr._parity
                mht.append(record)
            for block, pht in self._phts.items():
                entries = []
                for pattern, entry in pht.items():
                    entries.append(
                        {
                            "pattern": unpack_pattern(pattern),
                            "prediction": entry.prediction,
                            "counter": entry.counter,
                            "parity": entry.parity,
                        }
                    )
                phts[block] = entries
        state = {
            "mht": mht,
            "phts": phts,
            "stats": {
                name: getattr(self, name) for name in self._STAT_FIELDS
            },
        }
        if self._corruption is not None:
            state["corruption"] = self._corruption.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`.

        The predictor must have been constructed with the same config
        and the same corruption arming as the captured one.
        """
        if self._flat:
            self._mht = {
                record["block"]: pack_pattern(record["history"])
                for record in state["mht"]
            }
            self._phts = {
                block: {
                    pack_pattern(item["pattern"]): [
                        pack(item["prediction"]),
                        item["counter"],
                    ]
                    for item in entries
                }
                for block, entries in state["phts"].items()
            }
        else:
            self._mht = OrderedDict()
            for record in state["mht"]:
                mhr = ParityMessageHistoryRegister(self.config.depth)
                for tup in record["history"]:
                    mhr.shift(tup)
                if "parity" in record:
                    # Replay-computed parity is always consistent; restore
                    # the captured bits so latent corruption stays latent.
                    mhr._parity = tuple(record["parity"])
                self._mht[record["block"]] = mhr
            self._phts = {}
            for block, entries in state["phts"].items():
                pht = PatternHistoryTable(
                    self.config.filter_max_count, entry_cls=ParityPHTEntry
                )
                for item in entries:
                    entry = ParityPHTEntry(item["prediction"])
                    entry.counter = item["counter"]
                    if "parity" in item:
                        entry.parity = item["parity"]
                    pht._entries[pattern_word(item["pattern"])] = entry
                self._phts[block] = pht
        for name in self._STAT_FIELDS:
            setattr(self, name, state["stats"][name])
        if self._corruption is not None and "corruption" in state:
            self._corruption.restore_state(state["corruption"])
