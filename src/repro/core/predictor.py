"""The Cosmos coherence-message predictor.

One :class:`CosmosPredictor` sits beside one cache or directory module.
Prediction (paper Section 3.3): index the Message History Table with the
block address to find that block's MHR; use the MHR contents to index the
block's Pattern History Table; return the stored prediction, if any.
Update (Section 3.4): write the observed tuple as the new prediction for
the current pattern (subject to the noise filter), then shift the tuple
into the MHR.

Two equivalent state layouts back the same API:

* **flat** (the default): the MHT is a plain ``Dict[int, int]`` mapping a
  block to its marker-led packed history word, and each per-block PHT is
  a ``Dict[int, list]`` mapping a pattern word to ``[prediction word,
  filter counter]``.  :meth:`observe_word` fuses predict + score + train
  into one pass of small-int dict operations -- the hot path the
  evaluation loop runs millions of times.  LRU order for bounded tables
  is the dict's insertion order (re-inserting a key moves it to the
  end).
* **object** (only when corruption injection is armed): the original
  :class:`~repro.core.mhr.MessageHistoryRegister` /
  :class:`~repro.core.pht.PatternHistoryTable` structures, swapped for
  their parity-tracking subclasses.  Corruption studies mutate live
  register/entry objects in place, which the flat layout deliberately
  has none of.

Snapshots use the readable tuple form for histories, patterns, and
predictions regardless of layout, so checkpoints stay format-compatible
and layout-independent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .config import CosmosConfig
from .eviction import ClockOrder
from .corruption import (
    CorruptionInjector,
    ParityMessageHistoryRegister,
    ParityPHTEntry,
)
from .mhr import MessageHistoryRegister
from .pht import PatternHistoryTable, pattern_word
from .tuples import (
    TUPLE_BITS,
    MessageTuple,
    pack,
    pack_pattern,
    tuple_of_word,
    unpack_pattern,
)


@dataclass(frozen=True)
class Observation:
    """Outcome of one predict-then-observe step."""

    block: int
    predicted: Optional[MessageTuple]
    actual: MessageTuple

    @property
    def hit(self) -> bool:
        """A hit requires the full tuple -- sender *and* type -- to match."""
        return self.predicted == self.actual

    @property
    def type_hit(self) -> bool:
        """Whether at least the message type matched (diagnostic only)."""
        return self.predicted is not None and self.predicted[1] == self.actual[1]


class CosmosPredictor:
    """Two-level adaptive predictor for one cache or directory module."""

    def __init__(
        self,
        config: Optional[CosmosConfig] = None,
        corruption: Optional[CorruptionInjector] = None,
    ) -> None:
        # A ``config=CosmosConfig()`` default would be evaluated once at
        # class-definition time and shared by every default-constructed
        # predictor; build a fresh instance per predictor instead.
        config = config if config is not None else CosmosConfig()
        self.config = config
        self._macro = config.macroblock_bytes
        self._capacity = config.mht_capacity
        self._confidence = config.confidence_threshold
        self._max_count = config.filter_max_count
        self._full_at = 1 << (TUPLE_BITS * config.depth)
        self._corruption = corruption
        self._flat = corruption is None
        # Capacity-bounded tables (mhr_capacity / pht_capacity; see
        # core/eviction.py).  LRU MHR bounding needs no side structure:
        # recency is the table's own insertion order in both layouts.
        # clock/decay keep a ClockOrder per bounded table; a bounded PHT
        # under LRU keeps a cross-block recency dict.  All of it is None
        # (and costs nothing on the hot path) when unbounded.
        mhr_cap = config.mhr_capacity
        pht_cap = config.pht_capacity
        self._mhr_cap = mhr_cap
        self._pht_cap = pht_cap
        self._bounded = bool(mhr_cap or pht_cap)
        clocked = config.eviction != "lru"
        decayed = config.eviction == "decay"
        self._lru_mhr = bool(mhr_cap) and not clocked
        self._mhr_clock = (
            ClockOrder(decayed) if mhr_cap and clocked else None
        )
        self._pht_lru: Optional[Dict[int, None]] = (
            {} if pht_cap and not clocked else None
        )
        self._pht_clock = (
            ClockOrder(decayed) if pht_cap and clocked else None
        )
        # Packed (block, pattern) key for the PHT order structures: a
        # full marker-led pattern word is < 2 * full_at, so shifting the
        # block past it never collides.
        self._pkey_shift = TUPLE_BITS * config.depth + 1
        self._pht_total = 0
        self._peak_mhr = 0
        self._peak_pht = 0
        if self._flat:
            # block -> marker-led packed history word (insertion order is
            # LRU order for bounded tables).
            self._mht: Dict[int, int] = {}
            # block -> {pattern word -> [prediction word, counter]}
            self._phts: Dict[int, Dict[int, list]] = {}
        else:
            self._mht = OrderedDict()  # block -> ParityMHR
            self._phts = {}  # block -> PatternHistoryTable
        # Statistics
        self.predictions = 0
        self.hits = 0
        self.no_prediction = 0
        self.capacity_evictions = 0
        self.evictions_mhr = 0
        self.evictions_pht = 0
        self.corrupt_flips = 0
        self.corrupt_losses = 0
        self.corrupt_detected = 0

    def _key(self, block: int) -> int:
        """Table index for ``block``: the block itself, or its macroblock."""
        if self._macro is None:
            return block
        return block // self._macro

    # ------------------------------------------------------------------
    # the fused hot path (flat layout)
    # ------------------------------------------------------------------

    def observe_word(self, block: int, word: int) -> int:
        """Predict, score, and train on one packed ``<sender, type>`` word.

        The flat layout's fused equivalent of :meth:`observe`: ``word``
        is the 16-bit :func:`~repro.core.tuples.pack` encoding of the
        observed tuple, and the return value is the packed prediction
        Cosmos made for it (``-1`` when it declined to predict).  All
        statistics counters update exactly as :meth:`observe` would.
        """
        if self._macro is not None:
            block //= self._macro
        mht = self._mht
        hist = mht.get(block)
        if hist is None:
            self.no_prediction += 1
            mht[block] = (1 << TUPLE_BITS) | word
            if self._capacity is not None and len(mht) > self._capacity:
                # Hardware-bounded table: evict the least recently used
                # block's history (and its patterns) wholesale.
                victim = next(iter(mht))
                del mht[victim]
                self._phts.pop(victim, None)
                self.capacity_evictions += 1
            elif self._bounded:
                self._bound_mhr_insert(block)
            return -1
        if self._capacity is not None or self._lru_mhr:
            del mht[block]  # re-inserted below == move to LRU tail
        elif self._mhr_clock is not None:
            self._mhr_clock.touch(block)
        predicted = -1
        full_at = self._full_at
        if hist >= full_at:
            pht = self._phts.get(block)
            if pht is None:
                # PHTs are allocated lazily: a block whose reference count
                # never exceeds the MHR depth never gets one (Table 7).
                pht = self._phts[block] = {}
            entry = pht.get(hist)
            if entry is None:
                self.no_prediction += 1
                pht[hist] = [word, 0]
                if self._bounded:
                    self._bound_pht_insert(block, hist)
            else:
                stored = entry[0]
                counter = entry[1]
                confidence = self._confidence
                if confidence == 0 or counter >= confidence:
                    predicted = stored
                    self.predictions += 1
                    if stored == word:
                        self.hits += 1
                else:
                    self.no_prediction += 1
                # Single-sided saturating noise filter (Section 3.6).
                if stored == word:
                    if counter < self._max_count:
                        entry[1] = counter + 1
                elif counter > 0:
                    entry[1] = counter - 1
                else:
                    entry[0] = word
                if self._pht_cap:
                    self._touch_pht(block, hist)
            hist = full_at | (((hist << TUPLE_BITS) | word) & (full_at - 1))
        else:
            self.no_prediction += 1
            hist = (hist << TUPLE_BITS) | word
        mht[block] = hist
        return predicted

    # ------------------------------------------------------------------
    # capacity bounding (mhr_capacity / pht_capacity; core/eviction.py)
    # ------------------------------------------------------------------
    #
    # Both layouts call the same helpers in the same order with the same
    # integer keys, so their eviction decisions are identical -- the
    # property the differential suite pins.  Live PHT totals are kept
    # incrementally (O(1) accounting even while thrashing), and peaks
    # are noted just before any removal, the only moments a table can
    # shrink, so ``peak_*_entries`` stays exact without per-observation
    # bookkeeping.

    def _note_peaks(self) -> None:
        if len(self._mht) > self._peak_mhr:
            self._peak_mhr = len(self._mht)
        if self._pht_total > self._peak_pht:
            self._peak_pht = self._pht_total

    def _pht_words(self, table):
        """The pattern-word keys of one block's PHT, either layout."""
        return table if self._flat else table._entries

    def _bound_mhr_insert(self, block: int) -> None:
        """Track a just-inserted MHR entry; evict if over capacity."""
        clock = self._mhr_clock
        if clock is not None:
            clock.touch(block)
        if self._mhr_cap and len(self._mht) > self._mhr_cap:
            self._evict_mhr()

    def _bound_pht_insert(self, block: int, pattern: int) -> None:
        """Track a just-inserted PHT entry; evict if over capacity."""
        self._pht_total += 1
        pht_cap = self._pht_cap
        if not pht_cap:
            return
        key = (block << self._pkey_shift) | pattern
        lru = self._pht_lru
        if lru is not None:
            lru[key] = None
        else:
            self._pht_clock.touch(key)
        if self._pht_total > pht_cap:
            self._evict_pht()

    def _touch_pht(self, block: int, pattern: int) -> None:
        """Record a use of an existing PHT entry (bounded PHT only)."""
        key = (block << self._pkey_shift) | pattern
        lru = self._pht_lru
        if lru is not None:
            del lru[key]  # re-inserted below == move to LRU tail
            lru[key] = None
        else:
            self._pht_clock.touch(key)

    def _evict_mhr(self) -> None:
        """Evict one block's MHR -- and, wholesale, its PHT."""
        self._note_peaks()
        mht = self._mht
        clock = self._mhr_clock
        if clock is not None:
            victim = clock.victim()
            del mht[victim]
        elif self._flat:
            victim = next(iter(mht))
            del mht[victim]
        else:
            victim, _ = mht.popitem(last=False)
        dropped = self._phts.pop(victim, None)
        if dropped is not None:
            count = len(dropped)
            self._pht_total -= count
            self.evictions_pht += count
            if self._pht_cap:
                base = victim << self._pkey_shift
                lru = self._pht_lru
                if lru is not None:
                    for pword in self._pht_words(dropped):
                        lru.pop(base | pword, None)
                else:
                    for pword in self._pht_words(dropped):
                        self._pht_clock.discard(base | pword)
        self.evictions_mhr += 1

    def _evict_pht(self) -> None:
        """Evict one (block, pattern) entry from the bounded PHT."""
        self._note_peaks()
        lru = self._pht_lru
        if lru is not None:
            key = next(iter(lru))
            del lru[key]
        else:
            key = self._pht_clock.victim()
        shift = self._pkey_shift
        block = key >> shift
        pword = key & ((1 << shift) - 1)
        table = self._phts[block]
        entries = self._pht_words(table)
        del entries[pword]
        if not entries:
            del self._phts[block]
        self._pht_total -= 1
        self.evictions_pht += 1

    def _discard_tracking(self, block: int, dropped) -> None:
        """Unbook a block removed outside eviction (forget, corruption)."""
        self._note_peaks()
        clock = self._mhr_clock
        if clock is not None:
            clock.discard(block)
        if dropped is not None:
            self._pht_total -= len(dropped)
            if self._pht_cap:
                base = block << self._pkey_shift
                lru = self._pht_lru
                if lru is not None:
                    for pword in self._pht_words(dropped):
                        lru.pop(base | pword, None)
                else:
                    for pword in self._pht_words(dropped):
                        self._pht_clock.discard(base | pword)

    def enforce_capacity(self) -> int:
        """Evict until within the configured capacities; count evicted.

        Restoring a snapshot does not evict (round-trips must be exact),
        so state captured under a larger -- or no -- budget can leave the
        tables oversized.  ``repro-serve`` workers call this after a
        warm restore to re-enforce the current budget on old checkpoints.
        """
        before = self.evictions_mhr + self.evictions_pht
        if self._mhr_cap:
            while len(self._mht) > self._mhr_cap:
                self._evict_mhr()
        if self._pht_cap:
            while self._pht_total > self._pht_cap:
                self._evict_pht()
        return self.evictions_mhr + self.evictions_pht - before

    # ------------------------------------------------------------------
    # the two paper operations
    # ------------------------------------------------------------------

    def predict(self, block: int) -> Optional[MessageTuple]:
        """Predict the next ``<sender, type>`` for ``block`` (or ``None``)."""
        block = self._key(block)
        if self._flat:
            hist = self._mht.get(block)
            if hist is None or hist < self._full_at:
                return None
            pht = self._phts.get(block)
            if pht is None:
                return None
            entry = pht.get(hist)
            if entry is None:
                return None
            if self._confidence and entry[1] < self._confidence:
                return None
            return tuple_of_word(entry[0])
        mhr = self._mht.get(block)
        if mhr is None:
            return None
        if not mhr.validate():
            # Parity caught a flipped history bit: the register contents
            # are untrustworthy, so drop them and relearn.  The block's
            # PHT survives -- its patterns were trained from pre-flip
            # history and stay as good as any learned knowledge.
            self.corrupt_detected += 1
            self._mht.pop(block, None)
            if self._bounded:
                # The block's PHT survives a history drop, so only the
                # MHR-side tracking is unbooked.
                self._note_peaks()
                if self._mhr_clock is not None:
                    self._mhr_clock.discard(block)
            return None
        pattern = mhr.pattern()
        if pattern is None:
            return None
        pht = self._phts.get(block)
        if pht is None:
            return None
        entry = pht.entry(pattern)
        if entry is not None and not entry.valid:
            # Flipped prediction: drop the single entry and relearn.
            self.corrupt_detected += 1
            pht.drop(pattern)
            if self._bounded:
                self._note_peaks()
                self._pht_total -= 1
                key = (block << self._pkey_shift) | pattern
                if self._pht_lru is not None:
                    self._pht_lru.pop(key, None)
                elif self._pht_clock is not None:
                    self._pht_clock.discard(key)
            return None
        if self._confidence == 0:
            return pht.predict(pattern)
        found = pht.predict_with_confidence(pattern)
        if found is None:
            return None
        prediction, counter = found
        return prediction if counter >= self._confidence else None

    def update(self, block: int, actual: MessageTuple) -> None:
        """Train on the reception of ``actual`` for ``block``."""
        if self._flat:
            word = pack(actual)
            block = self._key(block)
            mht = self._mht
            hist = mht.get(block)
            if hist is None:
                mht[block] = (1 << TUPLE_BITS) | word
                if (
                    self._capacity is not None
                    and len(mht) > self._capacity
                ):
                    victim = next(iter(mht))
                    del mht[victim]
                    self._phts.pop(victim, None)
                    self.capacity_evictions += 1
                elif self._bounded:
                    self._bound_mhr_insert(block)
                return
            if self._capacity is not None or self._lru_mhr:
                del mht[block]
            elif self._mhr_clock is not None:
                self._mhr_clock.touch(block)
            full_at = self._full_at
            if hist >= full_at:
                pht = self._phts.get(block)
                if pht is None:
                    pht = self._phts[block] = {}
                entry = pht.get(hist)
                if entry is None:
                    pht[hist] = [word, 0]
                    if self._bounded:
                        self._bound_pht_insert(block, hist)
                else:
                    stored = entry[0]
                    counter = entry[1]
                    if stored == word:
                        if counter < self._max_count:
                            entry[1] = counter + 1
                    elif counter > 0:
                        entry[1] = counter - 1
                    else:
                        entry[0] = word
                    if self._pht_cap:
                        self._touch_pht(block, hist)
                hist = full_at | (
                    ((hist << TUPLE_BITS) | word) & (full_at - 1)
                )
            else:
                hist = (hist << TUPLE_BITS) | word
            mht[block] = hist
            return
        block = self._key(block)
        mhr = self._mht.get(block)
        if mhr is None:
            mhr = ParityMessageHistoryRegister(self.config.depth)
            self._mht[block] = mhr
            if self._capacity is not None and len(self._mht) > self._capacity:
                victim, _ = self._mht.popitem(last=False)
                self._phts.pop(victim, None)
                self.capacity_evictions += 1
            elif self._bounded:
                self._bound_mhr_insert(block)
        elif self._capacity is not None or self._lru_mhr:
            self._mht.move_to_end(block)
        elif self._mhr_clock is not None:
            self._mhr_clock.touch(block)
        pattern = mhr.pattern()
        if pattern is not None:
            pht = self._phts.get(block)
            if pht is None:
                pht = PatternHistoryTable(
                    self.config.filter_max_count, entry_cls=ParityPHTEntry
                )
                self._phts[block] = pht
            if self._bounded:
                inserted = pattern not in pht
                pht.train(pattern, actual)
                if inserted:
                    self._bound_pht_insert(block, pattern)
                elif self._pht_cap:
                    self._touch_pht(block, pattern)
            else:
                pht.train(pattern, actual)
        mhr.shift(actual)

    def forget(self, block: int) -> None:
        """Discard all history for ``block``.

        Models Section 3.7's caveat: an implementation that merges the
        first-level table with cache-block state loses the block's
        history when the block is replaced.  The replacement study
        (``repro.experiments.replacement``) calls this on every eviction
        to measure what that merging costs.
        """
        key = self._key(block)
        self._mht.pop(key, None)
        dropped = self._phts.pop(key, None)
        if self._bounded:
            self._discard_tracking(key, dropped)

    def _inject_corruption(self) -> None:
        """Maybe corrupt this module's SRAM before the next use.

        Drawn once per observation: soft-error arrival is proportional
        to time, and observations are this predictor's clock.  Victims
        (entry, slot/pattern, bit) are chosen uniformly from live state,
        so a bigger table absorbs proportionally more of the flux --
        matching how real SRAM error rates scale with capacity.
        """
        injector = self._corruption
        if not self._mht:
            return
        if injector.draw_loss():
            victim = injector.choose(list(self._mht))
            self._mht.pop(victim, None)
            dropped = self._phts.pop(victim, None)
            if self._bounded:
                self._discard_tracking(victim, dropped)
            self.corrupt_losses += 1
            injector.injected_losses += 1
        if not self._mht:
            return
        if injector.draw_flip():
            target = injector.choose(list(self._mht))
            mhr = self._mht[target]
            pht = self._phts.get(target)
            # Choose uniformly among the block's stored tuples: each MHR
            # slot and each PHT entry's prediction is one 16-bit word.
            slots = len(mhr)
            entries = (
                [pattern for pattern, _ in pht.items()] if pht else []
            )
            total = slots + len(entries)
            if total == 0:
                return
            pick = injector.choose(range(total))
            bit = injector.flip_bit()
            if pick < slots:
                mhr.corrupt_slot(pick, bit)
            else:
                pht.entry(entries[pick - slots]).corrupt(bit)
            self.corrupt_flips += 1
            injector.injected_flips += 1

    def observe(self, block: int, actual: MessageTuple) -> Observation:
        """Predict, score against ``actual``, then train.  One message."""
        if self._flat:
            predicted = self.observe_word(block, pack(actual))
            return Observation(
                block=block,
                predicted=(
                    tuple_of_word(predicted) if predicted >= 0 else None
                ),
                actual=actual,
            )
        self._inject_corruption()
        predicted = self.predict(block)
        if predicted is None:
            self.no_prediction += 1
        else:
            self.predictions += 1
            if predicted == actual:
                self.hits += 1
        self.update(block, actual)
        return Observation(block=block, predicted=predicted, actual=actual)

    # ------------------------------------------------------------------
    # introspection (memory accounting, analysis)
    # ------------------------------------------------------------------

    @property
    def mhr_entries(self) -> int:
        """Blocks referenced at least once (Table 7's MHR entry count)."""
        return len(self._mht)

    @property
    def pht_entries(self) -> int:
        """Total *live* pattern entries across all blocks (Table 7's
        numerator).  Bounded predictors keep the total incrementally, so
        the read is O(1) even while eviction is churning the tables."""
        if self._bounded:
            return self._pht_total
        return sum(len(pht) for pht in self._phts.values())

    @property
    def peak_mhr_entries(self) -> int:
        """High-water MHR entry count (== live unless entries were shed)."""
        live = len(self._mht)
        return live if live > self._peak_mhr else self._peak_mhr

    @property
    def peak_pht_entries(self) -> int:
        """High-water PHT entry count (== live unless entries were shed)."""
        live = self.pht_entries
        return live if live > self._peak_pht else self._peak_pht

    def pht_of(self, block: int) -> Optional[PatternHistoryTable]:
        """The block's PHT: the live table (object layout) or a read-only
        materialized view of the flat state (mutations do not write back).
        """
        table = self._phts.get(self._key(block))
        if table is None or not self._flat:
            return table
        view = PatternHistoryTable(self.config.filter_max_count)
        for pattern, (prediction, counter) in table.items():
            view.train(pattern, tuple_of_word(prediction))
            view.entry(pattern).counter = counter
        return view

    def mhr_of(self, block: int) -> Optional[MessageHistoryRegister]:
        """The block's MHR: the live register (object layout) or a
        read-only materialized view of the flat state.
        """
        found = self._mht.get(self._key(block))
        if found is None or not self._flat:
            return found
        view = MessageHistoryRegister(self.config.depth)
        view._word = found
        return view

    def pht_sizes(self) -> Tuple[int, ...]:
        """Per-block PHT entry counts (for preallocation analysis)."""
        return tuple(len(pht) for pht in self._phts.values())

    def blocks(self) -> Tuple[int, ...]:
        return tuple(self._mht)

    @property
    def accuracy(self) -> float:
        """Hits over *all* references (no-predictions count as misses)."""
        total = self.predictions + self.no_prediction
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    _STAT_FIELDS = (
        "predictions",
        "hits",
        "no_prediction",
        "capacity_evictions",
        "evictions_mhr",
        "evictions_pht",
        "corrupt_flips",
        "corrupt_losses",
        "corrupt_detected",
    )

    def snapshot_state(self) -> dict:
        """Capture MHT/PHT contents and statistics as plain data.

        MHT order is preserved (it *is* the LRU order capacity eviction
        walks), histories/patterns/predictions are stored in the
        layout-independent tuple form, and parity bits ride along when
        the parity-tracking structures are in use -- so a restored
        predictor behaves bit-identically, including which corrupted
        entries are still latent.
        """
        mht = []
        phts = {}
        if self._flat:
            for block, word in self._mht.items():
                mht.append({"block": block, "history": unpack_pattern(word)})
            for block, table in self._phts.items():
                phts[block] = [
                    {
                        "pattern": unpack_pattern(pattern),
                        "prediction": tuple_of_word(prediction),
                        "counter": counter,
                    }
                    for pattern, (prediction, counter) in table.items()
                ]
        else:
            for block, mhr in self._mht.items():
                record = {"block": block, "history": mhr.snapshot()}
                record["parity"] = mhr._parity
                mht.append(record)
            for block, pht in self._phts.items():
                entries = []
                for pattern, entry in pht.items():
                    entries.append(
                        {
                            "pattern": unpack_pattern(pattern),
                            "prediction": entry.prediction,
                            "counter": entry.counter,
                            "parity": entry.parity,
                        }
                    )
                phts[block] = entries
        state = {
            "mht": mht,
            "phts": phts,
            "stats": {
                name: getattr(self, name) for name in self._STAT_FIELDS
            },
        }
        if self._bounded:
            # Recency is implicit in MHT order for LRU; clock/decay ring
            # state (stale slots included) and the cross-block PHT order
            # ride along so a restored predictor makes byte-identical
            # eviction decisions.
            eviction = {
                "pht_total": self._pht_total,
                "peak_mhr": self._peak_mhr,
                "peak_pht": self._peak_pht,
            }
            if self._mhr_clock is not None:
                eviction["mhr"] = self._mhr_clock.snapshot()
            if self._pht_lru is not None:
                eviction["pht"] = list(self._pht_lru)
            elif self._pht_clock is not None:
                eviction["pht"] = self._pht_clock.snapshot()
            state["eviction"] = eviction
        if self._corruption is not None:
            state["corruption"] = self._corruption.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`snapshot_state`.

        The predictor must have been constructed with the same config
        and the same corruption arming as the captured one.
        """
        if self._flat:
            self._mht = {
                record["block"]: pack_pattern(record["history"])
                for record in state["mht"]
            }
            self._phts = {
                block: {
                    pack_pattern(item["pattern"]): [
                        pack(item["prediction"]),
                        item["counter"],
                    ]
                    for item in entries
                }
                for block, entries in state["phts"].items()
            }
        else:
            self._mht = OrderedDict()
            for record in state["mht"]:
                mhr = ParityMessageHistoryRegister(self.config.depth)
                for tup in record["history"]:
                    mhr.shift(tup)
                if "parity" in record:
                    # Replay-computed parity is always consistent; restore
                    # the captured bits so latent corruption stays latent.
                    mhr._parity = tuple(record["parity"])
                self._mht[record["block"]] = mhr
            self._phts = {}
            for block, entries in state["phts"].items():
                pht = PatternHistoryTable(
                    self.config.filter_max_count, entry_cls=ParityPHTEntry
                )
                for item in entries:
                    entry = ParityPHTEntry(item["prediction"])
                    entry.counter = item["counter"]
                    if "parity" in item:
                        entry.parity = item["parity"]
                    pht._entries[pattern_word(item["pattern"])] = entry
                self._phts[block] = pht
        for name in self._STAT_FIELDS:
            # Snapshots predate some counters (evictions_* landed after
            # capacity_evictions); absent ones restore to zero.
            setattr(self, name, state["stats"].get(name, 0))
        if self._bounded:
            self._restore_eviction(state.get("eviction"))
        if self._corruption is not None and "corruption" in state:
            self._corruption.restore_state(state["corruption"])

    def _restore_eviction(self, eviction: Optional[dict]) -> None:
        """Rebuild eviction bookkeeping after the tables are restored.

        With recorded state (a bounded predictor's snapshot) the order
        structures round-trip exactly.  Without it (a snapshot captured
        unbounded, or before capacities existed) the tracking is seeded
        from table order -- and possibly over budget: restore never
        evicts, so callers that need the budget re-applied follow up
        with :meth:`enforce_capacity`.
        """
        self._pht_total = sum(len(pht) for pht in self._phts.values())
        if eviction is None:
            self._peak_mhr = 0
            self._peak_pht = 0
            if self._mhr_clock is not None:
                self._mhr_clock.seed(self._mht)
            if self._pht_lru is not None:
                self._pht_lru = {
                    (block << self._pkey_shift) | pword: None
                    for block, table in self._phts.items()
                    for pword in self._pht_words(table)
                }
            elif self._pht_clock is not None:
                self._pht_clock.seed(
                    (block << self._pkey_shift) | pword
                    for block, table in self._phts.items()
                    for pword in self._pht_words(table)
                )
            return
        self._peak_mhr = eviction["peak_mhr"]
        self._peak_pht = eviction["peak_pht"]
        if self._mhr_clock is not None:
            if "mhr" in eviction:
                self._mhr_clock.restore(eviction["mhr"])
            else:
                self._mhr_clock.seed(self._mht)
        if self._pht_lru is not None:
            recorded = eviction.get("pht")
            if recorded is not None and not isinstance(recorded, dict):
                self._pht_lru = dict.fromkeys(recorded)
            else:
                self._pht_lru = {
                    (block << self._pkey_shift) | pword: None
                    for block, table in self._phts.items()
                    for pword in self._pht_words(table)
                }
        elif self._pht_clock is not None:
            recorded = eviction.get("pht")
            if isinstance(recorded, dict):
                self._pht_clock.restore(recorded)
            else:
                self._pht_clock.seed(
                    (block << self._pkey_shift) | pword
                    for block, table in self._phts.items()
                    for pword in self._pht_words(table)
                )
