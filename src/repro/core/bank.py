"""A machine-wide bank of Cosmos predictors.

The paper allocates one Cosmos predictor beside every cache module and
every directory module.  :class:`PredictorBank` manages that collection
and routes trace events to the right predictor.  ``share_roles=True`` is
an ablation that merges each node's two predictors into one (cheaper, but
cache- and directory-side patterns then alias in one table).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..protocol.messages import Role
from ..trace.events import TraceEvent
from .config import CosmosConfig
from .predictor import CosmosPredictor, Observation


class PredictorBank:
    """One predictor per (node, role) -- or per node when roles are shared."""

    def __init__(
        self,
        config: Optional[CosmosConfig] = None,
        share_roles: bool = False,
    ) -> None:
        self.config = config if config is not None else CosmosConfig()
        self.share_roles = share_roles
        self._predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}

    def _key(self, node: int, role: Role) -> Tuple[int, Role]:
        if self.share_roles:
            return (node, Role.CACHE)  # canonical key for the merged bank
        return (node, role)

    def predictor_for(self, node: int, role: Role) -> CosmosPredictor:
        """The predictor attached to the given module (created on demand)."""
        key = self._key(node, role)
        predictor = self._predictors.get(key)
        if predictor is None:
            predictor = CosmosPredictor(self.config)
            self._predictors[key] = predictor
        return predictor

    def observe(self, event: TraceEvent) -> Observation:
        """Route one trace event to its module's predictor."""
        predictor = self.predictor_for(event.node, event.role)
        return predictor.observe(event.block, event.tuple)

    def __iter__(self) -> Iterator[Tuple[Tuple[int, Role], CosmosPredictor]]:
        return iter(self._predictors.items())

    def __len__(self) -> int:
        return len(self._predictors)

    @property
    def mhr_entries(self) -> int:
        """Machine-wide MHR entry count (Table 7 denominator)."""
        return sum(p.mhr_entries for p in self._predictors.values())

    @property
    def pht_entries(self) -> int:
        """Machine-wide PHT entry count (Table 7 numerator)."""
        return sum(p.pht_entries for p in self._predictors.values())
