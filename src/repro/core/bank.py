"""A machine-wide bank of Cosmos predictors.

The paper allocates one Cosmos predictor beside every cache module and
every directory module.  :class:`PredictorBank` manages that collection
and routes trace events to the right predictor.  ``share_roles=True`` is
an ablation that merges each node's two predictors into one (cheaper, but
cache- and directory-side patterns then alias in one table).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Iterator, Optional, Tuple

from ..errors import CheckpointError
from ..protocol.messages import Role
from ..trace.events import TraceEvent
from .config import CosmosConfig
from .corruption import CorruptionInjector, CorruptionProfile
from .predictor import CosmosPredictor, Observation


class PredictorBank:
    """One predictor per (node, role) -- or per node when roles are shared."""

    def __init__(
        self,
        config: Optional[CosmosConfig] = None,
        share_roles: bool = False,
        corruption: Optional[CorruptionProfile] = None,
        corruption_seed: int = 0,
    ) -> None:
        self.config = config if config is not None else CosmosConfig()
        self.share_roles = share_roles
        self.corruption = (
            corruption if corruption is not None and corruption.is_active
            else None
        )
        self.corruption_seed = corruption_seed
        self._predictors: Dict[Tuple[int, Role], CosmosPredictor] = {}

    def _key(self, node: int, role: Role) -> Tuple[int, Role]:
        if self.share_roles:
            return (node, Role.CACHE)  # canonical key for the merged bank
        return (node, role)

    def _injector_for(self, key: Tuple[int, Role]) -> CorruptionInjector:
        """One deterministic, independent error stream per module.

        The seed mixes the bank seed with the module identity (not the
        creation order), so a module's error sequence is stable no
        matter which modules a trace happens to touch first.
        """
        node, role = key
        seed = (
            self.corruption_seed * 1_000_003
            + node * 16
            + (0 if role is Role.CACHE else 1)
        )
        return CorruptionInjector(self.corruption, seed)

    def predictor_for(self, node: int, role: Role) -> CosmosPredictor:
        """The predictor attached to the given module (created on demand)."""
        key = self._key(node, role)
        predictor = self._predictors.get(key)
        if predictor is None:
            injector = (
                self._injector_for(key)
                if self.corruption is not None
                else None
            )
            predictor = CosmosPredictor(self.config, corruption=injector)
            self._predictors[key] = predictor
        return predictor

    def observe(self, event: TraceEvent) -> Observation:
        """Route one trace event to its module's predictor."""
        predictor = self.predictor_for(event.node, event.role)
        return predictor.observe(event.block, event.tuple)

    def __iter__(self) -> Iterator[Tuple[Tuple[int, Role], CosmosPredictor]]:
        return iter(self._predictors.items())

    def __len__(self) -> int:
        return len(self._predictors)

    @property
    def mhr_entries(self) -> int:
        """Machine-wide MHR entry count (Table 7 denominator)."""
        return sum(p.mhr_entries for p in self._predictors.values())

    @property
    def pht_entries(self) -> int:
        """Machine-wide PHT entry count (Table 7 numerator)."""
        return sum(p.pht_entries for p in self._predictors.values())

    @property
    def peak_mhr_entries(self) -> int:
        """Machine-wide high-water MHR entry count."""
        return sum(p.peak_mhr_entries for p in self._predictors.values())

    @property
    def peak_pht_entries(self) -> int:
        """Machine-wide high-water PHT entry count."""
        return sum(p.peak_pht_entries for p in self._predictors.values())

    @property
    def evictions_mhr(self) -> int:
        """Machine-wide capacity evictions of MHR entries."""
        return sum(p.evictions_mhr for p in self._predictors.values())

    @property
    def evictions_pht(self) -> int:
        """Machine-wide capacity evictions of PHT entries."""
        return sum(p.evictions_pht for p in self._predictors.values())

    @property
    def corrupt_injected(self) -> int:
        """Machine-wide injected corruption events (flips + losses)."""
        return sum(
            p.corrupt_flips + p.corrupt_losses
            for p in self._predictors.values()
        )

    @property
    def corrupt_detected(self) -> int:
        """Machine-wide parity-detected (and dropped) corrupt entries."""
        return sum(p.corrupt_detected for p in self._predictors.values())

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def _fingerprint(self) -> dict:
        """The construction parameters a snapshot is only valid under.

        Restoring predictor state into a bank built differently would
        not fail loudly -- it would silently mis-predict (wrong depth /
        capacity semantics) or mis-route (different role sharing), so
        the fingerprint travels with the snapshot and is enforced on
        restore.
        """
        return {
            "config": asdict(self.config),
            "share_roles": self.share_roles,
            "corruption": (
                asdict(self.corruption)
                if self.corruption is not None
                else None
            ),
            "corruption_seed": self.corruption_seed,
        }

    def snapshot_state(self) -> dict:
        """Capture every predictor in the bank as plain data."""
        return {
            "fingerprint": self._fingerprint(),
            "predictors": [
                {
                    "node": node,
                    "role": role.value,
                    "state": predictor.snapshot_state(),
                }
                for (node, role), predictor in self._predictors.items()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a bank captured by :meth:`snapshot_state`.

        The bank must have been constructed with the same config,
        role-sharing, and corruption arming as the captured one;
        a mismatch raises :class:`CheckpointError` naming the differing
        fields instead of silently resuming with wrong semantics.
        (Pre-fingerprint snapshots restore unchecked.)
        """
        recorded = state.get("fingerprint")
        if recorded is not None:
            current = self._fingerprint()
            mismatched = [
                field
                for field in current
                if field in recorded and recorded[field] != current[field]
            ]
            if mismatched:
                detail = "; ".join(
                    f"{field}: snapshot {recorded[field]!r} != "
                    f"bank {current[field]!r}"
                    for field in mismatched
                )
                raise CheckpointError(
                    f"predictor-bank snapshot was captured under a "
                    f"different configuration ({detail}); rebuild the "
                    f"bank with the captured parameters before restoring"
                )
        self._predictors = {}
        for record in state["predictors"]:
            predictor = self.predictor_for(
                record["node"], Role(record["role"])
            )
            predictor.restore_state(record["state"])
