"""The Cosmos coherence-message predictor (the paper's contribution)."""

from .bank import PredictorBank
from .config import CosmosConfig
from .evaluation import (
    ArcStats,
    EvaluationResult,
    IterationCheckpoint,
    Tally,
    evaluate_trace,
)
from .memory import MemoryOverhead, measure_overhead
from .mhr import MessageHistoryRegister
from .pht import PatternHistoryTable, PHTEntry
from .predictor import CosmosPredictor, Observation
from .tuples import MessageTuple, format_tuple, pack, unpack

__all__ = [
    "ArcStats",
    "CosmosConfig",
    "CosmosPredictor",
    "EvaluationResult",
    "IterationCheckpoint",
    "MemoryOverhead",
    "MessageHistoryRegister",
    "MessageTuple",
    "Observation",
    "PHTEntry",
    "PatternHistoryTable",
    "PredictorBank",
    "Tally",
    "evaluate_trace",
    "format_tuple",
    "measure_overhead",
    "pack",
    "unpack",
]
