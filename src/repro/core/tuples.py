"""The ``<sender, message-type>`` tuple Cosmos histories are made of.

Two representations coexist:

* a plain ``(sender, MessageType)`` pair -- the readable boundary format
  every public API speaks, and
* the compact 16-bit hardware encoding the paper's Table 7 assumes
  (12 bits of processor number, 4 bits of message type), which the hot
  paths use exclusively: the evaluation loop touches millions of tuples,
  and hashing a small int is several times cheaper than hashing a
  ``(int, IntEnum)`` pair.

Whole MHR histories are likewise packed into a single *pattern word*: the
depth-``d`` history ``(t_0 .. t_{d-1})`` (oldest first) becomes
``1 << 16*d | pack(t_0) << 16*(d-1) | ... | pack(t_{d-1})``.  The leading
marker bit makes the word self-describing (its bit length encodes how
many tuples it holds), lets a shift register renormalize with two int
operations, and keeps the all-zero history distinct from the empty one.
Pattern words are what :class:`~repro.core.pht.PatternHistoryTable` keys
on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..errors import ConfigError
from ..protocol.messages import MessageType

#: A coherence-message identity as Cosmos sees it.
MessageTuple = Tuple[int, MessageType]

#: Bit widths of the packed encoding (Table 7 footnote).
SENDER_BITS = 12
TYPE_BITS = 4

#: Bits of one packed tuple (= one pattern-word field).
TUPLE_BITS = SENDER_BITS + TYPE_BITS

_MAX_SENDER = (1 << SENDER_BITS) - 1
_TYPE_MASK = (1 << TYPE_BITS) - 1
_WORD_LIMIT = 1 << TUPLE_BITS

#: Interning table: packed word -> its canonical ``(sender, MessageType)``
#: tuple.  Misses build (and memoize) the tuple, so unpacking a stored
#: prediction on a cold path is one dict lookup in the steady state.
_TUPLE_OF_WORD: Dict[int, MessageTuple] = {}


def pack(tup: MessageTuple) -> int:
    """Pack a tuple into its 16-bit hardware encoding."""
    sender, mtype = tup
    if not 0 <= sender <= _MAX_SENDER:
        raise ConfigError(
            f"sender {sender} does not fit in {SENDER_BITS} bits"
        )
    return (sender << TYPE_BITS) | int(mtype)


def unpack(word: int) -> MessageTuple:
    """Unpack a 16-bit encoding back into a tuple."""
    if word < 0 or word >= _WORD_LIMIT:
        raise ConfigError(f"word {word} is not a 16-bit tuple encoding")
    return (word >> TYPE_BITS, MessageType(word & _TYPE_MASK))


def tuple_of_word(word: int) -> MessageTuple:
    """:func:`unpack` through the interning table (cheap when warm)."""
    tup = _TUPLE_OF_WORD.get(word)
    if tup is None:
        tup = _TUPLE_OF_WORD[word] = unpack(word)
    return tup


# ---------------------------------------------------------------------------
# pattern words: a whole MHR history packed into one int
# ---------------------------------------------------------------------------


def pack_pattern(tuples: Iterable[MessageTuple]) -> int:
    """Pack a tuple sequence (oldest first) into a marker-led pattern word."""
    word = 1
    for tup in tuples:
        word = (word << TUPLE_BITS) | pack(tup)
    return word


def pattern_length(word: int) -> int:
    """How many tuples a pattern word holds."""
    if word < 1:
        raise ConfigError(f"{word} is not a pattern word (marker missing)")
    length, rem = divmod(word.bit_length() - 1, TUPLE_BITS)
    if rem:
        length += 1  # marker sits inside the top field's sender bits
    return length


def unpack_pattern(word: int) -> Tuple[MessageTuple, ...]:
    """Unpack a marker-led pattern word back into tuples, oldest first."""
    length = pattern_length(word)
    return tuple(
        tuple_of_word(
            (word >> (TUPLE_BITS * (length - 1 - slot))) & (_WORD_LIMIT - 1)
        )
        for slot in range(length)
    )


def format_tuple(tup: MessageTuple) -> str:
    """Human-readable ``<P<n>, type>`` rendering, as the paper prints them."""
    sender, mtype = tup
    return f"<P{sender}, {mtype}>"
