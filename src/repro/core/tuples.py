"""The ``<sender, message-type>`` tuple Cosmos histories are made of.

We represent a tuple as a plain ``(sender, MessageType)`` pair for speed
(the evaluation loop touches millions of them) and provide an explicit
codec to/from the compact 2-byte encoding the paper's Table 7 assumes
(12 bits of processor number, 4 bits of message type).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import ConfigError
from ..protocol.messages import MessageType

#: A coherence-message identity as Cosmos sees it.
MessageTuple = Tuple[int, MessageType]

#: Bit widths of the packed encoding (Table 7 footnote).
SENDER_BITS = 12
TYPE_BITS = 4

_MAX_SENDER = (1 << SENDER_BITS) - 1
_TYPE_MASK = (1 << TYPE_BITS) - 1


def pack(tup: MessageTuple) -> int:
    """Pack a tuple into its 16-bit hardware encoding."""
    sender, mtype = tup
    if not 0 <= sender <= _MAX_SENDER:
        raise ConfigError(
            f"sender {sender} does not fit in {SENDER_BITS} bits"
        )
    return (sender << TYPE_BITS) | int(mtype)


def unpack(word: int) -> MessageTuple:
    """Unpack a 16-bit encoding back into a tuple."""
    if word < 0 or word >= (1 << (SENDER_BITS + TYPE_BITS)):
        raise ConfigError(f"word {word} is not a 16-bit tuple encoding")
    return (word >> TYPE_BITS, MessageType(word & _TYPE_MASK))


def format_tuple(tup: MessageTuple) -> str:
    """Human-readable ``<P<n>, type>`` rendering, as the paper prints them."""
    sender, mtype = tup
    return f"<P{sender}, {mtype}>"
