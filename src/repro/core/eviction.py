"""Eviction-order bookkeeping for capacity-bounded predictor tables.

A hardware Cosmos cannot grow its tables without bound (ROADMAP item 2);
when :class:`~repro.core.config.CosmosConfig` sets ``mhr_capacity`` /
``pht_capacity``, the predictor consults one of three replacement
policies to pick victims:

* ``lru`` -- exact least-recently-used.  For the MHR table this costs
  nothing extra: both layouts already keep recency as the table's own
  insertion order (re-inserting a key moves it to the end), so only the
  cross-block PHT order needs a side dict.
* ``clock`` -- the classic second-chance approximation: a reference bit
  per entry, a hand sweeping a ring.  A touched entry survives one
  sweep; an untouched one is evicted.
* ``decay`` -- clock generalized to a small saturating use counter
  (:data:`DECAY_MAX`): each touch ages the entry up, each hand pass
  decays it down, and only fully-decayed entries are evicted.  Hot
  entries therefore survive several sweeps of cold traffic.

:class:`ClockOrder` implements the latter two.  It is shared verbatim by
the flat and object predictor layouts -- both drive it with the same
``touch``/``discard``/``victim`` call sequence on the same integer keys,
which is what makes their eviction decisions provably identical (the
differential suite pins this).

Externally removed keys (corruption losses, ``forget``) are *lazily*
reaped: ``discard`` only drops the use count, and the stale ring slot is
recycled the next time the hand passes it.  ``victim`` therefore runs in
amortized O(1) plus O(ring) worst case when many stale slots pile up.
"""

from __future__ import annotations

from typing import Dict, List

#: Replacement policies a bounded table can be configured with.
EVICTION_POLICIES = ("lru", "clock", "decay")

#: Saturation ceiling of the ``decay`` policy's per-entry use counter.
DECAY_MAX = 3


class ClockOrder:
    """Ring + hand + per-entry use counts for ``clock`` / ``decay``.

    Keys are small ints (a block number, or a packed ``(block, pattern)``
    word); the caller owns the table itself and only delegates the
    replacement *order* here.
    """

    __slots__ = ("_decay", "_ring", "_hand", "_bits")

    def __init__(self, decay: bool = False) -> None:
        self._decay = decay
        self._ring: List[int] = []
        self._hand = 0
        self._bits: Dict[int, int] = {}

    def __len__(self) -> int:
        """Live (non-stale) tracked entries."""
        return len(self._bits)

    def touch(self, key: int) -> None:
        """Record a use of ``key``, inserting it if untracked."""
        bits = self._bits
        found = bits.get(key)
        if found is None:
            bits[key] = 1
            self._ring.append(key)
        elif self._decay:
            if found < DECAY_MAX:
                bits[key] = found + 1
        else:
            bits[key] = 1

    def discard(self, key: int) -> None:
        """Stop tracking ``key`` (removed externally, not evicted)."""
        self._bits.pop(key, None)

    def victim(self) -> int:
        """Choose, untrack, and return the next eviction victim."""
        ring = self._ring
        bits = self._bits
        hand = self._hand
        while True:
            if hand >= len(ring):
                hand = 0
            key = ring[hand]
            count = bits.get(key)
            if count is None:
                # Stale slot left behind by discard(): reap and retry
                # without advancing (the next key slides into this slot).
                ring.pop(hand)
                continue
            if count:
                # Second chance: age the entry down and move on.
                bits[key] = count - 1
                hand += 1
                continue
            ring.pop(hand)
            del bits[key]
            self._hand = hand if hand < len(ring) else 0
            return key

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Ring, hand, and use counts as plain data (checkpoints)."""
        return {
            "ring": list(self._ring),
            "hand": self._hand,
            "bits": [[key, count] for key, count in self._bits.items()],
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot`, stale ring slots included."""
        self._ring = list(state["ring"])
        self._hand = state["hand"]
        self._bits = {key: count for key, count in state["bits"]}

    def seed(self, keys) -> None:
        """Adopt pre-existing ``keys`` with no recorded eviction state.

        Used when a snapshot captured by an unbounded (or pre-capacity)
        predictor is restored into a bounded one: every entry starts
        with one use, hand at the oldest.
        """
        self._ring = list(keys)
        self._hand = 0
        self._bits = {key: 1 for key in self._ring}
