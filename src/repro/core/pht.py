"""Pattern History Table: the second level of Cosmos.

Each MHR owns one PHT.  A PHT maps a history pattern (the MHR contents)
to a predicted next ``<sender, type>`` tuple.  Unlike PAp's two-bit
counters, a Cosmos PHT entry *is* a prediction; an optional single-sided
saturating counter acts as a noise filter (paper Section 3.6): the stored
prediction is replaced only after the counter, which rises with each
confirmation and falls with each misprediction, has been driven back to
zero.  With ``max_count = 0`` every misprediction replaces the prediction
immediately (the paper's "no filter" column in Table 6).

Entries are keyed on marker-led packed pattern words (see
:mod:`repro.core.tuples`) -- the representation
:meth:`~repro.core.mhr.MessageHistoryRegister.pattern` hands out -- so a
lookup hashes one small int.  Every public method also accepts the
readable tuple-of-tuples form and normalizes it, so analysis and test
code can keep writing patterns out literally.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from .tuples import MessageTuple, pack_pattern

#: A PHT index: a packed pattern word, or the tuple sequence it encodes.
Pattern = Union[int, Tuple[MessageTuple, ...]]


def pattern_word(pattern: Pattern) -> int:
    """Normalize a pattern (packed word or tuple sequence) to its word."""
    if type(pattern) is int:
        return pattern
    return pack_pattern(pattern)


class PHTEntry:
    """One pattern's prediction plus its filter counter."""

    __slots__ = ("prediction", "counter")

    def __init__(self, prediction: MessageTuple) -> None:
        self.prediction = prediction
        self.counter = 0

    def update(self, actual: MessageTuple, max_count: int) -> None:
        """Train the entry after observing ``actual`` for its pattern."""
        if actual == self.prediction:
            if self.counter < max_count:
                self.counter += 1
        elif self.counter > 0:
            self.counter -= 1
        else:
            self.prediction = actual

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PHTEntry({self.prediction!r}, counter={self.counter})"


class PatternHistoryTable:
    """Per-block pattern -> prediction table."""

    __slots__ = ("_entries", "_max_count", "_entry_cls")

    def __init__(
        self,
        filter_max_count: int = 0,
        entry_cls: type = PHTEntry,
    ) -> None:
        self._entries: Dict[int, PHTEntry] = {}
        self._max_count = filter_max_count
        # Pluggable so corruption-tolerant runs can use parity-tracking
        # entries (repro.core.corruption) without taxing the normal path.
        self._entry_cls = entry_cls

    def predict(self, pattern: Pattern) -> Optional[MessageTuple]:
        """The prediction stored for ``pattern``, or ``None`` if absent."""
        entry = self._entries.get(pattern_word(pattern))
        return entry.prediction if entry is not None else None

    def predict_with_confidence(
        self, pattern: Pattern
    ) -> Optional[Tuple[MessageTuple, int]]:
        """The prediction and its filter-counter value, or ``None``.

        The counter doubles as a confidence estimate: it counts recent
        consecutive confirmations (up to the filter maximum), so a
        confidence-gated Cosmos can decline to predict until a pattern
        has proved itself.
        """
        entry = self._entries.get(pattern_word(pattern))
        if entry is None:
            return None
        return (entry.prediction, entry.counter)

    def train(self, pattern: Pattern, actual: MessageTuple) -> None:
        """Record that ``actual`` followed ``pattern``."""
        word = pattern_word(pattern)
        entry = self._entries.get(word)
        if entry is None:
            self._entries[word] = self._entry_cls(actual)
        else:
            entry.update(actual, self._max_count)

    def entry(self, pattern: Pattern) -> Optional[PHTEntry]:
        """The live entry object for ``pattern`` (validity checks)."""
        return self._entries.get(pattern_word(pattern))

    def drop(self, pattern: Pattern) -> None:
        """Discard the entry for ``pattern`` (corruption handling)."""
        self._entries.pop(pattern_word(pattern), None)

    def __len__(self) -> int:
        """Number of allocated pattern entries (Table 7 counts these)."""
        return len(self._entries)

    def __contains__(self, pattern: Pattern) -> bool:
        return pattern_word(pattern) in self._entries

    def items(self) -> Iterable[Tuple[int, PHTEntry]]:
        """Iterate ``(pattern word, entry)`` pairs (analysis/debugging)."""
        return self._entries.items()
