"""Message History Register: the first level of Cosmos.

One MHR per cache block holds the last ``depth`` ``<sender, type>``
tuples received at the node for that block, oldest first.  New tuples
are shifted in from the right, exactly as the paper's update step
describes ("left shift the <sender,type> tuple into the MHR").

The register is stored as a single marker-led pattern word (see
:mod:`repro.core.tuples`): shifting is two integer operations and the
PHT index -- :meth:`pattern` -- is the word itself, so the hot path
never hashes tuples.  Tuple views (:meth:`snapshot`) are materialized
on demand for analysis and checkpoint code.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .tuples import TUPLE_BITS, MessageTuple, pack, unpack_pattern


class MessageHistoryRegister:
    """Fixed-depth shift register of message tuples."""

    __slots__ = ("_depth", "_word", "_full_at")

    def __init__(self, depth: int) -> None:
        self._depth = depth
        # Marker-led packed history; 1 is the empty register.
        self._word = 1
        self._full_at = 1 << (TUPLE_BITS * depth)

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def full(self) -> bool:
        """Whether ``depth`` messages have been observed yet."""
        return self._word >= self._full_at

    def shift(self, tup: MessageTuple) -> None:
        """Shift ``tup`` in as the most recent message."""
        self.shift_word(pack(tup))

    def shift_word(self, word: int) -> None:
        """Shift an already-packed 16-bit tuple encoding in."""
        shifted = (self._word << TUPLE_BITS) | word
        if shifted >= self._full_at << TUPLE_BITS:
            # Drop the oldest tuple and re-plant the marker bit.
            shifted = self._full_at | (shifted & (self._full_at - 1))
        self._word = shifted

    def pattern(self) -> Optional[int]:
        """The packed history word used to index the PHT.

        ``None`` until the register has filled: Cosmos cannot index a
        depth-``d`` PHT with fewer than ``d`` observed messages.
        """
        if self._word < self._full_at:
            return None
        return self._word

    @property
    def word(self) -> int:
        """The (possibly partial) marker-led history word."""
        return self._word

    def snapshot(self) -> Tuple[MessageTuple, ...]:
        """Current (possibly partial) contents as tuples, oldest first."""
        return unpack_pattern(self._word)

    def __len__(self) -> int:
        return (self._word.bit_length() - 1) // TUPLE_BITS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MHR(depth={self._depth}, history={self.snapshot()!r})"
