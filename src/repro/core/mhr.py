"""Message History Register: the first level of Cosmos.

One MHR per cache block holds the last ``depth`` ``<sender, type>``
tuples received at the node for that block, oldest first.  New tuples
are shifted in from the right, exactly as the paper's update step
describes ("left shift the <sender,type> tuple into the MHR").
"""

from __future__ import annotations

from typing import Optional, Tuple

from .tuples import MessageTuple


class MessageHistoryRegister:
    """Fixed-depth shift register of message tuples."""

    __slots__ = ("_depth", "_history")

    def __init__(self, depth: int) -> None:
        self._depth = depth
        self._history: Tuple[MessageTuple, ...] = ()

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def full(self) -> bool:
        """Whether ``depth`` messages have been observed yet."""
        return len(self._history) == self._depth

    def shift(self, tup: MessageTuple) -> None:
        """Shift ``tup`` in as the most recent message."""
        if len(self._history) < self._depth:
            self._history = self._history + (tup,)
        else:
            self._history = self._history[1:] + (tup,)

    def pattern(self) -> Optional[Tuple[MessageTuple, ...]]:
        """The history pattern used to index the PHT.

        ``None`` until the register has filled: Cosmos cannot index a
        depth-``d`` PHT with fewer than ``d`` observed messages.
        """
        if not self.full:
            return None
        return self._history

    def snapshot(self) -> Tuple[MessageTuple, ...]:
        """Current (possibly partial) contents, oldest first."""
        return self._history

    def __len__(self) -> int:
        return len(self._history)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MHR(depth={self._depth}, history={self._history!r})"
