"""Configuration of a Cosmos predictor."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .eviction import EVICTION_POLICIES


@dataclass(frozen=True)
class CosmosConfig:
    """Parameters of one Cosmos predictor.

    Attributes:
        depth: number of ``<sender, type>`` tuples held in each Message
            History Register (the paper sweeps 1-4; Table 5).
        filter_max_count: saturating-counter ceiling of the noise filter
            (paper Section 3.6 / Table 6); ``0`` disables filtering, i.e.
            a misprediction immediately replaces the stored prediction.
        tuple_bytes: storage size of one ``<sender, type>`` tuple; the
            paper assumes 2 bytes (12 bits of processor id + 4 bits of
            message type) in Table 7's overhead formula.
        block_bytes: cache-block size used by the overhead formula
            (Table 7 normalizes to 128-byte blocks).
        macroblock_bytes: group predictions for all cache blocks within
            an aligned region of this many bytes into one MHR/PHT pair
            (Section 7 suggests Johnson & Hwu-style macroblocks to cut
            Cosmos' memory).  ``None`` (default) keeps per-block tables.
        mht_capacity: bound the Message History Table to this many MHR
            entries per predictor, evicted LRU together with their PHTs
            (a hardware predictor cannot grow without bound; the paper's
            tables are effectively unbounded because Stache directory
            state is persistent).  ``None`` (default) is unbounded.
        confidence_threshold: emit a prediction only when its filter
            counter has reached this value, trading coverage for the
            precision that speculative actions need (Section 4's
            misprediction costs).  Requires ``filter_max_count >=
            confidence_threshold``; 0 (default) predicts always.
        mhr_capacity: bound the MHR table to this many entries per
            predictor module, evicting per the configured ``eviction``
            policy; an evicted block's PHT goes with it.  ``0`` (the
            default) is unbounded.  Unlike the legacy ``mht_capacity``
            (always whole-bank LRU), this composes with ``pht_capacity``
            and the policy knob, and the predictor keeps live/peak/
            eviction accounting for the memory-frontier studies.
        pht_capacity: bound the *total* pattern entries per predictor
            module (across all blocks), evicting individual
            ``(block, pattern)`` entries per the ``eviction`` policy.
            ``0`` (the default) is unbounded.
        eviction: replacement policy for the bounded tables -- ``lru``
            (exact, default), ``clock`` (second chance), or ``decay``
            (clock with a saturating use counter).  Ignored while both
            capacities are 0.
    """

    depth: int = 1
    filter_max_count: int = 0
    tuple_bytes: int = 2
    block_bytes: int = 128
    macroblock_bytes: "int | None" = None
    mht_capacity: "int | None" = None
    confidence_threshold: int = 0
    mhr_capacity: int = 0
    pht_capacity: int = 0
    eviction: str = "lru"

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigError(f"MHR depth must be >= 1, got {self.depth}")
        if self.filter_max_count < 0:
            raise ConfigError(
                f"filter_max_count must be >= 0, got {self.filter_max_count}"
            )
        if self.tuple_bytes < 1:
            raise ConfigError("tuple_bytes must be positive")
        if self.block_bytes < 1:
            raise ConfigError("block_bytes must be positive")
        if self.macroblock_bytes is not None:
            if self.macroblock_bytes < 1:
                raise ConfigError("macroblock_bytes must be positive")
            if self.macroblock_bytes & (self.macroblock_bytes - 1):
                raise ConfigError("macroblock_bytes must be a power of two")
        if self.mht_capacity is not None and self.mht_capacity < 1:
            raise ConfigError("mht_capacity must be positive")
        if self.confidence_threshold < 0:
            raise ConfigError("confidence_threshold must be >= 0")
        if self.confidence_threshold > self.filter_max_count:
            raise ConfigError(
                "confidence_threshold cannot exceed filter_max_count: the "
                "counter saturates there and would never reach a higher bar"
            )
        if self.mhr_capacity < 0:
            raise ConfigError(
                f"mhr_capacity must be >= 0 (0 = unbounded), "
                f"got {self.mhr_capacity}"
            )
        if self.pht_capacity < 0:
            raise ConfigError(
                f"pht_capacity must be >= 0 (0 = unbounded), "
                f"got {self.pht_capacity}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ConfigError(
                f"eviction must be one of {EVICTION_POLICIES}, "
                f"got {self.eviction!r}"
            )
        if self.mht_capacity is not None and (
            self.mhr_capacity or self.pht_capacity
        ):
            raise ConfigError(
                "mht_capacity (legacy whole-bank LRU) cannot be combined "
                "with mhr_capacity/pht_capacity; use the new knobs alone"
            )

    @property
    def has_filter(self) -> bool:
        return self.filter_max_count > 0

    def describe(self) -> str:
        filt = (
            f"saturating counter (max {self.filter_max_count})"
            if self.has_filter
            else "none"
        )
        macro = (
            f", macroblock={self.macroblock_bytes}B"
            if self.macroblock_bytes is not None
            else ""
        )
        bound = ""
        if self.mhr_capacity or self.pht_capacity:
            caps = []
            if self.mhr_capacity:
                caps.append(f"mhr<={self.mhr_capacity}")
            if self.pht_capacity:
                caps.append(f"pht<={self.pht_capacity}")
            bound = f", {self.eviction}[{', '.join(caps)}]"
        return f"Cosmos(depth={self.depth}, filter={filt}{macro}{bound})"
