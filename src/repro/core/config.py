"""Configuration of a Cosmos predictor."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class CosmosConfig:
    """Parameters of one Cosmos predictor.

    Attributes:
        depth: number of ``<sender, type>`` tuples held in each Message
            History Register (the paper sweeps 1-4; Table 5).
        filter_max_count: saturating-counter ceiling of the noise filter
            (paper Section 3.6 / Table 6); ``0`` disables filtering, i.e.
            a misprediction immediately replaces the stored prediction.
        tuple_bytes: storage size of one ``<sender, type>`` tuple; the
            paper assumes 2 bytes (12 bits of processor id + 4 bits of
            message type) in Table 7's overhead formula.
        block_bytes: cache-block size used by the overhead formula
            (Table 7 normalizes to 128-byte blocks).
        macroblock_bytes: group predictions for all cache blocks within
            an aligned region of this many bytes into one MHR/PHT pair
            (Section 7 suggests Johnson & Hwu-style macroblocks to cut
            Cosmos' memory).  ``None`` (default) keeps per-block tables.
        mht_capacity: bound the Message History Table to this many MHR
            entries per predictor, evicted LRU together with their PHTs
            (a hardware predictor cannot grow without bound; the paper's
            tables are effectively unbounded because Stache directory
            state is persistent).  ``None`` (default) is unbounded.
        confidence_threshold: emit a prediction only when its filter
            counter has reached this value, trading coverage for the
            precision that speculative actions need (Section 4's
            misprediction costs).  Requires ``filter_max_count >=
            confidence_threshold``; 0 (default) predicts always.
    """

    depth: int = 1
    filter_max_count: int = 0
    tuple_bytes: int = 2
    block_bytes: int = 128
    macroblock_bytes: "int | None" = None
    mht_capacity: "int | None" = None
    confidence_threshold: int = 0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigError(f"MHR depth must be >= 1, got {self.depth}")
        if self.filter_max_count < 0:
            raise ConfigError(
                f"filter_max_count must be >= 0, got {self.filter_max_count}"
            )
        if self.tuple_bytes < 1:
            raise ConfigError("tuple_bytes must be positive")
        if self.block_bytes < 1:
            raise ConfigError("block_bytes must be positive")
        if self.macroblock_bytes is not None:
            if self.macroblock_bytes < 1:
                raise ConfigError("macroblock_bytes must be positive")
            if self.macroblock_bytes & (self.macroblock_bytes - 1):
                raise ConfigError("macroblock_bytes must be a power of two")
        if self.mht_capacity is not None and self.mht_capacity < 1:
            raise ConfigError("mht_capacity must be positive")
        if self.confidence_threshold < 0:
            raise ConfigError("confidence_threshold must be >= 0")
        if self.confidence_threshold > self.filter_max_count:
            raise ConfigError(
                "confidence_threshold cannot exceed filter_max_count: the "
                "counter saturates there and would never reach a higher bar"
            )

    @property
    def has_filter(self) -> bool:
        return self.filter_max_count > 0

    def describe(self) -> str:
        filt = (
            f"saturating counter (max {self.filter_max_count})"
            if self.has_filter
            else "none"
        )
        macro = (
            f", macroblock={self.macroblock_bytes}B"
            if self.macroblock_bytes is not None
            else ""
        )
        return f"Cosmos(depth={self.depth}, filter={filt}{macro})"
