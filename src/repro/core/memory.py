"""Memory-overhead accounting for Cosmos predictors (paper Table 7).

The paper's formula, from the Table 7 caption:

    Ratio = total PHT entries / total MHR entries
    Ovhd  = tuple_size * (depth + Ratio * (depth + 1)) * 100 / block_size  [%]

with a 2-byte tuple (12 bits processor + 4 bits type) and a 128-byte
block.  An MHR entry costs ``depth`` tuples; a PHT entry costs one pattern
(``depth`` tuples) plus one prediction tuple, i.e. ``depth + 1`` tuples.
MHR entries count blocks referenced at least once; PHTs are only
allocated once a block's reference count exceeds the MHR depth, which is
why lightly-touched applications (dsmc) can have ratios below one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bank import PredictorBank
from .config import CosmosConfig


@dataclass(frozen=True)
class MemoryOverhead:
    """Table 7 quantities for one predictor configuration.

    Entry counts are *live* entries; a capacity-bounded bank that has
    been evicting reports smaller tables than it once held, so the
    high-water marks ride along (``-1`` = not tracked, treat as live)
    and back the ``pred.mem.peak_*`` metrics.
    """

    mhr_entries: int
    pht_entries: int
    depth: int
    tuple_bytes: int
    block_bytes: int
    peak_mhr_entries: int = -1
    peak_pht_entries: int = -1

    @property
    def peak_mhr(self) -> int:
        """High-water MHR count (falls back to live when untracked)."""
        if self.peak_mhr_entries < 0:
            return self.mhr_entries
        return self.peak_mhr_entries

    @property
    def peak_pht(self) -> int:
        """High-water PHT count (falls back to live when untracked)."""
        if self.peak_pht_entries < 0:
            return self.pht_entries
        return self.peak_pht_entries

    @property
    def table_bytes(self) -> int:
        """Estimated live predictor storage under the Table 7 model."""
        return _table_bytes(
            self.depth, self.tuple_bytes, self.mhr_entries, self.pht_entries
        )

    @property
    def peak_table_bytes(self) -> int:
        """Estimated high-water storage under the Table 7 model."""
        return _table_bytes(
            self.depth, self.tuple_bytes, self.peak_mhr, self.peak_pht
        )

    @property
    def ratio(self) -> float:
        """PHT entries per MHR entry."""
        if self.mhr_entries == 0:
            return 0.0
        return self.pht_entries / self.mhr_entries

    @property
    def overhead_percent(self) -> float:
        """Average predictor memory per block, as a % of the block size."""
        tuples_per_block = self.depth + self.ratio * (self.depth + 1)
        return self.tuple_bytes * tuples_per_block * 100.0 / self.block_bytes

    @property
    def bytes_per_block(self) -> float:
        """Average predictor bytes per referenced block."""
        return self.overhead_percent * self.block_bytes / 100.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ratio={self.ratio:.1f} ovhd={self.overhead_percent:.1f}% "
            f"({self.mhr_entries} MHRs, {self.pht_entries} PHT entries)"
        )


def _table_bytes(
    depth: int, tuple_bytes: int, mhr_entries: int, pht_entries: int
) -> int:
    """Table 7's per-entry costs applied to whole-table entry counts.

    An MHR entry holds ``depth`` tuples; a PHT entry holds one pattern
    (``depth`` tuples) plus one prediction tuple.
    """
    return tuple_bytes * (
        mhr_entries * depth + pht_entries * (depth + 1)
    )


def estimated_table_bytes(
    config: CosmosConfig, mhr_entries: int, pht_entries: int
) -> int:
    """Estimated predictor storage for given entry counts (Table 7 model)."""
    return _table_bytes(
        config.depth, config.tuple_bytes, mhr_entries, pht_entries
    )


def measure_overhead(bank: PredictorBank) -> MemoryOverhead:
    """Aggregate Table 7 quantities over a whole predictor bank.

    Live entry counts only: a bounded bank's evicted entries are gone
    from the tables and from this measurement.  Peaks are reported
    alongside so bounded runs don't silently deflate memory reports.
    """
    config: CosmosConfig = bank.config
    return MemoryOverhead(
        mhr_entries=bank.mhr_entries,
        pht_entries=bank.pht_entries,
        depth=config.depth,
        tuple_bytes=config.tuple_bytes,
        block_bytes=config.block_bytes,
        peak_mhr_entries=bank.peak_mhr_entries,
        peak_pht_entries=bank.peak_pht_entries,
    )
