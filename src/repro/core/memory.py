"""Memory-overhead accounting for Cosmos predictors (paper Table 7).

The paper's formula, from the Table 7 caption:

    Ratio = total PHT entries / total MHR entries
    Ovhd  = tuple_size * (depth + Ratio * (depth + 1)) * 100 / block_size  [%]

with a 2-byte tuple (12 bits processor + 4 bits type) and a 128-byte
block.  An MHR entry costs ``depth`` tuples; a PHT entry costs one pattern
(``depth`` tuples) plus one prediction tuple, i.e. ``depth + 1`` tuples.
MHR entries count blocks referenced at least once; PHTs are only
allocated once a block's reference count exceeds the MHR depth, which is
why lightly-touched applications (dsmc) can have ratios below one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bank import PredictorBank
from .config import CosmosConfig


@dataclass(frozen=True)
class MemoryOverhead:
    """Table 7 quantities for one predictor configuration."""

    mhr_entries: int
    pht_entries: int
    depth: int
    tuple_bytes: int
    block_bytes: int

    @property
    def ratio(self) -> float:
        """PHT entries per MHR entry."""
        if self.mhr_entries == 0:
            return 0.0
        return self.pht_entries / self.mhr_entries

    @property
    def overhead_percent(self) -> float:
        """Average predictor memory per block, as a % of the block size."""
        tuples_per_block = self.depth + self.ratio * (self.depth + 1)
        return self.tuple_bytes * tuples_per_block * 100.0 / self.block_bytes

    @property
    def bytes_per_block(self) -> float:
        """Average predictor bytes per referenced block."""
        return self.overhead_percent * self.block_bytes / 100.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ratio={self.ratio:.1f} ovhd={self.overhead_percent:.1f}% "
            f"({self.mhr_entries} MHRs, {self.pht_entries} PHT entries)"
        )


def measure_overhead(bank: PredictorBank) -> MemoryOverhead:
    """Aggregate Table 7 quantities over a whole predictor bank."""
    config: CosmosConfig = bank.config
    return MemoryOverhead(
        mhr_entries=bank.mhr_entries,
        pht_entries=bank.pht_entries,
        depth=config.depth,
        tuple_bytes=config.tuple_bytes,
        block_bytes=config.block_bytes,
    )
