"""Deterministic per-shard seed derivation.

A shard must behave identically no matter which worker runs it, in what
order, or on which platform.  Python's builtin ``hash`` is salted per
process, so shard identities are hashed with :mod:`hashlib` instead:
``derive_seed`` maps the cell identity ``(experiment, workload, config,
base seed)`` to a stable 63-bit integer.  Workers seed their ambient
``random`` state with it before running a shard, so any stray
randomness is at least reproducible per cell (the simulator itself
always builds its own explicitly seeded generators).
"""

from __future__ import annotations

import hashlib
from typing import Optional

#: Seeds fit in a non-negative signed 64-bit int for easy transport.
_SEED_BITS = 63


def derive_seed(
    experiment: str,
    workload: Optional[str] = None,
    config: Optional[str] = None,
    seed: int = 0,
) -> int:
    """Derive a stable shard seed from the cell identity.

    Any change to any field -- experiment name, workload, config
    description, or base seed -- yields a different (but deterministic)
    value.  The unit separator keeps field boundaries unambiguous, so
    ``("ab", "c")`` and ``("a", "bc")`` cannot collide.
    """
    material = "\x1f".join(
        [experiment, workload or "", config or "", str(seed)]
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)
