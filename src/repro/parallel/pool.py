"""The worker pool: execute a :class:`~repro.parallel.plan.Plan`.

Workers run in ``spawn`` processes (fresh interpreters -- no inherited
RNG state, no copy-on-write surprises, same behaviour on every
platform).  Each worker configures the shared on-disk trace cache,
seeds ambient randomness from the shard's derived seed, runs its shard,
and ships back the result plus its local metrics snapshot.  The parent
folds worker metrics into the global registry and merges experiment
outputs in plan order, so scheduling never leaks into the report.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Tuple, Union

from ..sim.metrics import METRICS
from .plan import ExperimentShard, Plan, TraceShard

_Shard = Union[TraceShard, ExperimentShard]


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard produced, plus per-shard accounting."""

    kind: str  # "trace" | "experiment"
    name: str
    index: int
    text: str  # experiment shards: the rendered table/figure
    events: int  # trace shards: number of trace events produced
    seconds: float
    pid: int
    metrics: Dict[str, dict]

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


def _configure_worker_cache(cache_dir: object) -> None:
    from ..experiments.common import configure_trace_cache
    from ..trace.cache import TraceCache

    if cache_dir is not None:
        configure_trace_cache(TraceCache(str(cache_dir)))


def _run_shard(shard: _Shard) -> ShardOutcome:
    """Top-level worker entry point (must be picklable for ``spawn``)."""
    import random

    random.seed(shard.shard_seed)
    METRICS.reset()
    _configure_worker_cache(shard.cache_dir)
    start = time.perf_counter()
    if isinstance(shard, TraceShard):
        from ..experiments.common import get_trace

        events = get_trace(
            shard.app,
            iterations=shard.iterations,
            seed=shard.seed,
            quick=shard.quick,
        )
        kind, name, index = "trace", shard.app, -1
        text, n_events = "", len(events)
    else:
        from ..experiments.runner import EXPERIMENTS

        text = EXPERIMENTS[shard.name](shard.quick, shard.seed)
        kind, name, index = "experiment", shard.name, shard.index
        n_events = 0
    seconds = time.perf_counter() - start
    METRICS.inc(f"shard.{kind}")
    return ShardOutcome(
        kind=kind,
        name=name,
        index=index,
        text=text,
        events=n_events,
        seconds=seconds,
        pid=os.getpid(),
        metrics=METRICS.snapshot(),
    )


def run_plan(
    plan: Plan, jobs: int
) -> Tuple[List[Tuple[str, str, float]], List[ShardOutcome]]:
    """Execute ``plan`` on ``jobs`` workers.

    Returns ``(sections, outcomes)`` where ``sections`` is the ordered
    ``(name, text, elapsed)`` list matching the requested experiment
    order exactly, and ``outcomes`` covers every shard (traces first)
    for metrics/throughput reporting.  Worker metrics are merged into
    the parent's global registry as results arrive.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    outcomes: List[ShardOutcome] = []
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=get_context("spawn")
    ) as pool:
        # Stage 1: warm the trace cache.  A barrier here keeps stage 2
        # workers from racing to re-simulate the same workload.
        with METRICS.timer("parallel.stage.traces"):
            for outcome in pool.map(_run_shard, plan.traces):
                METRICS.merge(outcome.metrics)
                outcomes.append(outcome)
        with METRICS.timer("parallel.stage.experiments"):
            finished = list(pool.map(_run_shard, plan.experiments))
    for outcome in finished:
        METRICS.merge(outcome.metrics)
    # Ordered merge: plan order, not completion order.
    finished.sort(key=lambda outcome: outcome.index)
    outcomes.extend(finished)
    sections = [
        (outcome.name, outcome.text, outcome.seconds) for outcome in finished
    ]
    return sections, outcomes
