"""The worker pool: execute a :class:`~repro.parallel.plan.Plan`.

Workers run in ``spawn`` processes (fresh interpreters -- no inherited
RNG state, no copy-on-write surprises, same behaviour on every
platform).  Each worker configures the shared on-disk trace cache,
seeds ambient randomness from the shard's derived seed, runs its shard,
and ships back the result plus its local metrics snapshot.  The parent
folds worker metrics into the global registry and merges experiment
outputs in plan order, so scheduling never leaks into the report.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple, Union

from ..errors import RunInterrupted, ShardError
from ..sim.metrics import METRICS
from .journal import RunJournal
from .plan import ExperimentShard, Plan, TraceShard

_Shard = Union[TraceShard, ExperimentShard]


@dataclass(frozen=True)
class ShardOutcome:
    """What one shard produced, plus per-shard accounting."""

    kind: str  # "trace" | "experiment"
    name: str
    index: int
    text: str  # experiment shards: the rendered table/figure
    events: int  # trace shards: number of trace events produced
    seconds: float
    pid: int
    metrics: Dict[str, dict]
    #: Traceback text when the shard failed; ``None`` on success.  A
    #: failed shard still ships its metrics snapshot, so the work it did
    #: before dying (cache writes, simulations) is accounted for.
    error: Optional[str] = None

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


def _shard_identity(shard: _Shard) -> Tuple[str, str, int]:
    """``(kind, name, index)`` for any shard type."""
    if isinstance(shard, TraceShard):
        return "trace", shard.app, -1
    return "experiment", shard.name, shard.index


def _failure_outcome(
    shard: _Shard,
    error: str,
    seconds: float = 0.0,
    pid: int = 0,
    metrics: Optional[Dict[str, dict]] = None,
) -> ShardOutcome:
    kind, name, index = _shard_identity(shard)
    return ShardOutcome(
        kind=kind,
        name=name,
        index=index,
        text="",
        events=0,
        seconds=seconds,
        pid=pid,
        metrics=metrics or {},
        error=error,
    )


def _configure_worker_cache(cache_dir: object) -> None:
    from ..experiments.common import configure_trace_cache
    from ..trace.cache import TraceCache

    if cache_dir is not None:
        configure_trace_cache(TraceCache(str(cache_dir)))


def _run_shard(shard: _Shard) -> ShardOutcome:
    """Top-level worker entry point (must be picklable for ``spawn``).

    Failures are captured and returned as an error outcome rather than
    raised: the parent must see the worker's metrics snapshot (the shard
    may have warmed the cache or finished simulations before dying) and
    must keep draining the remaining shards.
    """
    import random

    random.seed(shard.shard_seed)
    METRICS.reset()
    kind, name, index = _shard_identity(shard)
    start = time.perf_counter()
    try:
        _configure_worker_cache(shard.cache_dir)
        if shard.fault_spec is not None:
            from ..experiments.common import configure_faults

            configure_faults(shard.fault_spec, shard.fault_seed)
        if isinstance(shard, TraceShard):
            from ..experiments.common import get_trace

            events = get_trace(
                shard.app,
                iterations=shard.iterations,
                seed=shard.seed,
                quick=shard.quick,
            )
            text, n_events = "", len(events)
        else:
            from ..experiments.runner import EXPERIMENTS

            text = EXPERIMENTS[shard.name](shard.quick, shard.seed)
            n_events = 0
    except Exception:
        METRICS.inc(f"shard.{kind}.failed")
        return _failure_outcome(
            shard,
            traceback.format_exc(),
            seconds=time.perf_counter() - start,
            pid=os.getpid(),
            metrics=METRICS.snapshot(),
        )
    seconds = time.perf_counter() - start
    METRICS.inc(f"shard.{kind}")
    return ShardOutcome(
        kind=kind,
        name=name,
        index=index,
        text=text,
        events=n_events,
        seconds=seconds,
        pid=os.getpid(),
        metrics=METRICS.snapshot(),
    )


def _drain(
    pool: ProcessPoolExecutor,
    shards: Tuple[_Shard, ...],
    journal: Optional[RunJournal] = None,
) -> List[Tuple[_Shard, ShardOutcome]]:
    """Run ``shards`` and collect every outcome, crashed workers included.

    ``_run_shard`` converts ordinary exceptions into error outcomes; a
    worker that dies without returning at all (killed process, broken
    pool) surfaces here as a future exception, converted to an error
    outcome with no metrics so the stage still drains completely.

    With a ``journal``, shards whose successful outcome is already
    journaled are not re-submitted (their recorded outcome is spliced
    back in), and every fresh outcome is durably recorded the moment it
    completes -- completion order, not submission order, so a kill
    arriving mid-stage preserves every finished shard.  Results are
    still returned in submission order.
    """
    results: List[Optional[Tuple[_Shard, ShardOutcome]]] = [None] * len(shards)
    pending: Dict[object, Tuple[int, _Shard]] = {}
    for position, shard in enumerate(shards):
        record = journal.outcome_record(shard) if journal is not None else None
        if record is not None:
            results[position] = (shard, ShardOutcome(**record))
            METRICS.inc("journal.shards_skipped")
            continue
        future = pool.submit(_run_shard, shard)
        pending[future] = (position, shard)
    try:
        for future in as_completed(pending):
            position, shard = pending[future]
            try:
                outcome = future.result()
            except Exception as exc:  # worker died before shipping a result
                outcome = _failure_outcome(
                    shard, f"{type(exc).__name__}: {exc}"
                )
            if journal is not None:
                journal.record(shard, outcome)
            results[position] = (shard, outcome)
    except KeyboardInterrupt:
        for future in pending:
            future.cancel()
        raise
    return [pair for pair in results if pair is not None]


def run_plan(
    plan: Plan, jobs: int, journal: Optional[RunJournal] = None
) -> Tuple[List[Tuple[str, str, float]], List[ShardOutcome]]:
    """Execute ``plan`` on ``jobs`` workers.

    Returns ``(sections, outcomes)`` where ``sections`` is the ordered
    ``(name, text, elapsed)`` list matching the requested experiment
    order exactly, and ``outcomes`` covers every shard (traces first)
    for metrics/throughput reporting.  Worker metrics are merged into
    the parent's global registry as results arrive.

    Shard failures do not abort the run mid-flight: every shard is
    drained and every worker's metrics (including a failed worker's
    partial metrics) are merged first, then a :class:`ShardError`
    carrying the failed shard descriptors is raised.

    A ``journal`` (see :mod:`repro.parallel.journal`) makes the run
    resumable: journaled shards are skipped, fresh completions are
    fsync'd as they land, and an interrupt (Ctrl-C / SIGTERM converted
    to :class:`KeyboardInterrupt`) abandons in-flight work and raises
    :class:`~repro.errors.RunInterrupted` naming the run directory.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    pool = ProcessPoolExecutor(
        max_workers=jobs, mp_context=get_context("spawn")
    )
    try:
        # Stage 1: warm the trace cache.  A barrier here keeps stage 2
        # workers from racing to re-simulate the same workload.
        with METRICS.timer("parallel.stage.traces"):
            trace_results = _drain(pool, plan.traces, journal)
        with METRICS.timer("parallel.stage.experiments"):
            experiment_results = _drain(pool, plan.experiments, journal)
    except KeyboardInterrupt:
        # Abandon queued and running shards without waiting for them;
        # everything already finished is safe in the journal.
        pool.shutdown(wait=False, cancel_futures=True)
        if journal is not None:
            journal.close()
            raise RunInterrupted(
                "run interrupted; completed shards are journaled in "
                f"{journal.run_dir}",
                run_dir=str(journal.run_dir),
            ) from None
        raise
    pool.shutdown()
    for _, outcome in trace_results + experiment_results:
        METRICS.merge(outcome.metrics)
    failures = [
        (shard, outcome)
        for shard, outcome in trace_results + experiment_results
        if outcome.error is not None
    ]
    if failures:
        lines = [
            f"{len(failures)} of {plan.n_shards} shards failed "
            "(all shards drained; partial metrics merged):"
        ]
        for shard, outcome in failures:
            last = outcome.error.strip().splitlines()[-1]
            lines.append(f"  {shard!r}: {last}")
        lines.append("first failure traceback:")
        lines.append(failures[0][1].error.rstrip())
        if journal is not None:
            lines.append(
                "completed shards are journaled; re-run only the "
                f"failures with: repro-experiments --resume {journal.run_dir}"
            )
        raise ShardError(
            "\n".join(lines),
            failures=[
                (shard, outcome.error) for shard, outcome in failures
            ],
        )
    outcomes = [outcome for _, outcome in trace_results]
    finished = [outcome for _, outcome in experiment_results]
    # Ordered merge: plan order, not completion order.
    finished.sort(key=lambda outcome: outcome.index)
    outcomes.extend(finished)
    sections = [
        (outcome.name, outcome.text, outcome.seconds) for outcome in finished
    ]
    return sections, outcomes
