"""Parallel execution of independent experiment cells.

The paper's evaluation is a grid -- applications x nodes x predictor
configurations -- and every ``(workload, seed, config)`` cell is
independent: prediction accuracy depends only on per-block message
order, which is latency-insensitive.  This package shards that grid
across a ``spawn`` process pool and merges results back in plan order,
so the parallel path emits byte-identical experiment text to the serial
one.

* :mod:`repro.parallel.seeds` -- deterministic per-shard seed derivation
  (``hashlib`` over the cell identity, independent of pool scheduling).
* :mod:`repro.parallel.plan` -- the shard planner: a trace-warming stage
  (one shard per unique simulation, written to the on-disk trace cache)
  followed by one shard per experiment.
* :mod:`repro.parallel.pool` -- the worker pool and the ordered merge.
* :mod:`repro.parallel.journal` -- the durable run journal behind
  ``--run-dir`` / ``--resume``: fsync'd per-shard completion records
  that survive ``kill -9`` and let a resumed run re-execute only the
  missing or failed shards.
"""

from .journal import RunJournal, shard_digest
from .plan import ExperimentShard, Plan, TraceShard, plan_run
from .pool import ShardOutcome, run_plan
from .seeds import derive_seed

__all__ = [
    "ExperimentShard",
    "Plan",
    "RunJournal",
    "ShardOutcome",
    "TraceShard",
    "derive_seed",
    "plan_run",
    "run_plan",
    "shard_digest",
]
