"""Parallel execution of independent experiment cells.

The paper's evaluation is a grid -- applications x nodes x predictor
configurations -- and every ``(workload, seed, config)`` cell is
independent: prediction accuracy depends only on per-block message
order, which is latency-insensitive.  This package shards that grid
across a ``spawn`` process pool and merges results back in plan order,
so the parallel path emits byte-identical experiment text to the serial
one.

* :mod:`repro.parallel.seeds` -- deterministic per-shard seed derivation
  (``hashlib`` over the cell identity, independent of pool scheduling).
* :mod:`repro.parallel.plan` -- the shard planner: a trace-warming stage
  (one shard per unique simulation, written to the on-disk trace cache)
  followed by one shard per experiment.
* :mod:`repro.parallel.pool` -- the worker pool and the ordered merge.
"""

from .plan import ExperimentShard, Plan, TraceShard, plan_run
from .pool import ShardOutcome, run_plan
from .seeds import derive_seed

__all__ = [
    "ExperimentShard",
    "Plan",
    "ShardOutcome",
    "TraceShard",
    "derive_seed",
    "plan_run",
    "run_plan",
]
