"""The run journal: durable shard completions for resumable runs.

A journaled run (``repro-experiments --run-dir DIR``) leaves two files
behind:

``plan.json``
    The full shard plan (every :class:`~repro.parallel.plan.TraceShard`
    and :class:`~repro.parallel.plan.ExperimentShard`, as plain data)
    plus the invocation metadata, written atomically before any shard
    runs.  A resumed run rebuilds the *identical* plan from this file --
    it does not re-plan from command-line flags, so the shard digests
    (and therefore the skip decisions) cannot drift.

``journal.jsonl``
    One JSON record per finished shard, appended with ``fsync`` before
    the completion is acknowledged, so a ``kill -9`` at any instant
    loses at most work in flight -- never a recorded completion.  Each
    record carries the shard's digest and its full
    :class:`~repro.parallel.pool.ShardOutcome` (rendered text, metrics
    snapshot, timings), which is everything the ordered merge needs:
    ``--resume`` re-executes only missing or failed shards and splices
    the journaled outcomes back in, producing byte-identical report
    text to an uninterrupted run.

Shards are identified by :func:`shard_digest` -- a SHA-256 over the
shard descriptor's canonical JSON -- so any change to what a shard
*means* (different seed, fault profile, cache directory, plan position)
changes its digest and forces a re-run rather than silently reusing a
stale result.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import IO, Dict, Optional, Union

from ..errors import ReproError
from ..ioutil import atomic_write_text, fsync_append
from ..sim.metrics import METRICS
from .plan import ExperimentShard, Plan, TraceShard

#: Bumped when the on-disk layout changes incompatibly.
JOURNAL_FORMAT = 1

PLAN_FILE = "plan.json"
JOURNAL_FILE = "journal.jsonl"


def shard_digest(shard: Union[TraceShard, ExperimentShard]) -> str:
    """Content address of one shard descriptor.

    Canonical JSON over the dataclass fields plus the shard type, so two
    shards collide only when they would do byte-identical work.
    """
    import hashlib

    record = dataclasses.asdict(shard)
    record["__kind__"] = type(shard).__name__
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _plan_record(plan: Plan, meta: dict) -> dict:
    return {
        "format": JOURNAL_FORMAT,
        "meta": meta,
        "traces": [dataclasses.asdict(shard) for shard in plan.traces],
        "experiments": [
            dataclasses.asdict(shard) for shard in plan.experiments
        ],
    }


def _plan_from_record(record: dict) -> Plan:
    return Plan(
        traces=tuple(TraceShard(**item) for item in record["traces"]),
        experiments=tuple(
            ExperimentShard(**item) for item in record["experiments"]
        ),
    )


class RunJournal:
    """plan.json + journal.jsonl under one run directory."""

    def __init__(self, run_dir: Union[str, Path], record: dict) -> None:
        self.run_dir = Path(run_dir)
        self._record = record
        self._handle: Optional[IO] = None
        #: digest -> journaled outcome dict, successful shards only.
        self._completed: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, run_dir: Union[str, Path], plan: Plan, meta: dict
    ) -> "RunJournal":
        """Start journaling a fresh run into ``run_dir``.

        Refuses a directory that already holds a plan: resuming is an
        explicit act (``--resume``), and silently re-planning over an
        interrupted run would orphan its journal.
        """
        run_dir = Path(run_dir)
        plan_path = run_dir / PLAN_FILE
        if plan_path.exists():
            raise ReproError(
                f"{plan_path} already exists; resume that run with "
                f"--resume {run_dir}, or pick a fresh --run-dir"
            )
        record = _plan_record(plan, meta)
        run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            plan_path, json.dumps(record, indent=2) + "\n", fsync=True
        )
        return cls(run_dir, record)

    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "RunJournal":
        """Open an existing run directory for resumption."""
        run_dir = Path(run_dir)
        plan_path = run_dir / PLAN_FILE
        try:
            with open(plan_path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            raise ReproError(
                f"no run journal at {run_dir} (missing {PLAN_FILE}); "
                "was this directory created with --run-dir?"
            ) from None
        except json.JSONDecodeError as exc:
            raise ReproError(f"corrupt {plan_path}: {exc}") from exc
        found = record.get("format")
        if found != JOURNAL_FORMAT:
            raise ReproError(
                f"{plan_path} has journal format {found!r}; this build "
                f"reads format {JOURNAL_FORMAT}"
            )
        journal = cls(run_dir, record)
        journal._replay()
        return journal

    def _replay(self) -> None:
        """Load acknowledged completions, tolerating a torn tail.

        ``fsync`` per record means at most the final line can be
        partial (the process died mid-append); undecodable lines are
        counted and skipped, which simply re-runs those shards.
        """
        path = self.run_dir / JOURNAL_FILE
        try:
            with open(path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                METRICS.inc("journal.torn_records")
                continue
            if entry.get("outcome", {}).get("error") is None:
                self._completed[entry["digest"]] = entry["outcome"]
            else:
                # A journaled failure is forensic, not a completion:
                # the shard re-runs on resume.
                self._completed.pop(entry["digest"], None)

    # ------------------------------------------------------------------
    # the plan
    # ------------------------------------------------------------------

    def plan(self) -> Plan:
        """The journaled shard plan, reconstructed exactly."""
        return _plan_from_record(self._record)

    @property
    def meta(self) -> dict:
        """Invocation metadata captured at plan time."""
        return dict(self._record.get("meta", {}))

    @property
    def completed_count(self) -> int:
        return len(self._completed)

    # ------------------------------------------------------------------
    # recording and replaying outcomes
    # ------------------------------------------------------------------

    def outcome_record(
        self, shard: Union[TraceShard, ExperimentShard]
    ) -> Optional[dict]:
        """The journaled successful outcome for ``shard``, if any."""
        return self._completed.get(shard_digest(shard))

    def record(
        self, shard: Union[TraceShard, ExperimentShard], outcome
    ) -> None:
        """Durably append one finished shard before acknowledging it."""
        if self._handle is None:
            self._handle = open(
                self.run_dir / JOURNAL_FILE, "a", encoding="utf-8"
            )
        entry = {
            "digest": shard_digest(shard),
            "outcome": dataclasses.asdict(outcome),
        }
        fsync_append(
            self._handle,
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n",
        )
        METRICS.inc("journal.records")
        if outcome.error is None:
            self._completed[entry["digest"]] = entry["outcome"]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
