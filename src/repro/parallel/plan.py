"""The shard planner.

A run plan has two stages:

1. **Trace shards** -- one per unique ``(workload, iterations, seed,
   quick)`` simulation any requested experiment needs.  Workers simulate
   and write the on-disk trace cache, so the expensive step runs once,
   in parallel, instead of once per experiment process.
2. **Experiment shards** -- one per requested experiment.  Workers
   regenerate the table/figure text (replaying traces from the cache
   warmed by stage 1) and the parent merges outputs back in plan order.

The planner never reorders anything observable: experiment shards carry
their position in the requested name list, and the pool's merge sorts by
it, so ``--jobs N`` output is byte-identical to ``--sequential``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..experiments.common import iterations_for
from .seeds import derive_seed


@dataclass(frozen=True)
class TraceShard:
    """One simulation to run and write into the trace cache."""

    app: str
    iterations: int
    seed: int
    quick: bool
    cache_dir: str
    shard_seed: int
    #: Fault-injection profile spec the worker must configure before
    #: simulating (``None`` = reliable interconnect).
    fault_spec: Optional[str] = None
    fault_seed: int = 0


@dataclass(frozen=True)
class ExperimentShard:
    """One experiment to regenerate (``index`` = position in the plan)."""

    index: int
    name: str
    quick: bool
    seed: int
    cache_dir: Optional[str]
    shard_seed: int
    fault_spec: Optional[str] = None
    fault_seed: int = 0


@dataclass(frozen=True)
class Plan:
    """An ordered two-stage run plan."""

    traces: Tuple[TraceShard, ...]
    experiments: Tuple[ExperimentShard, ...]

    @property
    def n_shards(self) -> int:
        return len(self.traces) + len(self.experiments)


def plan_run(
    names: Sequence[str],
    quick: bool,
    seed: int,
    cache_dir: Optional[str],
    traces_by_experiment: Mapping[str, Iterable[str]],
    fault_spec: Optional[str] = None,
    fault_seed: int = 0,
) -> Plan:
    """Build the shard plan for one runner invocation.

    ``traces_by_experiment`` maps each experiment name to the workloads
    it replays through the shared trace cache (empty for experiments
    that simulate privately or not at all).  Without a ``cache_dir``
    there is nowhere to hand traces across processes, so the warming
    stage is skipped and each worker simulates what it needs.

    ``fault_spec`` propagates the runner's ``--fault-profile`` into
    every worker; the derived shard seeds fold it in only when set, so
    fault-free plans keep their historical seeds (and cached traces).
    """

    def config_tag(base: str) -> str:
        if fault_spec is None:
            return base
        return f"{base},faults={fault_spec}:{fault_seed}"

    traces: List[TraceShard] = []
    if cache_dir is not None:
        seen: Dict[Tuple[str, int, int, bool], None] = {}
        for name in names:
            for app in traces_by_experiment.get(name, ()):
                key = (app, iterations_for(app, quick), seed, quick)
                if key not in seen:
                    seen[key] = None
                    traces.append(
                        TraceShard(
                            app=app,
                            iterations=key[1],
                            seed=seed,
                            quick=quick,
                            cache_dir=cache_dir,
                            shard_seed=derive_seed(
                                "trace",
                                app,
                                config_tag(f"it={key[1]},quick={quick}"),
                                seed,
                            ),
                            fault_spec=fault_spec,
                            fault_seed=fault_seed,
                        )
                    )
    experiments = tuple(
        ExperimentShard(
            index=index,
            name=name,
            quick=quick,
            seed=seed,
            cache_dir=cache_dir,
            shard_seed=derive_seed(
                name, None, config_tag(f"quick={quick}"), seed
            ),
            fault_spec=fault_spec,
            fault_seed=fault_seed,
        )
        for index, name in enumerate(names)
    )
    return Plan(traces=tuple(traces), experiments=experiments)
