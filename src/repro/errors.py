"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch everything from one place.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    Raised when a controller receives a message that is illegal in its
    current state (e.g., an ``inval_rw_request`` arriving at a cache that
    does not hold the block exclusive).  These indicate bugs in the
    protocol FSMs or in a custom controller, never expected runtime
    conditions.
    """


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TraceError(ReproError):
    """A trace file or trace event stream is malformed."""


class WorkloadError(ReproError):
    """A workload was asked to do something inconsistent with its layout."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CheckpointError(ReproError):
    """A simulation checkpoint could not be written, read, or applied.

    Raised for version/magic mismatches, checksum failures (bit rot or a
    torn write that somehow survived the atomic-rename discipline), and
    attempts to restore a checkpoint into an incompatible configuration
    (different machine parameters or workload fingerprint).  ``cause``
    names the failure mode (``truncated-header``, ``truncated-payload``,
    ``checksum-mismatch``, ``bad-magic``, ``version-mismatch``,
    ``fingerprint-mismatch``, ``no-valid-checkpoint``, ...) so fallback
    logic can branch without parsing the message.
    """

    def __init__(self, message, cause=None) -> None:
        super().__init__(message)
        self.cause = cause


class WatchdogError(SimulationError):
    """The simulation watchdog declared the run stuck and aborted it.

    Carries a forensic ``bundle`` (a JSON-able dict: pending engine
    events, per-block protocol state, recent observability events, and
    the triggering budget) so a hung run under CI dies with a diagnosis
    attached instead of a timeout.
    """

    def __init__(self, message: str, bundle=None) -> None:
        super().__init__(message)
        self.bundle = bundle if bundle is not None else {}


class OracleViolation(ReproError):
    """A schedule-exploration invariant oracle rejected the run.

    ``oracle`` names the oracle that fired (``coherence``,
    ``quiescence``, ``liveness``, ``predictor-balance``, ``overtake``)
    so runners and artifacts can classify failures without parsing the
    message.
    """

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(message)
        self.oracle = oracle


class RunInterrupted(ReproError):
    """A sharded run was interrupted (SIGINT/SIGTERM) before completing.

    Completed shards were already flushed to the run journal; ``run_dir``
    names the directory to pass to ``repro-experiments --resume``.
    """

    def __init__(self, message: str, run_dir=None) -> None:
        super().__init__(message)
        self.run_dir = run_dir


class ServeError(ReproError):
    """The online prediction service hit an unrecoverable condition.

    Client-visible overload (``RETRY_AFTER``) and degraded responses are
    *not* errors -- they are part of the service's contract.  This is
    raised for genuine failures: a request exhausting its retry budget,
    a malformed wire message, or a service that cannot start.
    """


class ShardError(ReproError):
    """One or more parallel worker shards failed.

    Raised by the pool after every shard has been drained, so partial
    results and worker metrics are already merged when callers see it.
    ``failures`` holds ``(shard, error_text)`` pairs -- the shard is the
    plan's own descriptor (:class:`~repro.parallel.plan.TraceShard` or
    :class:`~repro.parallel.plan.ExperimentShard`), identifying exactly
    which unit of work to re-run.
    """

    def __init__(self, message: str, failures=()) -> None:
        super().__init__(message)
        self.failures = list(failures)
