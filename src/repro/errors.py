"""Exception hierarchy for the repro package.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch everything from one place.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProtocolError(ReproError):
    """A coherence-protocol invariant was violated.

    Raised when a controller receives a message that is illegal in its
    current state (e.g., an ``inval_rw_request`` arriving at a cache that
    does not hold the block exclusive).  These indicate bugs in the
    protocol FSMs or in a custom controller, never expected runtime
    conditions.
    """


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class TraceError(ReproError):
    """A trace file or trace event stream is malformed."""


class WorkloadError(ReproError):
    """A workload was asked to do something inconsistent with its layout."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ShardError(ReproError):
    """One or more parallel worker shards failed.

    Raised by the pool after every shard has been drained, so partial
    results and worker metrics are already merged when callers see it.
    ``failures`` holds ``(shard, error_text)`` pairs -- the shard is the
    plan's own descriptor (:class:`~repro.parallel.plan.TraceShard` or
    :class:`~repro.parallel.plan.ExperimentShard`), identifying exactly
    which unit of work to re-run.
    """

    def __init__(self, message: str, failures=()) -> None:
        super().__init__(message)
        self.failures = list(failures)
