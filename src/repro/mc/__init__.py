"""Exhaustive model checking of the coherence protocol.

The model checker re-expresses the Stache/Origin controllers as a
guarded-action transition relation over frozen tuples
(:mod:`repro.mc.model`), enumerates the full reachable state space of
small configurations (:mod:`repro.mc.explorer`), and cross-validates
the model against the live simulator through an abstraction function
(:mod:`repro.mc.abstraction`, :mod:`repro.mc.crossval`).  A battery of
seeded protocol mutations (:mod:`repro.mc.mutations`) proves the
oracles actually bite.  ``repro-check`` (:mod:`repro.mc.cli`) is the
command-line entry point.
"""

from .abstraction import abstract_state, spot_project
from .crossval import CrossValReport, RoundTrip, concretize, cross_validate
from .explorer import (
    ExploreResult,
    Violation,
    enumerate_space,
    reachable_space,
)
from .model import KNOWN_MUTATIONS, MCConfig, Model
from .mutations import MUTATIONS, live_patch

__all__ = [
    "CrossValReport",
    "ExploreResult",
    "KNOWN_MUTATIONS",
    "MCConfig",
    "MUTATIONS",
    "Model",
    "RoundTrip",
    "Violation",
    "abstract_state",
    "concretize",
    "cross_validate",
    "enumerate_space",
    "live_patch",
    "reachable_space",
    "spot_project",
]
