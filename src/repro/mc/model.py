"""Guarded-action model of the Stache/Origin coherence protocol.

This module re-expresses the protocol implemented by
:mod:`repro.protocol.cache_ctrl`, :mod:`repro.protocol.directory_ctrl`
and :mod:`repro.protocol.origin` as a transition relation over hashable
frozen tuples, small enough to enumerate exhaustively
(:mod:`repro.mc.explorer`).  Every transition is a ``(guard, action)``
pair: :meth:`Model.actions` lists the labels whose guards hold in a
state, :meth:`Model.step` applies one label.

The model mirrors the controllers in *recovery mode*: the machine arms
recovery for every exploring (adversarial) or faulty network, which is
exactly the substrate the cross-validation battery drives, so the model
always includes idempotent acks, re-grants, duplicate-request merging,
poison re-issue, and timeout retries.  Retry actions are always enabled
-- even a fault-free run can time out while queued behind a serialized
transaction -- while drop/dup fault actions are gated by
:attr:`MCConfig.faults`.

Two abstractions make the state space finite:

* **1-bit staleness.**  The controllers match responses and acks to
  attempts by exact sequence number.  At most one attempt per
  ``(node, block)`` is ever *current*, so the quotient is exact: every
  in-flight message carries a ``stale`` bit (plus ``rstale`` for the
  requester-side seq a forwarded request carries), and each event that
  invalidates matching -- re-issue, poison, completion, round retry, ack
  acceptance -- flips the bit on the messages it strands.
* **Counter abstraction.**  The network is a multiset of message tuples
  with per-message multiplicity counted up to :attr:`MCConfig.dup_cap`;
  the cap means "at least this many", and delivering (or dropping) at
  the cap branches into both successor multiplicities.  This is needed
  even fault-free: repeated poison re-issues pile up identical stale
  requests without bound.  Two refinements keep the multiset small:
  *inert* stale messages -- responses and acks the receiver provably
  drops on sight -- are garbage-collected instead of enqueued (except
  under the mutations that make them meaningful), and stale messages
  saturate at multiplicity one ("at least one"), which is exact because
  every effect of a stale message is idempotent.

State layout (all plain ints and tuples, hashable)::

    state    = (caches, txns, dirs, net)
    caches   = tuple[node][block] of INVALID/SHARED/EXCLUSIVE
    txns     = tuple[node][block] of NO_TXN/READ_TXN/WRITE_TXN
    dirs     = tuple[block] of (owner, sharers, active, queue)
    active   = None | (request, pending, final_owner, final_sharers, reply)
    request  = (requester, is_write, was_upgrade, is_local, fresh)
    pending  = sorted tuple of (dst, mtype, rstale)
    queue    = tuple of request
    net      = sorted tuple of (message, count), count in 1..dup_cap
    message  = (src, dst, mtype, block, requester, stale, rstale)

Mutations: the battery in :mod:`repro.mc.mutations` proves the checker
is not vacuous by seeding protocol bugs at the exact handler sites the
model mirrors; each ``Model(config, mutation=name)`` hook below is one
such bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..protocol.messages import MessageType

# Cache states / transaction kinds (plain ints keep states compact).
INVALID, SHARED, EXCLUSIVE = 0, 1, 2
NO_TXN, READ_TXN, WRITE_TXN = 0, 1, 2
#: "no node" marker for owner / final_owner / requester fields.
NOBODY = -1
#: "no reply" marker for a transaction's reply type.
NO_REPLY = -1

GET_RO_REQUEST = int(MessageType.GET_RO_REQUEST)
GET_RW_REQUEST = int(MessageType.GET_RW_REQUEST)
UPGRADE_REQUEST = int(MessageType.UPGRADE_REQUEST)
INVAL_RO_RESPONSE = int(MessageType.INVAL_RO_RESPONSE)
INVAL_RW_RESPONSE = int(MessageType.INVAL_RW_RESPONSE)
DOWNGRADE_RESPONSE = int(MessageType.DOWNGRADE_RESPONSE)
GET_RO_RESPONSE = int(MessageType.GET_RO_RESPONSE)
GET_RW_RESPONSE = int(MessageType.GET_RW_RESPONSE)
UPGRADE_RESPONSE = int(MessageType.UPGRADE_RESPONSE)
INVAL_RO_REQUEST = int(MessageType.INVAL_RO_REQUEST)
INVAL_RW_REQUEST = int(MessageType.INVAL_RW_REQUEST)
DOWNGRADE_REQUEST = int(MessageType.DOWNGRADE_REQUEST)
FWD_GET_RO_REQUEST = int(MessageType.FWD_GET_RO_REQUEST)
FWD_GET_RW_REQUEST = int(MessageType.FWD_GET_RW_REQUEST)
REVISION = int(MessageType.REVISION)

#: Cache -> directory request types.
REQUEST_TYPES = frozenset((GET_RO_REQUEST, GET_RW_REQUEST, UPGRADE_REQUEST))
#: Directory -> cache data responses.
RESPONSE_TYPES = frozenset((GET_RO_RESPONSE, GET_RW_RESPONSE, UPGRADE_RESPONSE))
#: Collection-round messages a directory re-sends on timeout.
ROUND_TYPES = frozenset(
    (
        INVAL_RO_REQUEST,
        INVAL_RW_REQUEST,
        DOWNGRADE_REQUEST,
        FWD_GET_RO_REQUEST,
        FWD_GET_RW_REQUEST,
    )
)
#: Origin-style forwarded requests (carry a requester and its seq bit).
FWD_TYPES = frozenset((FWD_GET_RO_REQUEST, FWD_GET_RW_REQUEST))
#: Acknowledgments that retire a pending collection entry.
ACK_TYPES = frozenset(
    (INVAL_RO_RESPONSE, INVAL_RW_RESPONSE, DOWNGRADE_RESPONSE, REVISION)
)

# Tuple field indices (see the module docstring for the layouts).
M_SRC, M_DST, M_TYPE, M_BLOCK, M_REQ, M_STALE, M_RSTALE = range(7)
R_NODE, R_WRITE, R_UPG, R_LOCAL, R_FRESH = range(5)
T_REQ, T_PEND, T_OWNER, T_SHARERS, T_REPLY = range(5)
D_OWNER, D_SHARERS, D_ACTIVE, D_QUEUE = range(4)

#: Seeded protocol bugs the mutation battery proves detectable.
KNOWN_MUTATIONS = frozenset(
    {
        "drop-ack",
        "skip-inval",
        "wrong-owner",
        "stale-response-accept",
        "lost-writeback",
        "duplicate-grant",
        "premature-unblock",
        "no-poison",
        "stale-ack-accept",
        "downgrade-resurrect",
    }
)


@dataclass(frozen=True)
class MCConfig:
    """A model-checking configuration: the machine shape to enumerate."""

    n_nodes: int = 2
    #: Home node of each model block (block b is ``homes[b]``'s page).
    homes: Tuple[int, ...] = (0,)
    half_migratory: bool = True
    forwarding: bool = False
    #: Enable drop/dup fault actions (PR 2's fault model, order-free).
    faults: bool = False
    #: Multiplicity cap of the counter abstraction (the cap means ">=").
    dup_cap: int = 2
    #: Nodes allowed to issue accesses (None = all).
    issuers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigError("need at least two nodes for coherence traffic")
        if not self.homes:
            raise ConfigError("need at least one block to model")
        for home in self.homes:
            if not 0 <= home < self.n_nodes:
                raise ConfigError(
                    f"block home {home} is outside 0..{self.n_nodes - 1}"
                )
        if self.dup_cap < 2:
            raise ConfigError(
                "dup_cap must be >= 2: the counter abstraction needs one "
                "exact multiplicity below the cap"
            )
        if self.forwarding and self.faults:
            raise ConfigError(
                "forwarding under faults is not modeled: a retried forward "
                "keeps the original requester seq (directory_ctrl re-sends "
                "pending_msg verbatim), which the 1-bit staleness quotient "
                "does not capture yet"
            )
        if self.issuers is not None:
            if not self.issuers:
                raise ConfigError("issuers must name at least one node")
            for node in self.issuers:
                if not 0 <= node < self.n_nodes:
                    raise ConfigError(
                        f"issuer {node} is outside 0..{self.n_nodes - 1}"
                    )

    @property
    def n_blocks(self) -> int:
        return len(self.homes)


def _msg(
    src: int,
    dst: int,
    mtype: int,
    block: int,
    requester: int = NOBODY,
    stale: int = 0,
    rstale: int = 0,
) -> tuple:
    return (src, dst, mtype, block, requester, stale, rstale)


class _World:
    """Mutable scratch copy of a state while one action executes."""

    __slots__ = (
        "capof", "inert", "caches", "txns", "dirs", "net", "observes"
    )

    def __init__(self, capof, inert, state: tuple) -> None:
        caches, txns, dirs, net = state
        self.capof = capof
        self.inert = inert
        self.caches = [list(row) for row in caches]
        self.txns = [list(row) for row in txns]
        self.dirs = []
        for owner, sharers, active, queue in dirs:
            thawed = None
            if active is not None:
                req, pend, fo, fs, reply = active
                thawed = [
                    list(req),
                    [list(p) for p in pend],
                    fo,
                    set(fs),
                    reply,
                ]
            self.dirs.append(
                [owner, set(sharers), thawed, [list(q) for q in queue]]
            )
        self.net: Dict[tuple, int] = dict(net)
        self.observes = 0

    def freeze(self) -> tuple:
        dirs = []
        for owner, sharers, active, queue in self.dirs:
            frozen = None
            if active is not None:
                req, pend, fo, fs, reply = active
                frozen = (
                    tuple(req),
                    tuple(sorted(tuple(p) for p in pend)),
                    fo,
                    tuple(sorted(fs)),
                    reply,
                )
            dirs.append(
                (owner, tuple(sorted(sharers)), frozen,
                 tuple(tuple(q) for q in queue))
            )
        return (
            tuple(tuple(row) for row in self.caches),
            tuple(tuple(row) for row in self.txns),
            tuple(dirs),
            tuple(sorted(self.net.items())),
        )

    def send(self, msg: tuple) -> None:
        if self.inert(msg):
            return  # provably dropped on sight: never enqueued
        self.net[msg] = min(self.net.get(msg, 0) + 1, self.capof(msg))

    def remove(self, msg: tuple, keep: int) -> None:
        count = self.net.get(msg)
        if count is None:
            raise ConfigError(f"message not in flight: {msg!r}")
        if keep:
            if count != self.capof(msg):
                raise ConfigError(
                    "keep-delivery is only legal at the multiplicity cap"
                )
            return  # ">= cap" minus one may still be ">= cap"
        if count == 1:
            del self.net[msg]
        else:
            self.net[msg] = count - 1

    def mark(self, pred, *, stale: bool = False, rstale: bool = False) -> None:
        """Set staleness bits on every in-flight message matching ``pred``."""
        moved: Dict[tuple, int] = {}
        for msg in [m for m in self.net if pred(m)]:
            new = list(msg)
            if stale:
                new[M_STALE] = 1
            if rstale:
                new[M_RSTALE] = 1
            new_msg = tuple(new)
            if new_msg != msg:
                moved[new_msg] = moved.get(new_msg, 0) + self.net.pop(msg)
        for msg, count in moved.items():
            if self.inert(msg):
                continue  # went stale and thereby inert: collect it
            self.net[msg] = min(self.net.get(msg, 0) + count, self.capof(msg))


class Model:
    """The protocol's transition relation over frozen state tuples."""

    def __init__(
        self, config: MCConfig, mutation: Optional[str] = None
    ) -> None:
        if mutation is not None and mutation not in KNOWN_MUTATIONS:
            raise ConfigError(
                f"unknown mutation {mutation!r}; known mutations: "
                f"{', '.join(sorted(KNOWN_MUTATIONS))}"
            )
        self.config = config
        self.mutation = mutation
        self.issuers = (
            tuple(config.issuers)
            if config.issuers is not None
            else tuple(range(config.n_nodes))
        )

    # ------------------------------------------------------------------
    # network abstraction knobs
    # ------------------------------------------------------------------

    def capof(self, msg: tuple) -> int:
        """Multiplicity cap of one message variety.

        Stale messages saturate at one ("at least one in flight"): all
        their effects are idempotent, so multiplicity beyond existence
        is unobservable.  Fresh messages use the configured cap.
        """
        return 1 if msg[M_STALE] else self.config.dup_cap

    def inert(self, msg: tuple) -> bool:
        """True for messages the receiver provably drops on sight.

        A stale data response never completes a miss and a stale ack
        never retires a pending entry -- unless the seeded mutation under
        test is precisely "accept the stale one".
        """
        if not msg[M_STALE]:
            return False
        if (
            msg[M_TYPE] in RESPONSE_TYPES
            and self.mutation != "stale-response-accept"
        ):
            return True
        if (
            msg[M_TYPE] in ACK_TYPES
            and self.mutation != "stale-ack-accept"
        ):
            return True
        return False

    # ------------------------------------------------------------------
    # state factory and predicates
    # ------------------------------------------------------------------

    def initial_state(self) -> tuple:
        cfg = self.config
        row = (INVALID,) * cfg.n_blocks
        return (
            (row,) * cfg.n_nodes,
            ((NO_TXN,) * cfg.n_blocks,) * cfg.n_nodes,
            tuple((NOBODY, (), None, ()) for _ in range(cfg.n_blocks)),
            (),
        )

    def has_work(self, state: tuple) -> bool:
        _caches, txns, dirs, _net = state
        if any(txn != NO_TXN for row in txns for txn in row):
            return True
        return any(d[D_ACTIVE] is not None or d[D_QUEUE] for d in dirs)

    def is_quiescent(self, state: tuple) -> bool:
        return not state[3] and not self.has_work(state)

    # ------------------------------------------------------------------
    # guards: the enabled actions of a state
    # ------------------------------------------------------------------

    def actions(self, state: tuple) -> List[tuple]:
        cfg = self.config
        caches, txns, dirs, net = state
        out: List[tuple] = []
        for node in self.issuers:
            for block in range(cfg.n_blocks):
                home = cfg.homes[block]
                if home == node:
                    owner, sharers, active, queue = dirs[block]
                    # The processor serializes: one local request at a
                    # time per (home, block).
                    if (
                        active is not None
                        and active[T_REQ][R_LOCAL]
                        and active[T_REQ][R_NODE] == node
                    ) or any(
                        q[R_LOCAL] and q[R_NODE] == node for q in queue
                    ):
                        continue
                    busy = active is not None
                    for is_write in (0, 1):
                        hit = not busy and (
                            owner == node
                            or (not is_write and node in sharers)
                        )
                        if not hit:
                            out.append(("issue", node, block, is_write))
                else:
                    if txns[node][block] != NO_TXN:
                        continue
                    if caches[node][block] == INVALID:
                        out.append(("issue", node, block, 0))
                    if caches[node][block] != EXCLUSIVE:
                        out.append(("issue", node, block, 1))
        for msg, count in net:
            cap = self.capof(msg)
            out.append(("deliver", msg, 0))
            if count == cap:
                out.append(("deliver", msg, 1))
            if cfg.faults:
                out.append(("drop", msg, 0))
                if count == cap:
                    out.append(("drop", msg, 1))
                if count < cap:
                    out.append(("dup", msg))
        # Timeout retries: always enabled -- even a fault-free machine
        # can time out while queued behind a serialized transaction.
        for node in range(cfg.n_nodes):
            for block in range(cfg.n_blocks):
                if txns[node][block] != NO_TXN:
                    out.append(("cretry", node, block))
        for block in range(cfg.n_blocks):
            active = dirs[block][D_ACTIVE]
            if active is not None and active[T_PEND]:
                out.append(("dretry", block))
        return out

    # ------------------------------------------------------------------
    # the transition function
    # ------------------------------------------------------------------

    def step(self, state: tuple, action: tuple) -> tuple:
        """Apply ``action`` to ``state``; pure and deterministic."""
        return self.apply(state, action)[0]

    def apply(self, state: tuple, action: tuple) -> Tuple[tuple, int]:
        """Apply ``action``; returns ``(next_state, observations)``.

        ``observations`` is the number of predictor observations the
        action emits (exactly one per delivery, zero otherwise) -- the
        explorer checks this accounting on every transition.
        """
        world = _World(self.capof, self.inert, state)
        kind = action[0]
        if kind == "issue":
            self._do_issue(world, action[1], action[2], action[3])
        elif kind == "deliver":
            self._do_deliver(world, action[1], action[2])
        elif kind == "drop":
            if not self.config.faults:
                raise ConfigError("drop action without faults enabled")
            world.remove(action[1], action[2])
        elif kind == "dup":
            if not self.config.faults:
                raise ConfigError("dup action without faults enabled")
            if action[1] not in world.net:
                raise ConfigError(f"message not in flight: {action[1]!r}")
            world.send(action[1])
        elif kind == "cretry":
            if world.txns[action[1]][action[2]] == NO_TXN:
                raise ConfigError("cache retry with no outstanding miss")
            self._reissue(world, action[1], action[2])
        elif kind == "dretry":
            self._do_dir_retry(world, action[1])
        else:
            raise ConfigError(f"unknown model action {action!r}")
        return world.freeze(), world.observes

    # ------------------------------------------------------------------
    # processor-side actions
    # ------------------------------------------------------------------

    def _do_issue(
        self, world: _World, node: int, block: int, is_write: int
    ) -> None:
        home = self.config.homes[block]
        if home == node:
            # Home-local access through the directory (no cache txn).
            request = [node, is_write, 0, 1, 1]
            self._admit(world, block, request)
            return
        if world.txns[node][block] != NO_TXN:
            raise ConfigError("issue with a transaction already outstanding")
        world.txns[node][block] = WRITE_TXN if is_write else READ_TXN
        self._reissue(world, node, block)

    def _reissue(self, world: _World, node: int, block: int) -> None:
        """Send a fresh-attempt request, stranding the previous attempt.

        Mirrors ``CacheController._issue`` taking a new seq: everything
        still in flight for the old attempt can no longer match, so its
        staleness bits flip, and the request type is recomputed from the
        *current* cache state (an upgrade whose copy was invalidated
        becomes a full write miss).
        """
        self._supersede(world, node, block)
        is_write = world.txns[node][block] == WRITE_TXN
        state = world.caches[node][block]
        if is_write and state == SHARED:
            mtype = UPGRADE_REQUEST
        elif is_write:
            mtype = GET_RW_REQUEST
        else:
            mtype = GET_RO_REQUEST
        world.send(_msg(node, self.config.homes[block], mtype, block))

    def _supersede(self, world: _World, node: int, block: int) -> None:
        """Flip staleness on everything aimed at ``node``'s old attempt."""
        world.mark(
            lambda m: m[M_BLOCK] == block
            and (
                (m[M_SRC] == node and m[M_TYPE] in REQUEST_TYPES)
                or (m[M_DST] == node and m[M_TYPE] in RESPONSE_TYPES)
            ),
            stale=True,
        )
        world.mark(
            lambda m: m[M_BLOCK] == block
            and m[M_REQ] == node
            and m[M_TYPE] in FWD_TYPES,
            rstale=True,
        )
        entry = world.dirs[block]
        active = entry[D_ACTIVE]
        if active is not None:
            request = active[T_REQ]
            if not request[R_LOCAL] and request[R_NODE] == node:
                request[R_FRESH] = 0
            if request[R_NODE] == node:
                for pend in active[T_PEND]:
                    if pend[1] in FWD_TYPES:
                        pend[2] = 1
        for queued in entry[D_QUEUE]:
            if not queued[R_LOCAL] and queued[R_NODE] == node:
                queued[R_FRESH] = 0

    def _poison(self, world: _World, node: int, block: int) -> None:
        if world.txns[node][block] == NO_TXN:
            return
        if self.mutation == "no-poison":
            return  # seeded bug: responses to revoked attempts install
        self._reissue(world, node, block)

    def _cache_complete(
        self, world: _World, node: int, block: int, new_state: int
    ) -> None:
        world.caches[node][block] = new_state
        world.txns[node][block] = NO_TXN
        # Leftover duplicates aimed at the finished attempt can no
        # longer match any seq -- the abstraction sees them stale.
        self._supersede(world, node, block)

    # ------------------------------------------------------------------
    # directory-side machinery
    # ------------------------------------------------------------------

    def _admit(self, world: _World, block: int, request: list) -> None:
        entry = world.dirs[block]
        if entry[D_ACTIVE] is not None:
            if self._merge(world, block, request):
                return
            entry[D_QUEUE].append(request)
            return
        self._start_chain(world, block, request)

    def _merge(self, world: _World, block: int, request: list) -> bool:
        """Fold an at-least-once duplicate request into its admission."""
        if request[R_LOCAL]:
            return False
        entry = world.dirs[block]
        active = entry[D_ACTIVE][T_REQ]
        if not active[R_LOCAL] and active[R_NODE] == request[R_NODE]:
            active[R_FRESH] = request[R_FRESH]
            active[R_UPG] = request[R_UPG]
            return True
        for queued in entry[D_QUEUE]:
            if not queued[R_LOCAL] and queued[R_NODE] == request[R_NODE]:
                queued[R_FRESH] = request[R_FRESH]
                queued[R_UPG] = request[R_UPG]
                return True
        return False

    def _start_chain(self, world: _World, block: int, request: list) -> None:
        """``_start`` plus the finish-pops-the-queue cascade."""
        entry = world.dirs[block]
        while True:
            if self._start_one(world, block, request):
                return
            if entry[D_QUEUE]:
                request = entry[D_QUEUE].pop(0)
                continue
            return

    def _start_one(self, world: _World, block: int, request: list) -> bool:
        """Start serving ``request``; True iff a collection went active."""
        entry = world.dirs[block]
        home = self.config.homes[block]
        owner, sharers = entry[D_OWNER], entry[D_SHARERS]
        requester = request[R_NODE]
        if not request[R_LOCAL]:
            # Idempotent re-grant of an already-served request.
            reply = None
            if owner == requester:
                reply = GET_RW_RESPONSE
            elif not request[R_WRITE] and requester in sharers:
                reply = (
                    GET_RW_RESPONSE
                    if self.mutation == "duplicate-grant"
                    else GET_RO_RESPONSE
                )
            if reply is not None:
                world.send(
                    _msg(home, requester, reply, block,
                         stale=0 if request[R_FRESH] else 1)
                )
                return False
        pending: List[list] = []
        if request[R_WRITE]:
            final = self._start_write(world, block, request, pending)
        else:
            final = self._start_read(world, block, request, pending)
        final_owner, final_sharers, reply = final
        txn = [request, pending, final_owner, set(final_sharers), reply]
        if pending:
            entry[D_ACTIVE] = txn
            return True
        self._finish(world, block, txn)
        return False

    def _send_round(
        self, world: _World, block: int, pending: List[list],
        dst: int, mtype: int,
    ) -> None:
        world.send(_msg(self.config.homes[block], dst, mtype, block))
        pending.append([dst, mtype, 0])

    def _send_forward(
        self, world: _World, block: int, request: list,
        pending: List[list], mtype: int, owner: int,
    ) -> None:
        # The owner answers the requester directly, stamping the
        # response with the requester's own attempt bit (rstale).
        rstale = 0 if request[R_FRESH] else 1
        world.send(
            (self.config.homes[block], owner, mtype, block,
             request[R_NODE], 0, rstale)
        )
        pending.append([owner, mtype, rstale])

    def _start_read(
        self, world: _World, block: int, request: list, pending: List[list]
    ) -> tuple:
        cfg = self.config
        home = cfg.homes[block]
        entry = world.dirs[block]
        owner, sharers = entry[D_OWNER], entry[D_SHARERS]
        requester = request[R_NODE]
        if (
            cfg.forwarding
            and owner != NOBODY
            and owner != home
            and not request[R_LOCAL]
        ):
            self._send_forward(
                world, block, request, pending, FWD_GET_RO_REQUEST, owner
            )
            return NOBODY, {owner, requester}, NO_REPLY
        reply = NO_REPLY if request[R_LOCAL] else GET_RO_RESPONSE
        if owner != NOBODY:
            if cfg.half_migratory:
                final_sharers = {requester}
                round_type = INVAL_RW_REQUEST
            else:
                final_sharers = {owner, requester}
                round_type = DOWNGRADE_REQUEST
            if owner != home:  # the home's own copy is adjusted silently
                self._send_round(world, block, pending, owner, round_type)
            return NOBODY, final_sharers, reply
        return NOBODY, set(sharers) | {requester}, reply

    def _start_write(
        self, world: _World, block: int, request: list, pending: List[list]
    ) -> tuple:
        cfg = self.config
        home = cfg.homes[block]
        entry = world.dirs[block]
        owner, sharers = entry[D_OWNER], entry[D_SHARERS]
        requester = request[R_NODE]
        if (
            cfg.forwarding
            and owner != NOBODY
            and owner != home
            and not sharers
            and not request[R_LOCAL]
        ):
            self._send_forward(
                world, block, request, pending, FWD_GET_RW_REQUEST, owner
            )
            return requester, set(), NO_REPLY
        if request[R_LOCAL]:
            reply = NO_REPLY
        elif request[R_UPG] and requester in sharers:
            reply = UPGRADE_RESPONSE
        else:
            reply = GET_RW_RESPONSE
        final_owner = requester
        if self.mutation == "wrong-owner" and requester != home:
            final_owner = home  # seeded bug: ownership recorded wrong
        targets = sorted(
            s for s in sharers if s != requester and s != home
        )
        if self.mutation == "skip-inval" and targets:
            targets = targets[:-1]  # seeded bug: one sharer never invalidated
        for sharer in targets:
            self._send_round(world, block, pending, sharer, INVAL_RO_REQUEST)
        if owner != NOBODY and owner != home:
            self._send_round(world, block, pending, owner, INVAL_RW_REQUEST)
        return final_owner, set(), reply

    def _finish(self, world: _World, block: int, txn: list) -> None:
        entry = world.dirs[block]
        request = txn[T_REQ]
        entry[D_OWNER] = txn[T_OWNER]
        entry[D_SHARERS] = set(txn[T_SHARERS])
        if request[R_LOCAL]:
            return  # done_cb: the local access completes, no message
        if txn[T_REPLY] != NO_REPLY:
            world.send(
                _msg(
                    self.config.homes[block],
                    request[R_NODE],
                    txn[T_REPLY],
                    block,
                    stale=0 if request[R_FRESH] else 1,
                )
            )

    def _dir_ack(
        self, world: _World, block: int, src: int, stale: int
    ) -> None:
        entry = world.dirs[block]
        active = entry[D_ACTIVE]
        if active is None:
            return  # stale ack, dropped
        pending = active[T_PEND]
        index = next(
            (i for i, p in enumerate(pending) if p[0] == src), None
        )
        if index is None:
            return
        if stale and self.mutation != "stale-ack-accept":
            return
        pending.pop(index)
        # The retired entry's pending seq is gone: any other round copy
        # to (or ack copy from) this node can no longer match.
        home = self.config.homes[block]
        world.mark(
            lambda m: m[M_BLOCK] == block
            and (
                (m[M_SRC] == home and m[M_DST] == src
                 and m[M_TYPE] in ROUND_TYPES)
                or (m[M_SRC] == src and m[M_DST] == home
                    and m[M_TYPE] in ACK_TYPES)
            ),
            stale=True,
        )
        if self.mutation == "premature-unblock" and pending:
            del pending[:]  # seeded bug: unblock after the first ack
        if not pending:
            entry[D_ACTIVE] = None
            self._finish(world, block, active)
            if entry[D_ACTIVE] is None and entry[D_QUEUE]:
                self._start_chain(world, block, entry[D_QUEUE].pop(0))

    def _do_dir_retry(self, world: _World, block: int) -> None:
        entry = world.dirs[block]
        active = entry[D_ACTIVE]
        if active is None or not active[T_PEND]:
            raise ConfigError("directory retry with no pending round")
        home = self.config.homes[block]
        dsts = {p[0] for p in active[T_PEND]}
        # Fresh seqs for the whole round: in-flight copies of the old
        # round and their acks can no longer match.
        world.mark(
            lambda m: m[M_BLOCK] == block
            and (
                (m[M_SRC] == home and m[M_DST] in dsts
                 and m[M_TYPE] in ROUND_TYPES)
                or (m[M_DST] == home and m[M_SRC] in dsts
                    and m[M_TYPE] in ACK_TYPES)
            ),
            stale=True,
        )
        requester = active[T_REQ][R_NODE]
        for dst, mtype, rstale in [tuple(p) for p in active[T_PEND]]:
            if mtype in FWD_TYPES:
                # Re-sent verbatim apart from the seq: the requester_seq
                # (and so rstale) is the one frozen at txn start.
                world.send((home, dst, mtype, block, requester, 0, rstale))
            else:
                world.send(_msg(home, dst, mtype, block))

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _do_deliver(self, world: _World, msg: tuple, keep: int) -> None:
        world.remove(msg, keep)
        world.observes += 1  # the collector records every delivery
        src, dst, mtype, block, requester, stale, rstale = msg
        if mtype in REQUEST_TYPES:
            request = [
                src,
                0 if mtype == GET_RO_REQUEST else 1,
                1 if mtype == UPGRADE_REQUEST else 0,
                0,
                0 if stale else 1,
            ]
            self._admit(world, block, request)
        elif mtype in ACK_TYPES:
            self._dir_ack(world, block, src, stale)
        elif mtype in RESPONSE_TYPES:
            if world.txns[dst][block] == NO_TXN:
                return  # stale/duplicate response, dropped
            if stale and self.mutation != "stale-response-accept":
                return
            self._cache_complete(
                world, dst, block,
                SHARED if mtype == GET_RO_RESPONSE else EXCLUSIVE,
            )
        elif mtype == INVAL_RO_REQUEST:
            world.caches[dst][block] = INVALID
            if self.mutation != "drop-ack":
                world.send(
                    _msg(dst, src, INVAL_RO_RESPONSE, block, stale=stale)
                )
            self._poison(world, dst, block)
        elif mtype == INVAL_RW_REQUEST:
            if self.mutation != "lost-writeback":
                world.caches[dst][block] = INVALID
            world.send(
                _msg(dst, src, INVAL_RW_RESPONSE, block, stale=stale)
            )
            self._poison(world, dst, block)
        elif mtype == DOWNGRADE_REQUEST:
            if world.caches[dst][block] == EXCLUSIVE:
                world.caches[dst][block] = SHARED
            elif self.mutation == "downgrade-resurrect":
                world.caches[dst][block] = SHARED  # seeded bug
            # else: duplicate/stale downgrade acked without touching state
            world.send(
                _msg(dst, src, DOWNGRADE_RESPONSE, block, stale=stale)
            )
            self._poison(world, dst, block)
        elif mtype in FWD_TYPES:
            if mtype == FWD_GET_RO_REQUEST:
                if world.caches[dst][block] == EXCLUSIVE:
                    world.caches[dst][block] = SHARED
                response = GET_RO_RESPONSE
            else:
                world.caches[dst][block] = INVALID
                response = GET_RW_RESPONSE
            world.send(_msg(dst, requester, response, block, stale=rstale))
            world.send(_msg(dst, src, REVISION, block, stale=stale))
            self._poison(world, dst, block)
        else:  # pragma: no cover - the vocabulary above is total
            raise ConfigError(f"unhandled message type {mtype}")

    # ------------------------------------------------------------------
    # invariants (the oracles of repro.explore, per state)
    # ------------------------------------------------------------------

    def check_state(self, state: tuple) -> Optional[Tuple[str, str]]:
        """The coherence invariant of ``Machine._check_coherence``.

        Returns ``(oracle, detail)`` for the first violation, or None.
        """
        caches, _txns, dirs, _net = state
        cfg = self.config
        for block in range(cfg.n_blocks):
            home = cfg.homes[block]
            owner, sharers, active, _queue = dirs[block]
            if owner != NOBODY and sharers:
                return (
                    "coherence",
                    f"block {block}: directory entry has owner P{owner} "
                    f"and sharers {list(sharers)}",
                )
            pending_owner = active[T_OWNER] if active is not None else NOBODY
            pending_sharers = active[T_SHARERS] if active is not None else ()
            exclusive = None
            for node in range(cfg.n_nodes):
                if node == home:
                    continue  # the home's copy *is* the directory entry
                held = caches[node][block]
                if held == EXCLUSIVE:
                    if exclusive is not None:
                        return (
                            "coherence",
                            f"block {block} is exclusive at both "
                            f"P{exclusive} and P{node}",
                        )
                    exclusive = node
                    if owner != node and pending_owner != node:
                        return (
                            "coherence",
                            f"P{node} holds block {block} exclusively but "
                            f"the directory records owner "
                            f"{owner if owner != NOBODY else None}",
                        )
                elif held == SHARED:
                    if (
                        node not in sharers
                        and owner != node
                        and node not in pending_sharers
                    ):
                        return (
                            "coherence",
                            f"P{node} holds a shared copy of block {block} "
                            f"the directory does not know about",
                        )
        return None


# ----------------------------------------------------------------------
# serialization (golden fingerprints, counterexample files)
# ----------------------------------------------------------------------

def encode_state(state: tuple) -> list:
    """State tuple -> JSON-serializable nested lists."""
    caches, txns, dirs, net = state
    encoded_dirs = []
    for owner, sharers, active, queue in dirs:
        enc_active = None
        if active is not None:
            req, pend, fo, fs, reply = active
            enc_active = [
                list(req), [list(p) for p in pend], fo, list(fs), reply,
            ]
        encoded_dirs.append(
            [owner, list(sharers), enc_active, [list(q) for q in queue]]
        )
    return [
        [list(row) for row in caches],
        [list(row) for row in txns],
        encoded_dirs,
        [[list(m), count] for m, count in net],
    ]


def decode_state(data: list) -> tuple:
    """Inverse of :func:`encode_state` (canonical tuples restored)."""
    caches = tuple(tuple(row) for row in data[0])
    txns = tuple(tuple(row) for row in data[1])
    dirs = []
    for owner, sharers, active, queue in data[2]:
        dec_active = None
        if active is not None:
            req, pend, fo, fs, reply = active
            dec_active = (
                tuple(req),
                tuple(sorted(tuple(p) for p in pend)),
                fo,
                tuple(sorted(fs)),
                reply,
            )
        dirs.append(
            (owner, tuple(sorted(sharers)), dec_active,
             tuple(tuple(q) for q in queue))
        )
    net = tuple(sorted((tuple(m), count) for m, count in data[3]))
    return (caches, txns, tuple(dirs), net)
