"""``repro-check``: the protocol model checker from the shell.

Three subcommands (plus ``mutations`` to inspect the battery):

* ``enumerate`` -- exhaustively enumerate the model's reachable state
  space for a configuration, checking coherence, liveness, and
  predictor-observation accounting at every state.  With ``--mutation``
  the model carries a seeded bug, and a violation (with its shortest
  counterexample path) is expected.  Exit 0 means the space is clean;
  3 means a violation was found (and written out with ``--out``);
  1 is an error (including an incomplete enumeration).
* ``cross-validate`` -- drive the live simulator through adversarial
  episodes and assert every reachable abstract state is model-reachable.
  Exit 3 means the simulator escaped the model.
* ``replay-counterexample`` -- re-find a mutation's counterexample,
  replay it concretely against the live-patched simulator, shrink the
  failure, and save a ``.repro`` artifact.  Exit 3 means the violation
  reproduced and the artifact was saved (mirroring ``repro-explore``).

Examples::

    repro-check enumerate --nodes 2
    repro-check enumerate --mutation skip-inval --out skip-inval.json
    repro-check cross-validate --episodes 8
    repro-check replay-counterexample lost-writeback --out lost.repro
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ConfigError, ReproError
from .crossval import concretize, cross_validate
from .explorer import (
    DEFAULT_MAX_STATES,
    ExploreResult,
    Violation,
    encode_action,
    enumerate_space,
)
from .model import MCConfig, Model
from .mutations import LIVE_PATCHES, MUTATIONS, live_patch

#: Exit status for "the checker found a violation" (enumerate) or "the
#: counterexample reproduced and was saved" (replay-counterexample) --
#: the same value ``repro-explore`` uses, so scripts can tell "found
#: a bug" from "broke".
EXIT_VIOLATIONS = 3


def _config_from(args: argparse.Namespace) -> MCConfig:
    homes = tuple(int(part) for part in args.homes.split(","))
    return MCConfig(
        n_nodes=args.nodes,
        homes=homes,
        half_migratory=not args.non_migratory,
        forwarding=args.forwarding,
        faults=args.faults,
        dup_cap=args.dup_cap,
    )


def _config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--nodes", type=int, default=2, help="model nodes (default 2)"
    )
    parser.add_argument(
        "--homes",
        default="0",
        metavar="N,N,...",
        help="home node per model block (default one block homed at 0)",
    )
    parser.add_argument(
        "--non-migratory",
        action="store_true",
        help="read misses to an owned block invalidate instead of "
        "downgrading",
    )
    parser.add_argument(
        "--forwarding",
        action="store_true",
        help="Origin-style request forwarding",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="include message drop and duplication actions",
    )
    parser.add_argument(
        "--dup-cap",
        type=int,
        default=2,
        help="network counter-abstraction saturation (default 2)",
    )


def _violation_json(result: ExploreResult, violation: Violation) -> dict:
    config = result.config
    return {
        "config": {
            "n_nodes": config.n_nodes,
            "homes": list(config.homes),
            "half_migratory": config.half_migratory,
            "forwarding": config.forwarding,
            "faults": config.faults,
            "dup_cap": config.dup_cap,
        },
        "mutation": result.mutation,
        "oracle": violation.oracle,
        "detail": violation.detail,
        "path": [encode_action(action) for action in violation.path],
    }


def _print_result(result: ExploreResult) -> None:
    print(
        f"{result.n_states} states, {result.n_transitions} transitions"
        + ("" if result.complete else "  [INCOMPLETE]")
    )
    print(f"fingerprint {result.fingerprint}")
    for violation in result.violations:
        print(f"VIOLATION [{violation.oracle}] {violation.detail}")
        for step, action in enumerate(violation.path):
            print(f"  {step:3d}  {action}")


def _cmd_enumerate(args: argparse.Namespace) -> int:
    model = Model(_config_from(args), args.mutation)
    result = enumerate_space(model, max_states=args.max_states)
    _print_result(result)
    if not result.complete:
        print(
            f"error: frontier still open after {args.max_states} states; "
            "raise --max-states or shrink the configuration",
            file=sys.stderr,
        )
        return 1
    if result.violations:
        if args.out is not None:
            payload = _violation_json(result, result.violations[0])
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"counterexample written to {args.out}")
        return EXIT_VIOLATIONS
    return 0


def _cmd_cross_validate(args: argparse.Namespace) -> int:
    report = cross_validate(
        config=_config_from(args),
        episodes=args.episodes,
        seed=args.seed,
        iterations=args.iterations,
        strategy=args.strategy,
    )
    print(
        f"{report.episodes} episode(s), {report.samples} samples, "
        f"{report.distinct} distinct abstract states "
        f"(model has {report.model_states})"
    )
    for episode, state in report.unmatched:
        print(f"UNMATCHED (episode {episode}): {state}")
    if report.unmatched:
        print(
            f"{len(report.unmatched)} simulator-reachable state(s) "
            "are not model-reachable"
        )
        return EXIT_VIOLATIONS
    print("every sampled state is model-reachable")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        mutation = MUTATIONS[args.mutation]
    except KeyError:
        raise ConfigError(
            f"unknown mutation {args.mutation!r}; available: "
            + ", ".join(sorted(MUTATIONS))
        ) from None
    if args.mutation not in LIVE_PATCHES:
        raise ConfigError(
            f"mutation {args.mutation!r} has no live simulator patch; "
            "replayable mutations: " + ", ".join(sorted(LIVE_PATCHES))
        )
    model = Model(mutation.config, mutation.name)
    result = enumerate_space(model)
    if not result.violations:
        print(
            f"error: mutation {mutation.name!r} produced no model "
            "violation",
            file=sys.stderr,
        )
        return 1
    violation = result.violations[0]
    print(
        f"model counterexample [{violation.oracle}] "
        f"{len(violation.path)} action(s)"
    )
    with live_patch(mutation.name):
        round_trip = concretize(
            violation,
            model,
            out_path=args.out,
            shrink_checks=args.max_checks,
            run_shrink=not args.no_shrink,
        )
    print(f"reproduced concretely: oracle={round_trip.oracle}")
    print(f"  {round_trip.message}")
    if round_trip.shrink_result is not None:
        print(
            f"shrunk {round_trip.shrink_result.original_decisions} -> "
            f"{round_trip.shrink_result.final_decisions} decisions"
        )
    if round_trip.artifact_path is not None:
        print(f"artifact saved to {round_trip.artifact_path}")
    return EXIT_VIOLATIONS


def _cmd_mutations(args: argparse.Namespace) -> int:
    for name in sorted(MUTATIONS):
        mutation = MUTATIONS[name]
        live = "  [live patch]" if name in LIVE_PATCHES else ""
        print(f"{name}  ({mutation.expected_oracle}){live}")
        if args.verbose:
            print(f"    {mutation.description}")
            print(f"    config: {mutation.config}")
            print(f"    {mutation.scenario}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "exhaustive protocol model checker for the Stache/Cosmos "
            "simulator: reachable-space enumeration with invariant "
            "oracles, simulator cross-validation, and concrete "
            "counterexample replay"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enum = sub.add_parser(
        "enumerate",
        help="enumerate the reachable space, checking every oracle",
    )
    _config_args(enum)
    enum.add_argument(
        "--mutation",
        default=None,
        choices=sorted(MUTATIONS),
        help="seed this protocol bug into the model",
    )
    enum.add_argument(
        "--max-states",
        type=int,
        default=DEFAULT_MAX_STATES,
        help="enumeration safety valve",
    )
    enum.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the first counterexample as JSON",
    )
    enum.set_defaults(func=_cmd_enumerate)

    xval = sub.add_parser(
        "cross-validate",
        help="check simulator-reachable states against the model",
    )
    _config_args(xval)
    xval.add_argument("--episodes", type=int, default=4)
    xval.add_argument("--seed", type=int, default=0)
    xval.add_argument("--iterations", type=int, default=3)
    xval.add_argument("--strategy", default="random-walk")
    xval.set_defaults(func=_cmd_cross_validate)

    rep = sub.add_parser(
        "replay-counterexample",
        help="replay a mutation's counterexample on the live simulator",
    )
    rep.add_argument("mutation", choices=sorted(MUTATIONS))
    rep.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="where to save the shrunk .repro artifact",
    )
    rep.add_argument(
        "--max-checks",
        type=int,
        default=200,
        help="shrink replay budget (default 200)",
    )
    rep.add_argument(
        "--no-shrink",
        action="store_true",
        help="save the raw reproduction without shrinking",
    )
    rep.set_defaults(func=_cmd_replay)

    mut = sub.add_parser(
        "mutations", help="list the seeded-bug battery"
    )
    mut.add_argument("--verbose", "-v", action="store_true")
    mut.set_defaults(func=_cmd_mutations)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
