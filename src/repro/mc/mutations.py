"""The mutation battery: seeded protocol bugs the checker must catch.

A model checker whose oracles never fire proves nothing.  Each entry
below names a mutation hook compiled into :class:`repro.mc.model.Model`
(``Model(config, mutation=name)``), the configuration under which the
bug is reachable, and the oracle expected to report it;
``tests/mc/test_mutations.py`` asserts every one is detected.

Two mutations also exist as *live* patches
(:func:`live_patch`) -- monkey-patches of the real controllers that
introduce the same bug into the simulator -- so the battery can prove
the full round trip: the model finds a counterexample, the path replays
concretely against the patched simulator, the machine's own invariant
checker fires, and the failure shrinks into a ``.repro`` artifact
through the PR 5 pipeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError
from ..protocol.cache_ctrl import CacheController
from ..protocol.directory_ctrl import DirectoryController
from ..protocol.messages import MessageType
from ..protocol.state import CacheState
from .model import KNOWN_MUTATIONS, MCConfig

_TWO_NODE = MCConfig(n_nodes=2, homes=(0,))
_TWO_NODE_FAULTS = MCConfig(n_nodes=2, homes=(0,), faults=True)


@dataclass(frozen=True)
class Mutation:
    """One seeded protocol bug and how the checker is expected to see it."""

    name: str
    description: str
    #: Oracle expected to fire: "coherence" or "liveness".
    expected_oracle: str
    #: Smallest configuration under which the bug is reachable.
    config: MCConfig
    #: How the bug manifests (the scenario the counterexample encodes).
    scenario: str


MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="drop-ack",
            description="the cache never acknowledges INVAL_RO",
            expected_oracle="liveness",
            config=_TWO_NODE,
            scenario=(
                "the directory's invalidation round can never complete; "
                "retries re-send the inval forever and the write "
                "transaction livelocks"
            ),
        ),
        Mutation(
            name="skip-inval",
            description="a write transaction skips one sharer's INVAL_RO",
            expected_oracle="coherence",
            config=_TWO_NODE,
            scenario=(
                "the skipped sharer keeps a shared copy the directory "
                "no longer records after the write completes"
            ),
        ),
        Mutation(
            name="wrong-owner",
            description="ownership is recorded to the home, not the writer",
            expected_oracle="coherence",
            config=_TWO_NODE,
            scenario=(
                "the writer holds the block exclusively while the "
                "directory names the home as owner"
            ),
        ),
        Mutation(
            name="stale-response-accept",
            description="the cache installs data responses from revoked "
            "attempts",
            expected_oracle="coherence",
            config=_TWO_NODE,
            scenario=(
                "an invalidation poisons an outstanding read, but the "
                "superseded response still installs a shared copy the "
                "directory has already revoked"
            ),
        ),
        Mutation(
            name="lost-writeback",
            description="INVAL_RW is acknowledged without giving up the "
            "exclusive copy",
            expected_oracle="coherence",
            config=_TWO_NODE,
            scenario=(
                "the old owner keeps writing a block whose ownership "
                "the directory has handed to someone else"
            ),
        ),
        Mutation(
            name="duplicate-grant",
            description="re-granting a read request replies with "
            "exclusive data",
            expected_oracle="coherence",
            config=_TWO_NODE_FAULTS,
            scenario=(
                "a duplicated read request is re-granted read-write; the "
                "requester installs an exclusive copy the directory "
                "records as merely shared"
            ),
        ),
        Mutation(
            name="premature-unblock",
            description="the directory unblocks after the first ack of a "
            "multi-sharer round",
            expected_oracle="coherence",
            config=MCConfig(n_nodes=3, homes=(0,)),
            scenario=(
                "with two sharers to invalidate, the first ack finishes "
                "the write while the second sharer still holds a copy"
            ),
        ),
        Mutation(
            name="no-poison",
            description="an invalidation during an outstanding miss does "
            "not re-issue the attempt",
            expected_oracle="coherence",
            config=_TWO_NODE,
            scenario=(
                "the attempt keeps its old sequence number, so the "
                "response to the revoked attempt still matches and "
                "installs a copy the directory gave away (the model's "
                "form of `retry without fresh-seq backoff discipline`)"
            ),
        ),
        Mutation(
            name="stale-ack-accept",
            description="the directory retires pending entries on acks "
            "from superseded rounds",
            expected_oracle="coherence",
            config=_TWO_NODE_FAULTS,
            scenario=(
                "a duplicated ack from an earlier invalidation round "
                "satisfies a later round whose invalidation has not "
                "reached the sharer yet"
            ),
        ),
        Mutation(
            name="downgrade-resurrect",
            description="a duplicate DOWNGRADE promotes an invalid copy "
            "to shared",
            expected_oracle="coherence",
            config=MCConfig(
                n_nodes=2, homes=(0,), half_migratory=False, faults=True
            ),
            scenario=(
                "a stale downgrade duplicate arrives after the copy was "
                "invalidated and resurrects it as shared"
            ),
        ),
    )
}

# The registry and the model's hook list must agree exactly.
assert set(MUTATIONS) == set(KNOWN_MUTATIONS)


# ----------------------------------------------------------------------
# live patches (concrete round-trip)
# ----------------------------------------------------------------------


@contextmanager
def _patched(cls, attr, replacement):
    original = getattr(cls, attr)
    setattr(cls, attr, replacement)
    try:
        yield
    finally:
        setattr(cls, attr, original)


@contextmanager
def live_lost_writeback():
    """Patch the real cache: ack INVAL_RW but keep the exclusive copy.

    Cache message dispatch goes through the class-level ``_HANDLERS``
    table, which captured the original function object -- so the table
    entry is what gets swapped, not the method attribute.
    """

    def mutated(self, msg):
        state = self.state_of(msg.block)
        if self._recovery is not None:
            if state is not CacheState.EXCLUSIVE:
                self.duplicate_invals_acked += 1
        self._ack(msg, MessageType.INVAL_RW_RESPONSE)
        self._poison_outstanding(msg.block)

    handlers = CacheController._HANDLERS
    original = handlers[MessageType.INVAL_RW_REQUEST]
    handlers[MessageType.INVAL_RW_REQUEST] = mutated
    try:
        yield
    finally:
        handlers[MessageType.INVAL_RW_REQUEST] = original


@contextmanager
def live_wrong_owner():
    """Patch the real directory: record the home as the new owner."""
    original = DirectoryController._start_write

    def mutated(self, block, entry, request):
        txn = original(self, block, entry, request)
        if request.requester != self.node_id:
            txn.final_owner = self.node_id
        return txn

    with _patched(DirectoryController, "_start_write", mutated):
        yield


#: Mutations that exist as live simulator patches too.
LIVE_PATCHES = {
    "lost-writeback": live_lost_writeback,
    "wrong-owner": live_wrong_owner,
}


def live_patch(name: str):
    """Context manager installing mutation ``name`` into the simulator."""
    try:
        return LIVE_PATCHES[name]()
    except KeyError:
        raise ConfigError(
            f"no live patch for mutation {name!r}; available: "
            f"{', '.join(sorted(LIVE_PATCHES))}"
        ) from None
