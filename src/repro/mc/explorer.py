"""Exhaustive enumeration of the model's reachable state space.

:func:`enumerate_space` runs a breadth-first search from
:meth:`repro.mc.model.Model.initial_state`, checking the exploration
oracles (:mod:`repro.explore.oracles`) in their per-state form at every
state:

* **coherence** -- :meth:`Model.check_state` at every reachable state;
* **observes** -- every transition's predictor-observation count must be
  exactly one per delivery and zero otherwise (the accounting the live
  collector is trusted to keep);
* **liveness** -- no reachable state may be unable to drain: every state
  must reach a quiescent state through *helpful* actions alone
  (deliveries and timeout retries -- not new issues, not faults).  A
  state with work but no helpful action is a deadlock; a region with
  helpful actions that can never drain is a livelock.  Both are found by
  backward reachability from the quiescent states.

Because BFS visits states in shortest-path order, the recorded parent
chain of a violating state is already a minimal-length counterexample;
:func:`counterexample_path` rebuilds it as an action list that
:mod:`repro.mc.crossval` can replay on the concrete simulator.

The canonical fingerprint (SHA-256 over the sorted ``repr`` of every
reachable state) pins the protocol: any edit that changes the reachable
space -- intentionally or not -- changes the digest, and the golden
tests under ``tests/data/mc/`` make that loud.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .model import MCConfig, Model

#: Default safety valve: no clean config in the tested range comes close.
DEFAULT_MAX_STATES = 2_000_000


@dataclass(frozen=True)
class Violation:
    """One oracle violation at a reachable model state."""

    oracle: str
    detail: str
    state: tuple
    #: Actions from the initial state to ``state`` (shortest-path).
    path: Tuple[tuple, ...]


@dataclass
class ExploreResult:
    """Everything one exhaustive enumeration learned."""

    config: MCConfig
    mutation: Optional[str]
    n_states: int
    n_transitions: int
    violations: List[Violation]
    fingerprint: str
    #: False when the ``max_states`` valve tripped before the frontier
    #: emptied (counts and fingerprint then cover a prefix only).
    complete: bool
    initial: tuple
    states: FrozenSet[tuple] = field(repr=False)

    @property
    def ok(self) -> bool:
        return self.complete and not self.violations


def fingerprint_states(states) -> str:
    """Canonical SHA-256 digest of a reachable-state set.

    States are nested all-int tuples, so ``repr`` is stable across runs
    and Python versions; sorting makes the digest order-independent.
    """
    digest = hashlib.sha256()
    for line in sorted(repr(state) for state in states):
        digest.update(line.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _helpful(action: tuple) -> bool:
    """Actions that make progress toward quiescence.

    New issues create work, faults destroy or duplicate it; deliveries
    and timeout retries are what the live machine relies on to drain.
    """
    return action[0] in ("deliver", "cretry", "dretry")


def enumerate_space(
    model: Model,
    max_states: int = DEFAULT_MAX_STATES,
    max_violations: int = 1,
) -> ExploreResult:
    """BFS the reachable space of ``model``, checking every oracle.

    Stops expanding once ``max_violations`` violations are recorded (the
    mutation battery needs only the first), and never expands a state
    that itself violates coherence -- a seeded bug's wreckage is not an
    interesting frontier.  The liveness scan runs only on complete,
    coherent enumerations: a truncated or already-broken space cannot
    distinguish a livelock from a missing suffix.
    """
    initial = model.initial_state()
    parents: Dict[tuple, Optional[Tuple[tuple, tuple]]] = {initial: None}
    # Reverse adjacency over helpful edges only, for the liveness scan.
    helpful_preds: Dict[tuple, List[tuple]] = {}
    quiescent: List[tuple] = []
    frontier = deque([initial])
    violations: List[Violation] = []
    n_transitions = 0
    complete = True

    def record(oracle: str, detail: str, state: tuple) -> None:
        violations.append(
            Violation(
                oracle=oracle,
                detail=detail,
                state=state,
                path=counterexample_path(parents, state),
            )
        )

    while frontier:
        if len(parents) > max_states:
            complete = False
            break
        if len(violations) >= max_violations:
            break
        state = frontier.popleft()
        broken = model.check_state(state)
        if broken is not None:
            record(broken[0], broken[1], state)
            continue  # wreckage of a violation is not a frontier
        if model.is_quiescent(state):
            quiescent.append(state)
        actions = model.actions(state)
        if model.has_work(state) and not any(map(_helpful, actions)):
            record(
                "liveness",
                "deadlock: outstanding work but no delivery or retry "
                "is possible",
                state,
            )
            continue
        for action in actions:
            successor, observes = model.apply(state, action)
            n_transitions += 1
            expected = 1 if action[0] == "deliver" else 0
            if observes != expected:
                record(
                    "observes",
                    f"action {action!r} produced {observes} predictor "
                    f"observations, expected {expected}",
                    state,
                )
                continue
            if successor not in parents:
                parents[successor] = (state, action)
                frontier.append(successor)
            if _helpful(action) and successor != state:
                helpful_preds.setdefault(successor, []).append(state)

    states = frozenset(parents)
    if complete and not violations:
        for stuck in _livelocked(states, quiescent, helpful_preds):
            if len(violations) >= max_violations:
                break
            record(
                "liveness",
                "livelock: no sequence of deliveries and retries reaches "
                "a quiescent state",
                stuck,
            )

    return ExploreResult(
        config=model.config,
        mutation=model.mutation,
        n_states=len(states),
        n_transitions=n_transitions,
        violations=violations,
        fingerprint=fingerprint_states(states),
        complete=complete,
        initial=initial,
        states=states,
    )


#: Completed enumerations, keyed by (config, mutation).  Cross-validation
#: and the mc-spot oracle consult the same reachable sets repeatedly;
#: configs are frozen dataclasses, so they key the cache directly.
_SPACE_CACHE: Dict[Tuple[MCConfig, Optional[str]], ExploreResult] = {}


def reachable_space(
    config: MCConfig,
    mutation: Optional[str] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> ExploreResult:
    """Enumerate (once per process) and cache the reachable space."""
    key = (config, mutation)
    cached = _SPACE_CACHE.get(key)
    if cached is None:
        cached = enumerate_space(
            Model(config, mutation), max_states=max_states
        )
        _SPACE_CACHE[key] = cached
    return cached


def _livelocked(
    states: FrozenSet[tuple],
    quiescent: List[tuple],
    helpful_preds: Dict[tuple, List[tuple]],
) -> List[tuple]:
    """States that cannot drain: backward reachability from quiescence."""
    can_drain = set(quiescent)
    frontier = deque(quiescent)
    while frontier:
        state = frontier.popleft()
        for pred in helpful_preds.get(state, ()):
            if pred not in can_drain:
                can_drain.add(pred)
                frontier.append(pred)
    return sorted(states - can_drain, key=repr)


def counterexample_path(
    parents: Dict[tuple, Optional[Tuple[tuple, tuple]]], state: tuple
) -> Tuple[tuple, ...]:
    """Rebuild the action list from the initial state to ``state``."""
    actions: List[tuple] = []
    cursor = state
    while True:
        link = parents[cursor]
        if link is None:
            break
        cursor, action = link
        actions.append(action)
    actions.reverse()
    return tuple(actions)


def replay_path(model: Model, path) -> tuple:
    """Apply a counterexample path from the initial state; final state."""
    state = model.initial_state()
    for action in path:
        state = model.step(state, decode_action(action))
    return state


# ----------------------------------------------------------------------
# action (de)serialization -- counterexample files embed action lists
# ----------------------------------------------------------------------

def encode_action(action: tuple) -> list:
    return [list(part) if isinstance(part, tuple) else part
            for part in action]


def decode_action(action) -> tuple:
    return tuple(tuple(part) if isinstance(part, list) else part
                 for part in action)
