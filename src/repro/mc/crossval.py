"""Cross-validate the model against the live simulator.

Two directions, both required for the model to mean anything:

* **Simulator -> model** (:func:`cross_validate`): drive a real 16-node
  :class:`~repro.sim.machine.Machine` through
  :class:`~repro.explore.network.ExploringNetwork` episodes whose
  workload touches only the projected nodes and blocks, snapshot the
  abstract state after *every* delivery, and assert each one is in the
  model's reachable set.  A state the simulator visits but the model
  cannot reach means the model (or the abstraction) is wrong.

* **Model -> simulator** (:func:`concretize`): take a model
  counterexample -- a shortest action path to an oracle violation found
  under a seeded mutation -- and replay it concretely: the same accesses
  as a recorded workload, the same delivery order enforced by a
  :class:`GuidedPolicy`, the matching live patch installed.  The
  machine's own invariant checker must fire, and the failure must
  shrink into a ``.repro`` artifact through the PR 5 pipeline
  (:mod:`repro.explore.shrink`).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..explore.artifact import ExploreArtifact, save_artifact
from ..explore.network import ExploringNetwork
from ..explore.runner import _execute, episode_seed
from ..explore.shrink import ShrinkResult, shrink
from ..explore.strategies import DEFER_REST, DeliveryPolicy, make_policy
from ..protocol.stache import DEFAULT_OPTIONS, StacheOptions
from ..sim.machine import Machine
from ..sim.params import PAPER_PARAMS
from ..workloads.access import Access
from ..workloads.recorded import RecordedWorkload
from .abstraction import abstract_state
from .explorer import Violation, reachable_space
from .model import MCConfig, Model

#: Deferral budget for guided replay: guidance may have to wait several
#: quanta for the next scripted message to be admitted.
_GUIDED_DEFER_CAP = 64


# ----------------------------------------------------------------------
# scenario plumbing: which real nodes/blocks play the model's roles
# ----------------------------------------------------------------------


def model_block_addr(config: MCConfig, index: int) -> int:
    """The real block address playing model block ``index``.

    Block addresses live in the home's page (``home_of`` is the page
    number modulo the node count), consecutive same-home blocks one
    cache line apart.
    """
    home = config.homes[index]
    offset = sum(
        1 for other in range(index) if config.homes[other] == home
    )
    return (
        home * PAPER_PARAMS.page_bytes
        + offset * PAPER_PARAMS.cache_block_bytes
    )


def scenario_maps(
    config: MCConfig,
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Identity projection: model node ``n`` is real node ``n``."""
    node_map = {node: node for node in range(config.n_nodes)}
    block_map = {
        model_block_addr(config, index): index
        for index in range(config.n_blocks)
    }
    return node_map, block_map


def scenario_workload(
    config: MCConfig,
    seed: int,
    iterations: int = 3,
    max_accesses: int = 3,
) -> RecordedWorkload:
    """A random sparse workload confined to the projected nodes/blocks.

    Only the model's nodes get accesses, and only to the model's block
    addresses -- every other node stays silent, so the projection is
    total for the whole run.
    """
    rng = random.Random(seed)
    addrs = [
        model_block_addr(config, index)
        for index in range(config.n_blocks)
    ]
    phases = []
    for _ in range(iterations):
        streams: List[List[Access]] = [
            [] for _ in range(PAPER_PARAMS.n_nodes)
        ]
        for node in range(config.n_nodes):
            for _ in range(rng.randint(1, max_accesses)):
                streams[node].append(
                    Access(
                        block=rng.choice(addrs),
                        is_write=bool(rng.getrandbits(1)),
                    )
                )
        phases.append([streams])
    return RecordedWorkload(
        n_procs=PAPER_PARAMS.n_nodes,
        startup_phases=[],
        iteration_phases=phases,
        source="mc-crossval",
    )


# ----------------------------------------------------------------------
# simulator -> model
# ----------------------------------------------------------------------


@dataclass
class CrossValReport:
    """What one cross-validation campaign observed."""

    config: MCConfig
    episodes: int
    #: Abstract states sampled (one per delivery, plus boundaries).
    samples: int
    distinct: int
    model_states: int
    #: Simulator-reachable abstract states missing from the model,
    #: as ``(episode, repr(state))``.  Must be empty.
    unmatched: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.unmatched


def cross_validate(
    config: MCConfig = MCConfig(n_nodes=2, homes=(0,)),
    episodes: int = 4,
    seed: int = 0,
    iterations: int = 3,
    strategy: str = "random-walk",
    options: StacheOptions = DEFAULT_OPTIONS,
) -> CrossValReport:
    """Sample simulator-reachable abstract states; check model membership.

    Each episode runs a fresh machine under an adversarial delivery
    policy (seeded per episode like ``repro-explore``), snapshotting the
    abstract state after every delivery and at the quiescent start/end.
    """
    if config.faults:
        raise ConfigError(
            "cross-validation episodes run fault-free: the exploring "
            "network supplies the adversarial schedules, and fault "
            "nondeterminism would need its own seed plumbing"
        )
    if options.half_migratory != config.half_migratory or (
        options.forwarding != config.forwarding
    ):
        raise ConfigError(
            "simulator options and model config disagree on "
            "half_migratory/forwarding; the spaces would differ by design"
        )
    model = Model(config)
    space = reachable_space(config)
    node_map, block_map = scenario_maps(config)

    visited: Dict[tuple, int] = {}
    samples = 0
    for episode in range(episodes):
        ep_seed = episode_seed(seed, episode)
        policy = make_policy(strategy, seed=ep_seed)
        workload = scenario_workload(config, ep_seed, iterations)

        def factory(engine, params, deliver):
            return ExploringNetwork(engine, params, deliver, policy=policy)

        machine = Machine(
            params=PAPER_PARAMS,
            options=options,
            seed=ep_seed,
            network_factory=factory,
        )

        def sample(_msg=None):
            nonlocal samples
            samples += 1
            state = abstract_state(machine, model, node_map, block_map)
            visited.setdefault(state, episode)

        machine.deliver_hooks.append(sample)
        sample()  # the quiescent initial state
        machine.run_workload(workload, iterations)
        sample()  # the quiescent final state

    unmatched = sorted(
        (episode, repr(state))
        for state, episode in visited.items()
        if state not in space.states
    )
    return CrossValReport(
        config=config,
        episodes=episodes,
        samples=samples,
        distinct=len(visited),
        model_states=space.n_states,
        unmatched=unmatched,
    )


# ----------------------------------------------------------------------
# model -> simulator
# ----------------------------------------------------------------------


class GuidedPolicy(DeliveryPolicy):
    """Deliver messages in the order a model counterexample prescribes.

    Guidance is a list of ``(src, dst, mtype, block)`` signatures in
    real coordinates.  While guidance remains, the policy delivers the
    pooled message matching the next signature and defers everything
    else until it shows up; once exhausted, it falls back to FIFO.
    """

    name = "guided"
    defer_cap = _GUIDED_DEFER_CAP

    def __init__(self, guidance: Sequence[Tuple[int, int, int, int]]):
        self._guidance = list(guidance)

    def decide(self, enabled) -> int:
        if not self._guidance:
            return 0
        src, dst, mtype, block = self._guidance[0]
        for index, (_seq, msg, _defers) in enumerate(enabled):
            if (
                msg.src == src
                and msg.dst == dst
                and int(msg.mtype) == mtype
                and msg.block == block
            ):
                self._guidance.pop(0)
                return index
        return DEFER_REST

    def describe(self) -> dict:
        return {"name": self.name, "pending": len(self._guidance)}


def sequential_counterexample(
    model: Model, max_states: int = 200_000
) -> Optional[Violation]:
    """Shortest violating path using only phase-expressible actions.

    The full explorer's shortest counterexample may interleave issues
    with in-flight messages -- a schedule the machine's phase barriers
    cannot express.  This restricted BFS allows issues only from
    quiescent states and plain (non-saturated) deliveries otherwise, so
    every violation it finds replays as a phase-per-issue workload under
    a :class:`GuidedPolicy`.  Returns ``None`` when the seeded bug needs
    faults, retries, or overlap to manifest.
    """
    from collections import deque

    from .explorer import counterexample_path

    initial = model.initial_state()
    parents: Dict[tuple, Optional[Tuple[tuple, tuple]]] = {initial: None}
    frontier = deque([initial])
    while frontier and len(parents) <= max_states:
        state = frontier.popleft()
        broken = model.check_state(state)
        if broken is not None:
            return Violation(
                oracle=broken[0],
                detail=broken[1],
                state=state,
                path=counterexample_path(parents, state),
            )
        quiescent = model.is_quiescent(state)
        for action in model.actions(state):
            kind = action[0]
            if kind == "issue":
                if not quiescent:
                    continue
            elif kind != "deliver" or action[2] != 0:
                continue
            successor = model.step(state, action)
            if successor not in parents:
                parents[successor] = (state, action)
                frontier.append(successor)
    return None


@dataclass
class RoundTrip:
    """A model counterexample replayed and shrunk concretely."""

    mutation: Optional[str]
    oracle: str
    message: str
    artifact: ExploreArtifact
    shrink_result: Optional[ShrinkResult] = None
    artifact_path: Optional[Path] = None


def _counterexample_workload(
    model: Model, path: Sequence[tuple]
) -> Tuple[RecordedWorkload, List[Tuple[int, int, int, int]]]:
    """Split a model action path into phases + delivery guidance.

    Issues become one single-access phase each (the machine's phase
    barrier waits for quiescence, so the path must be *sequential*:
    every issue from a quiescent model state).  Deliveries become
    guidance signatures for a :class:`GuidedPolicy`.
    """
    _, block_map = scenario_maps(model.config)
    addr_of = {index: addr for addr, index in block_map.items()}
    phases: List[list] = []
    guidance: List[Tuple[int, int, int, int]] = []
    state = model.initial_state()
    for action in path:
        kind = action[0]
        if kind == "issue":
            _, node, block, is_write = action
            if not model.is_quiescent(state):
                raise ConfigError(
                    "counterexample issues an access while messages are "
                    "in flight; phase barriers cannot express that "
                    "schedule -- choose a mutation with a sequential "
                    "counterexample"
                )
            streams: List[List[Access]] = [
                [] for _ in range(PAPER_PARAMS.n_nodes)
            ]
            streams[node].append(
                Access(block=addr_of[block], is_write=bool(is_write))
            )
            phases.append([streams])
        elif kind == "deliver":
            msg = action[1]
            src, dst, mtype, block = msg[0], msg[1], msg[2], msg[3]
            guidance.append((src, dst, mtype, addr_of[block]))
        else:
            raise ConfigError(
                f"counterexample contains a {kind!r} action; only "
                "fault-free, retry-free paths replay concretely"
            )
        state = model.step(state, action)
    workload = RecordedWorkload(
        n_procs=PAPER_PARAMS.n_nodes,
        startup_phases=[],
        iteration_phases=phases,
        source="mc-counterexample",
    )
    return workload, guidance


def concretize(
    violation: Violation,
    model: Model,
    out_path: Optional[Union[str, Path]] = None,
    shrink_checks: int = 200,
    run_shrink: bool = True,
) -> RoundTrip:
    """Replay a model counterexample on the live simulator and shrink it.

    The caller is responsible for installing the matching live patch
    (:func:`repro.mc.mutations.live_patch`) *around* this call -- both
    the replay and every shrink re-execution must run the mutated
    controllers.  Raises :class:`ConfigError` if the concrete run does
    not fail (the mutation did not reproduce).

    When ``violation``'s path is not phase-expressible (an issue while
    messages are in flight), the replay falls back to
    :func:`sequential_counterexample` for an equivalent violation of the
    same mutated model that is.
    """
    try:
        workload, guidance = _counterexample_workload(
            model, violation.path
        )
    except ConfigError:
        fallback = sequential_counterexample(model)
        if fallback is None:
            raise
        violation = fallback
        workload, guidance = _counterexample_workload(
            model, violation.path
        )
    run_config = {
        "workload": {"recorded": workload.to_dict()},
        "seed": 0,
        "options": asdict(DEFAULT_OPTIONS),
        "fault_spec": None,
        "fault_seed": 0,
        "quantum_ns": None,
        "defer_cap": _GUIDED_DEFER_CAP,
    }
    policy = GuidedPolicy(guidance)
    execution = _execute(
        run_config,
        workload,
        len(workload.iteration_phases),
        policy,
        oracle_specs=("coherence", "quiescence"),
    )
    if execution.outcome != "violation":
        raise ConfigError(
            f"model counterexample did not reproduce concretely: the "
            f"patched simulator run finished {execution.outcome!r} "
            "(is the matching live patch installed?)"
        )
    artifact = ExploreArtifact(
        config=run_config,
        strategy=policy.describe(),
        decisions=list(execution.network.decisions),
        failure=execution.failure,
        forensics=execution.forensics,
        oracles=["coherence", "quiescence"],
    )
    result = RoundTrip(
        mutation=model.mutation,
        oracle=execution.failure["oracle"],
        message=execution.failure["message"],
        artifact=artifact,
    )
    if run_shrink:
        result.shrink_result = shrink(artifact, max_checks=shrink_checks)
        result.artifact = result.shrink_result.artifact
    if out_path is not None:
        result.artifact_path = save_artifact(result.artifact, out_path)
    return result
